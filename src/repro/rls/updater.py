"""Periodic soft-state update scheduling.

Giggle's design (and the paper's §9 federation sketch) relies on services
sending "periodic summaries" — state that expires unless refreshed.  The
:class:`PeriodicUpdater` runs any producer → consumer push on an interval
in a daemon thread.  Used for LRC → RLI updates and LocalMCS → index-node
summaries; also directly testable with manual ticks.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro import faults as _faults
from repro.obs import trace as _trace

Producer = Callable[[], object]
Consumer = Callable[[object], object]


class PeriodicUpdater:
    """Pushes ``consumer(producer())`` every *interval* seconds.

    Soft state self-heals: a failed tick only counts an error — the next
    tick re-sends the full summary, so a lost update costs one interval
    of staleness, never divergence.  ``name`` is the ``rls.update``
    fault-injection op for this updater.
    """

    def __init__(
        self,
        producer: Producer,
        consumer: Consumer,
        interval: float = 30.0,
        on_error: Optional[Callable[[Exception], None]] = None,
        name: str = "updater",
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.producer = producer
        self.consumer = consumer
        self.interval = interval
        self.on_error = on_error
        self.name = name
        self.ticks = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- manual operation (tests, synchronous callers) ----------------------

    def tick(self) -> bool:
        """Run one update now; returns False if the producer/consumer failed."""
        with _trace.span("rls.update", updater=self.name):
            try:
                inj = _faults.check("rls.update", self.name)
                if inj is not None:
                    inj.fail()
                self.consumer(self.producer())
            except Exception as exc:  # noqa: BLE001 - updates must not kill the loop
                with self._lock:
                    self.errors += 1
                if self.on_error is not None:
                    self.on_error(exc)
                _trace.annotate(f"tick failed: {type(exc).__name__}")
                return False
            with self._lock:
                self.ticks += 1
            return True

    # -- background operation ------------------------------------------------

    def start(self) -> "PeriodicUpdater":
        if self._thread is not None:
            raise RuntimeError("updater already running")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        # First update immediately, then on the interval.
        self.tick()
        while not self._stop.wait(self.interval):
            self.tick()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None

    def __enter__(self) -> "PeriodicUpdater":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()


def lrc_updater(lrc, rli, interval: float = 30.0) -> PeriodicUpdater:
    """Wire one LRC's soft-state updates to an RLI."""
    name = getattr(lrc, "lrc_id", None) or getattr(lrc, "name", None) or "lrc"
    return PeriodicUpdater(
        lrc.make_update, rli.receive_update, interval, name=str(name)
    )


def summary_updater(local_mcs, index_node, interval: float = 60.0) -> PeriodicUpdater:
    """Wire one LocalMCS's summaries to a federation index node."""
    name = (
        getattr(local_mcs, "catalog_id", None)
        or getattr(local_mcs, "name", None)
        or "summary"
    )
    return PeriodicUpdater(
        local_mcs.make_summary, index_node.receive_summary, interval, name=str(name)
    )
