"""Multi-host drivers for Figures 8–10.

The paper runs multiple client *hosts*, each with 4 threads.  We model a
host as a *client group*: its own set of connections and its own workload
streams, started together with every other group.  (The substitution is
recorded in DESIGN.md: the closed-loop queueing structure — N independent
request sources against one server — is what produces the saturation
behaviour, not the physical NIC count.)
"""

from __future__ import annotations

from typing import Callable

from repro.bench.driver import BenchEnvironment, OpFactory
from repro.bench.timing import RateResult, count_until_stopped, run_workers

THREADS_PER_HOST = 4


def run_host_groups(
    env: BenchEnvironment,
    mode: str,
    op_factory: OpFactory,
    hosts: int,
    threads_per_host: int = THREADS_PER_HOST,
    duration: float = 0.5,
    worker_prefix: str = "",
) -> RateResult:
    """Aggregate rate with *hosts* groups of *threads_per_host* clients.

    ``worker_prefix`` disambiguates workload streams when one
    environment serves several sweep series whose op draws fresh
    logical names (otherwise two series would replay the same names).
    """
    clients = []
    worker_fns = []
    try:
        for host in range(hosts):
            for thread in range(threads_per_host):
                client = env.make_client(mode)
                clients.append(client)
                op = op_factory(client, f"{worker_prefix}h{host}t{thread}")
                weight = getattr(op, "ops_per_iteration", 1)
                worker_fns.append(
                    lambda stop, op=op, weight=weight: count_until_stopped(
                        op, stop, ops_per_iteration=weight
                    )
                )
        return run_workers(worker_fns, duration)
    finally:
        for client in clients:
            client.close()
