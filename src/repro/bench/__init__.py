"""Benchmark harness for the §7 scalability study.

* :mod:`repro.bench.timing` — closed-loop rate measurement;
* :mod:`repro.bench.driver` — multi-threaded client drivers over the
  direct and SOAP transports;
* :mod:`repro.bench.hosts` — multi-"host" (client-group) drivers;
* :mod:`repro.bench.sweeps` — one runner per paper figure (5–11);
* :mod:`repro.bench.report` — series printing in the paper's format;
* :mod:`repro.bench.record` — machine-readable bench records
  (``python -m repro.bench --out BENCH.json``).
"""

from repro.bench.driver import BenchEnvironment, run_closed_loop
from repro.bench.report import format_series, print_series
from repro.bench.sweeps import (
    BenchConfig,
    sweep_cache_ablation,
    sweep_figure5,
    sweep_figure5_batched,
    sweep_figure6,
    sweep_figure7,
    sweep_figure8,
    sweep_figure8_batched,
    sweep_figure9,
    sweep_figure10,
    sweep_figure11,
    sweep_resilience_ablation,
    sweep_tracing_ablation,
)

__all__ = [
    "BenchEnvironment",
    "run_closed_loop",
    "BenchConfig",
    "sweep_cache_ablation",
    "sweep_figure5",
    "sweep_figure5_batched",
    "sweep_figure8_batched",
    "sweep_figure6",
    "sweep_figure7",
    "sweep_figure8",
    "sweep_figure9",
    "sweep_figure10",
    "sweep_figure11",
    "sweep_resilience_ablation",
    "sweep_tracing_ablation",
    "format_series",
    "print_series",
]
