"""Per-figure sweep runners (Figures 5–11 of the paper).

Database sizes are scaled-down versions of the paper's 100 k / 1 M / 5 M
logical files, preserving the 1 : 10 : 50 ratio; the ``MCS_BENCH_SCALE``
environment variable multiplies the defaults.  Populated environments are
cached per size so the whole suite pays each population once.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import socket
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import faults
from repro.bench.driver import BenchEnvironment, run_closed_loop
from repro.bench.hosts import run_host_groups
from repro.workloads.population import PopulationSpec


def _scale() -> float:
    try:
        return float(os.environ.get("MCS_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass
class BenchConfig:
    """Sweep parameters; defaults reproduce every series at small scale."""

    db_sizes: tuple[int, ...] = ()
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 12)
    host_counts: tuple[int, ...] = (1, 2, 4, 6)
    duration: float = 0.4
    files_per_collection: int = 100
    value_cardinality: int = 50
    soap_latency_s: float = 0.015
    """Simulated client<->server network latency for SOAP clients (the
    multi-host substitution documented in DESIGN.md)."""
    batch_sizes: tuple[int, ...] = (1, 8, 32)
    """Batch-size axis for the batched add-rate sweeps (figures 5/8
    extended with bulk operations)."""
    shard_counts: tuple[int, ...] = (1, 2, 4)
    """Shard-count axis for the sharded add-rate sweeps (PR 7)."""
    shard_threads: int = 8
    """Closed-loop client threads against the sharded service."""
    conn_base: int = 50
    """Idle keep-alive connections held against the threaded server in
    the connection-scaling sweep (PR 8)."""
    conn_scale: int = 10
    """Multiplier for the asyncio front end's herd: it must carry
    ``conn_base * conn_scale`` connections at comparable tail latency."""
    conn_active_threads: int = 4
    """Closed-loop requester threads measured while the idle herd is
    parked on the server."""
    conn_duration: float = 2.0
    """Measurement window for the connection-scaling sweep — longer than
    :attr:`duration` because p99 needs a deeper sample."""
    shard_commit_ms: float = 2.0
    """Emulated per-commit device latency for the sharded sweeps.

    The paper's deployment gives every catalog server its own disk,
    where a commit costs milliseconds; CI hardware hides that behind a
    ~0.15 ms NVMe fsync on a single device, so the fsync parallelism
    sharding buys is invisible.  The ``emulated`` series replays each
    WAL commit with this device latency through the deterministic fault
    layer (``db.wal:append=latency``); the ``raw`` series uses the
    device as-is and is recorded alongside for honesty."""

    def __post_init__(self) -> None:
        if not self.db_sizes:
            scale = _scale()
            base = (400, 4000, 20000)  # 1 : 10 : 50, like 100k/1M/5M
            self.db_sizes = tuple(max(100, int(b * scale)) for b in base)

    def spec(self, size: int) -> PopulationSpec:
        return PopulationSpec(
            total_files=size,
            files_per_collection=self.files_per_collection,
            value_cardinality=self.value_cardinality,
        )


_ENV_CACHE: dict[tuple, BenchEnvironment] = {}


def get_environment(config: BenchConfig, size: int) -> BenchEnvironment:
    """Shared populated environment per (size, layout, latency) tuple."""
    key = (
        size,
        config.files_per_collection,
        config.value_cardinality,
        config.soap_latency_s,
    )
    env = _ENV_CACHE.get(key)
    if env is None:
        env = BenchEnvironment(config.spec(size), soap_latency_s=config.soap_latency_s)
        _ENV_CACHE[key] = env
    return env


def clear_environments() -> None:
    for env in _ENV_CACHE.values():
        env.close()
    _ENV_CACHE.clear()


# --------------------------------------------------------------------------
# Single-host thread sweeps (Figures 5, 6, 7)
# --------------------------------------------------------------------------


def _thread_sweep(
    config: BenchConfig,
    op_name: str,
    modes: tuple[str, ...] = ("direct", "soap"),
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes:
        env = get_environment(config, size)
        factory = getattr(env, op_name)
        for mode in modes:
            for threads in config.thread_counts:
                result = run_closed_loop(
                    env, mode, factory, threads, config.duration,
                    worker_prefix=f"{mode}-{size}-",
                )
                rows.append(
                    {
                        "db_size": size,
                        "mode": mode,
                        "x": threads,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


def sweep_figure5(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 5: add rate vs #threads (single host), direct vs soap."""
    return _thread_sweep(config, "add_delete_op")


def sweep_figure6(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 6: simple query rate vs #threads, direct vs soap."""
    return _thread_sweep(config, "simple_query_op")


def sweep_figure7(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 7: complex (10-attribute) query rate vs #threads."""
    return _thread_sweep(config, "complex_query_op")


def sweep_cache_ablation(
    config: BenchConfig,
    op_name: str = "repeated_complex_query_op",
    modes: tuple[str, ...] = ("direct",),
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Cache on/off ablation over the repeated-query sweeps (Figures 6/7).

    Runs the same thread sweep twice — read cache enabled, then disabled —
    on a workload that cycles a small pool of queries, so the ``cache``
    column isolates what generation-stamped caching buys on the paper's
    query-dominated evaluation.  The cache is cleared between runs so the
    enabled leg starts cold.
    """
    rows: list[dict[str, Any]] = []
    for enabled in (True, False):
        for size in db_sizes or config.db_sizes:
            env = get_environment(config, size)
            cache = env.catalog.cache
            prior = cache.enabled
            cache.clear()
            cache.enabled = enabled
            try:
                factory = getattr(env, op_name)
                for mode in modes:
                    for threads in config.thread_counts:
                        result = run_closed_loop(
                            env, mode, factory, threads, config.duration,
                            worker_prefix=f"{mode}-{size}-cache{enabled}-",
                        )
                        rows.append(
                            {
                                "db_size": size,
                                "mode": mode,
                                "cache": enabled,
                                "x": threads,
                                "rate": result.rate,
                                "operations": result.operations,
                            }
                        )
            finally:
                cache.clear()
                cache.enabled = prior
    return rows


def sweep_resilience_ablation(
    config: BenchConfig,
    op_name: str = "repeated_complex_query_op",
    db_sizes: Optional[tuple[int, ...]] = None,
    threads: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Resilience-layer overhead on the fault-free hot path.

    Runs the same in-process workload with a raw DirectTransport and with
    the full ResilientTransport wrapper (retry loop + breaker admission +
    deadline bookkeeping + idempotency tokens) with **no faults active** —
    so the ``resilience`` column isolates the pure bookkeeping cost the
    wrapper adds when nothing goes wrong.  Target: <2% on the paper's
    query-dominated workload.
    """
    rows: list[dict[str, Any]] = []
    for mode in ("direct", "direct+resilience"):
        for size in db_sizes or config.db_sizes[-1:]:
            env = get_environment(config, size)
            factory = getattr(env, op_name)
            for n in threads or tuple(config.thread_counts):
                result = run_closed_loop(
                    env, mode, factory, n, config.duration,
                    worker_prefix=f"{mode}-{size}-",
                )
                rows.append(
                    {
                        "db_size": size,
                        "mode": mode,
                        "resilience": mode.endswith("+resilience"),
                        "x": n,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


def sweep_tracing_ablation(
    config: BenchConfig,
    op_name: str = "repeated_complex_query_op",
    db_sizes: Optional[tuple[int, ...]] = None,
    threads: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Span-machinery overhead on the SOAP hot path.

    Runs the same SOAP workload with tracing off and on (metrics stay
    enabled both ways — :func:`repro.obs.trace.set_tracing_enabled` is
    the only knob toggled), over a zero-simulated-latency link so the
    span cost is not hidden inside a fake network RTT.  The ``tracing``
    column isolates what recording spans + propagating TraceParent adds
    per request.  Target: <3% on the query-dominated workload.
    """
    import dataclasses

    from repro.obs import trace as _trace

    wire_config = dataclasses.replace(config, soap_latency_s=0.0)
    rows: list[dict[str, Any]] = []
    was_enabled = _trace.TRACING.enabled
    try:
        for tracing in (False, True):
            _trace.set_tracing_enabled(tracing)
            for size in db_sizes or wire_config.db_sizes[-1:]:
                env = get_environment(wire_config, size)
                factory = getattr(env, op_name)
                for n in threads or tuple(wire_config.thread_counts):
                    result = run_closed_loop(
                        env, "soap", factory, n, wire_config.duration,
                        worker_prefix=f"trace{int(tracing)}-{size}-",
                    )
                    rows.append(
                        {
                            "db_size": size,
                            "mode": "soap+trace" if tracing else "soap",
                            "tracing": tracing,
                            "x": n,
                            "rate": result.rate,
                            "operations": result.operations,
                        }
                    )
    finally:
        _trace.set_tracing_enabled(was_enabled)
    return rows


# --------------------------------------------------------------------------
# Batched add-rate sweeps (figures 5/8 with a batch-size axis)
# --------------------------------------------------------------------------


def sweep_figure5_batched(
    config: BenchConfig,
    modes: tuple[str, ...] = ("direct", "soap"),
    threads: int = 4,
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Add rate vs batch size (x axis), fixed thread count per mode.

    Batch size 1 matches the per-call figure-5 shape; larger batches
    amortize the SOAP round trip over many operations.
    """
    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes:
        env = get_environment(config, size)
        for mode in modes:
            for batch in config.batch_sizes:
                def factory(client, worker_id, batch=batch):
                    return env.bulk_add_delete_op(
                        client, worker_id, batch_size=batch
                    )

                result = run_closed_loop(
                    env, mode, factory, threads, config.duration,
                    worker_prefix=f"{mode}-{size}-b{batch}-",
                )
                rows.append(
                    {
                        "db_size": size,
                        "mode": mode,
                        "x": batch,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


def sweep_figure8_batched(
    config: BenchConfig,
    hosts: int = 2,
    modes: tuple[str, ...] = ("direct", "soap"),
) -> list[dict[str, Any]]:
    """Aggregate add rate vs batch size with multiple client hosts."""
    rows: list[dict[str, Any]] = []
    for size in config.db_sizes:
        env = get_environment(config, size)
        for mode in modes:
            for batch in config.batch_sizes:
                def factory(client, worker_id, batch=batch):
                    return env.bulk_add_delete_op(
                        client, worker_id, batch_size=batch
                    )

                result = run_host_groups(
                    env, mode, factory, hosts, duration=config.duration
                )
                rows.append(
                    {
                        "db_size": size,
                        "mode": mode,
                        "x": batch,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


# --------------------------------------------------------------------------
# Multi-host sweeps (Figures 8, 9, 10)
# --------------------------------------------------------------------------


def _host_sweep(
    config: BenchConfig,
    op_name: str,
    modes: tuple[str, ...] = ("direct", "soap"),
    host_counts: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    for size in config.db_sizes:
        env = get_environment(config, size)
        factory = getattr(env, op_name)
        for mode in modes:
            for hosts in host_counts or config.host_counts:
                result = run_host_groups(
                    env, mode, factory, hosts, duration=config.duration
                )
                rows.append(
                    {
                        "db_size": size,
                        "mode": mode,
                        "x": hosts,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


def sweep_figure8(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 8: add rate vs #hosts (4 threads each)."""
    return _host_sweep(config, "add_delete_op")


def sweep_figure9(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 9: simple query rate vs #hosts (sweeps up to 10 hosts)."""
    extended = tuple(sorted(set(config.host_counts) | {8, 10}))
    return _host_sweep(config, "simple_query_op", host_counts=extended)


def sweep_figure10(config: BenchConfig) -> list[dict[str, Any]]:
    """Figure 10: complex query rate vs #hosts."""
    return _host_sweep(config, "complex_query_op")


# --------------------------------------------------------------------------
# Attribute-count sweep (Figure 11)
# --------------------------------------------------------------------------


# --------------------------------------------------------------------------
# Sharded add-rate sweeps (figures 5/8 with a shard-count axis, PR 7)
# --------------------------------------------------------------------------

_SHARD_ENV_CACHE: dict[tuple, BenchEnvironment] = {}
_SHARD_DIRS: list[str] = []


def get_sharded_environment(
    config: BenchConfig, size: int, shards: int
) -> BenchEnvironment:
    """Shared populated *durable* sharded environment per (size, shards)."""
    key = (size, shards, config.files_per_collection, config.value_cardinality)
    env = _SHARD_ENV_CACHE.get(key)
    if env is None:
        directory = tempfile.mkdtemp(prefix=f"mcs-bench-shard{shards}-")
        _SHARD_DIRS.append(directory)
        env = BenchEnvironment(
            config.spec(size),
            soap_latency_s=config.soap_latency_s,
            shards=shards,
            shard_dir=directory,
        )
        _SHARD_ENV_CACHE[key] = env
    return env


def clear_sharded_environments() -> None:
    for env in _SHARD_ENV_CACHE.values():
        env.close()
    _SHARD_ENV_CACHE.clear()
    for directory in _SHARD_DIRS:
        shutil.rmtree(directory, ignore_errors=True)
    _SHARD_DIRS.clear()


def _commit_latency(ms: float):
    """Context manager emulating a *ms* commit device via the fault layer."""
    if ms <= 0:
        return contextlib.nullcontext()
    return faults.active(
        faults.FaultPlan.parse(f"seed=1;db.wal:append=latency@1.0,ms={ms}")
    )


def sweep_figure5_sharded(
    config: BenchConfig,
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Sharded figure 5: durable add rate vs shard count, one service.

    Each point runs ``config.shard_threads`` closed-loop clients against
    one :class:`ShardedCatalog` (durable shards, each with its own WAL)
    through the in-process service.  Two series per shard count:
    ``emulated`` models the paper's disk-per-server deployment (see
    ``BenchConfig.shard_commit_ms``); ``raw`` is the same run on the
    bare device.
    """
    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes[:1]:
        for shards in config.shard_counts:
            env = get_sharded_environment(config, size, shards)
            for series, ms in (
                ("emulated", config.shard_commit_ms),
                ("raw", 0.0),
            ):
                with _commit_latency(ms):
                    result = run_closed_loop(
                        env,
                        "direct",
                        env.add_op,
                        config.shard_threads,
                        config.duration,
                        worker_prefix=f"f5s-{series}-{size}-sh{shards}-",
                    )
                rows.append(
                    {
                        "db_size": size,
                        "mode": "direct",
                        "series": series,
                        "commit_ms": ms,
                        "x": shards,
                        "rate": result.rate,
                        "operations": result.operations,
                    }
                )
    return rows


def sweep_figure8_sharded(
    config: BenchConfig,
    hosts: int = 2,
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """Sharded figure 8: aggregate add rate from *hosts* client groups
    vs shard count, on the emulated commit device."""
    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes[:1]:
        for shards in config.shard_counts:
            env = get_sharded_environment(config, size, shards)
            with _commit_latency(config.shard_commit_ms):
                result = run_host_groups(
                    env,
                    "direct",
                    env.add_op,
                    hosts,
                    duration=config.duration,
                    worker_prefix=f"f8s-{size}-sh{shards}-",
                )
            rows.append(
                {
                    "db_size": size,
                    "mode": "direct",
                    "series": "emulated",
                    "commit_ms": config.shard_commit_ms,
                    "hosts": hosts,
                    "x": shards,
                    "rate": result.rate,
                    "operations": result.operations,
                }
            )
    return rows


def shard_scaling_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Speedup of the emulated add-rate series at max vs 1 shard."""
    emulated = [r for r in rows if r.get("series") == "emulated"]
    by_shards: dict[int, float] = {}
    for row in emulated:
        by_shards[row["x"]] = max(by_shards.get(row["x"], 0.0), row["rate"])
    if not by_shards:
        return {}
    base = by_shards.get(1, 0.0)
    top = max(by_shards)
    return {
        "rates": {str(k): v for k, v in sorted(by_shards.items())},
        "shards": top,
        "speedup": (by_shards[top] / base) if base > 0 else 0.0,
    }


# --------------------------------------------------------------------------
# Connection-scaling sweep (PR 8): asyncio front end vs thread-per-connection
# --------------------------------------------------------------------------


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample, in ms."""
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(round(q * (len(sorted_ms) - 1))))
    return sorted_ms[idx]


def _open_idle_herd(
    endpoint: tuple[str, int], count: int
) -> list["socket.socket"]:
    """Open *count* keep-alive connections, one warm request each.

    Every socket completes a single ``ping`` POST (so the server has
    parsed a request and committed to keep-alive framing) and is then
    left open and silent — the parked herd whose cost per connection is
    what the sweep compares across front ends.
    """
    from repro.soap.envelope import build_request

    payload = build_request("ping", {})
    request = (
        b"POST /soap HTTP/1.1\r\n"
        b"Host: bench\r\n"
        b"Content-Type: text/xml; charset=utf-8\r\n"
        b"Content-Length: %d\r\n"
        b"Connection: keep-alive\r\n\r\n" % len(payload)
    ) + payload
    herd: list[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.create_connection(endpoint, timeout=30)
            sock.sendall(request)
            fh = sock.makefile("rb")
            status = fh.readline()
            if not status.startswith(b"HTTP/1.1 200"):
                raise RuntimeError(f"herd warmup failed: {status!r}")
            length = 0
            while True:
                line = fh.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.partition(b":")
                if name.strip().lower() == b"content-length":
                    length = int(value.strip())
            fh.read(length)
            fh.close()
            herd.append(sock)
    except BaseException:
        _close_herd(herd)
        raise
    return herd


def _close_herd(herd: list["socket.socket"]) -> None:
    for sock in herd:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass


def _measure_latencies(
    env: BenchEnvironment,
    endpoint: tuple[str, int],
    threads: int,
    duration: float,
) -> tuple[Any, list[float]]:
    """Closed-loop requesters against *endpoint*; per-op latencies in ms.

    Each worker alternates ``ping`` and a simple attribute query — the
    same mix for every front end, so the p99 columns are comparable.
    """
    from repro.core.client import MCSClient
    from repro.core.query import ObjectQuery
    from repro.soap.transport import HttpTransport
    from repro.workloads.queries import QueryWorkload

    import time as _time

    host, port = endpoint
    samples: list[list[float]] = [[] for _ in range(threads)]

    def make_fn(idx: int):
        def fn(stop) -> int:
            client = MCSClient(
                HttpTransport(host, port), caller="bench-conn"
            )
            workload = QueryWorkload(env.spec, seed=idx + 1)
            out = samples[idx]
            count = 0
            try:
                while not stop.is_set():
                    field, value = workload.simple_query_args()
                    query = ObjectQuery().where_field(field, "=", value)
                    for op in (client.ping, lambda: client.query(query)):
                        started = _time.perf_counter()
                        op()
                        out.append(
                            (_time.perf_counter() - started) * 1000.0
                        )
                        count += 1
            finally:
                client.close()
            return count

        return fn

    from repro.bench.timing import run_workers as _run_workers

    result = _run_workers([make_fn(i) for i in range(threads)], duration)
    merged = sorted(ms for worker in samples for ms in worker)
    return result, merged


def sweep_connection_scaling(
    config: BenchConfig,
    db_sizes: Optional[tuple[int, ...]] = None,
) -> list[dict[str, Any]]:
    """PR 8: tail latency under an idle keep-alive herd, per front end.

    The thread-per-connection :class:`SoapServer` carries
    ``config.conn_base`` parked connections; the asyncio
    :class:`~repro.aserve.AsyncSoapServer` carries ``conn_scale`` times
    as many.  With the herd in place, ``conn_active_threads`` closed-loop
    clients run the same ping/simple-query mix over a zero-latency
    loopback link and every per-op latency is recorded — the headline
    acceptance is the async p99 staying within 1.2x of the threaded p99
    while holding 10x the connections.
    """
    from repro.aserve import AsyncSoapServer
    from repro.soap.server import SoapServer

    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes[:1]:
        env = get_environment(config, size)
        flavors = (
            ("threaded", SoapServer, config.conn_base),
            ("async", AsyncSoapServer, config.conn_base * config.conn_scale),
        )
        for flavor, server_cls, conns in flavors:
            server = server_cls(
                env.service.handle, fault_mapper=env.service.fault_mapper
            )
            server.start()
            herd: list[socket.socket] = []
            try:
                herd = _open_idle_herd(server.endpoint, conns)
                # Start each flavor from a cold read cache so ordering
                # doesn't gift the second run warmed queries.
                env.catalog.cache.clear()
                result, latencies = _measure_latencies(
                    env,
                    server.endpoint,
                    config.conn_active_threads,
                    config.conn_duration,
                )
            finally:
                _close_herd(herd)
                server.stop()
            rows.append(
                {
                    "db_size": size,
                    "server": flavor,
                    "connections": conns,
                    "active_threads": config.conn_active_threads,
                    "operations": result.operations,
                    "rate": result.rate,
                    "p50_ms": _percentile(latencies, 0.50),
                    "p95_ms": _percentile(latencies, 0.95),
                    "p99_ms": _percentile(latencies, 0.99),
                }
            )
    return rows


def connection_scaling_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Headline ratios: connections carried and p99 paid, async/threaded."""
    threaded = next((r for r in rows if r["server"] == "threaded"), None)
    async_row = next((r for r in rows if r["server"] == "async"), None)
    if threaded is None or async_row is None:
        return {}
    return {
        "threaded_connections": threaded["connections"],
        "async_connections": async_row["connections"],
        "connection_ratio": (
            async_row["connections"] / threaded["connections"]
            if threaded["connections"]
            else 0.0
        ),
        "threaded_p99_ms": threaded["p99_ms"],
        "async_p99_ms": async_row["p99_ms"],
        "p99_ratio": (
            async_row["p99_ms"] / threaded["p99_ms"]
            if threaded["p99_ms"] > 0
            else 0.0
        ),
    }


def sweep_mql_index_ablation(
    config: BenchConfig,
    attribute_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    db_sizes: Optional[tuple[int, ...]] = None,
    threads: int = 2,
) -> list[dict[str, Any]]:
    """MQL execution-strategy ablation over the figure-11 attribute axis.

    The same conjunctive MQL statements (``num_attributes`` equality
    conditions matching an existing file) run twice per point with the
    catalog's strategy override pinned: ``index`` probes the attribute
    secondary indexes and intersects id sets; ``scan`` walks every EAV
    row of the object type and evaluates the predicate in Python.  The
    gap between the two series is what the secondary indexes buy —
    growing with both database size and condition count.  Statistics are
    refreshed once up front so the recorded plans match what the
    cost-based planner would see.
    """
    rows: list[dict[str, Any]] = []
    for size in db_sizes or config.db_sizes[:1]:
        env = get_environment(config, size)
        env.catalog.analyze_attributes()
        prior = env.catalog.mql_strategy
        try:
            for strategy in ("index", "scan"):
                env.catalog.mql_strategy = strategy
                for count in attribute_counts:
                    def factory(client, worker_id, count=count):
                        return env.mql_query_op(
                            client, worker_id, num_attributes=count
                        )

                    result = run_closed_loop(
                        env, "direct", factory, threads, config.duration,
                        worker_prefix=f"mql-{strategy}-{size}-a{count}-",
                    )
                    rows.append(
                        {
                            "db_size": size,
                            "mode": "direct",
                            "strategy": strategy,
                            "x": count,
                            "rate": result.rate,
                            "operations": result.operations,
                        }
                    )
        finally:
            env.catalog.mql_strategy = prior
    return rows


def mql_index_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Indexed-vs-scan speedup at the largest attribute count."""
    by_count: dict[int, dict[str, float]] = {}
    for row in rows:
        slot = by_count.setdefault(row["x"], {})
        slot[row["strategy"]] = max(slot.get(row["strategy"], 0.0), row["rate"])
    if not by_count:
        return {}
    top = max(by_count)
    index_rate = by_count[top].get("index", 0.0)
    scan_rate = by_count[top].get("scan", 0.0)
    return {
        "attribute_count": top,
        "index_rate": index_rate,
        "scan_rate": scan_rate,
        "speedup": (index_rate / scan_rate) if scan_rate > 0 else 0.0,
    }


def sweep_figure11(
    config: BenchConfig,
    attribute_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
) -> list[dict[str, Any]]:
    """Figure 11: direct complex-query rate vs number of attributes."""
    rows: list[dict[str, Any]] = []
    for size in config.db_sizes:
        env = get_environment(config, size)
        for count in attribute_counts:
            def factory(client, worker_id, count=count):
                return env.complex_query_op(client, worker_id, num_attributes=count)

            result = run_closed_loop(
                env, "direct", factory, threads=4, duration=config.duration
            )
            rows.append(
                {
                    "db_size": size,
                    "mode": "direct",
                    "x": count,
                    "rate": result.rate,
                    "operations": result.operations,
                }
            )
    return rows
