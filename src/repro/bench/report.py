"""Formatting benchmark series in the paper's figure layout."""

from __future__ import annotations

from typing import Any, Sequence


def format_series(
    title: str,
    x_label: str,
    rows: Sequence[dict[str, Any]],
    series_keys: Sequence[str] = ("db_size", "mode"),
    x_key: str = "x",
    rate_key: str = "rate",
) -> str:
    """Render sweep rows as one table: x values down, series across.

    ``rows`` are dicts with at least x_key, rate_key and the series keys.
    """
    def series_of(row: dict[str, Any]) -> tuple:
        return tuple(row[k] for k in series_keys)

    series = sorted({series_of(r) for r in rows})
    xs = sorted({r[x_key] for r in rows})
    headers = [x_label] + [
        "/".join(str(part) for part in s) for s in series
    ]
    table: list[list[str]] = [headers]
    for x in xs:
        line = [str(x)]
        for s in series:
            match = [
                r
                for r in rows
                if r[x_key] == x and series_of(r) == s
            ]
            line.append(f"{match[0][rate_key]:.1f}" if match else "-")
        table.append(line)
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = [f"== {title} (rates in operations/second) =="]
    for row_idx, row in enumerate(table):
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        if row_idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_series(
    title: str,
    x_label: str,
    rows: Sequence[dict[str, Any]],
    **kwargs: Any,
) -> None:
    print("\n" + format_series(title, x_label, rows, **kwargs) + "\n", flush=True)


#: Timing families the benchmark reports digest from a metrics snapshot —
#: one per layer of the paper's web-service overhead decomposition.
OBS_TIMING_FAMILIES = (
    "mcs_soap_codec_seconds",
    "mcs_soap_request_seconds",
    "mcs_catalog_op_seconds",
    "mcs_db_statement_seconds",
)


def obs_breakdown(
    snapshot: dict[str, Any],
    families: Sequence[str] = OBS_TIMING_FAMILIES,
) -> dict[str, dict[str, float]]:
    """Digest a ``MetricsRegistry.snapshot()`` into per-series timing rows.

    Returns ``{"name{label=value}": {"count", "sum_s", "mean_us"}}`` for
    the requested histogram families — the obs-measured share of each
    layer, attached to benchmark ``extra_info`` and asserted against by
    the SOAP-overhead ablation.
    """
    out: dict[str, dict[str, float]] = {}
    for name in families:
        family = snapshot.get(name)
        if not family:
            continue
        for entry in family.get("series", []):
            labels = entry.get("labels") or {}
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            count = entry.get("count", 0)
            total = entry.get("sum", 0.0)
            out[key] = {
                "count": count,
                "sum_s": total,
                "mean_us": (total / count * 1e6) if count else 0.0,
            }
    return out


def shape_checks(rows: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Summary ratios used by EXPERIMENTS.md (direct/soap gap etc.)."""
    by_mode: dict[str, list[float]] = {}
    for row in rows:
        by_mode.setdefault(row.get("mode", "?"), []).append(row["rate"])
    out: dict[str, float] = {}
    if "direct" in by_mode and "soap" in by_mode:
        direct_peak = max(by_mode["direct"])
        soap_peak = max(by_mode["soap"])
        if soap_peak > 0:
            out["direct_over_soap_peak"] = direct_peak / soap_peak
    return out
