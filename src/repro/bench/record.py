"""Machine-readable bench records (the committed ``BENCH_*.json`` files).

:func:`build_record` runs the tracing-ablation sweep plus a short SOAP
throughput run, then folds in the latency distribution (p50/p95/p99 of
``mcs_soap_request_seconds`` recomputed from the live histogram buckets)
and an observability snapshot (span-ring accounting, SLO status).  The
result is one JSON document CI archives per PR, so throughput or tail
latency regressions show up as a diff instead of an anecdote.

Run with ``python -m repro.bench --out BENCH_PR10.json``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.bench.report import obs_breakdown
from repro.bench.sweeps import (
    BenchConfig,
    clear_environments,
    clear_sharded_environments,
    connection_scaling_summary,
    mql_index_summary,
    shard_scaling_summary,
    sweep_connection_scaling,
    sweep_figure5_sharded,
    sweep_figure8_sharded,
    sweep_mql_index_ablation,
    sweep_tracing_ablation,
)
from repro.obs.metrics import get_registry


def _histogram_quantile(entry: dict[str, Any], q: float) -> float:
    """Quantile from a snapshot histogram entry (bucket interpolation)."""
    count = entry["count"]
    if count == 0:
        return 0.0
    edges = entry["le"]
    target = q * count
    seen = 0
    for i, c in enumerate(entry["buckets"]):
        if seen + c >= target and c > 0:
            lo = edges[i - 1] if i > 0 else 0.0
            hi = edges[i] if i < len(edges) else edges[-1]
            return lo + (hi - lo) * ((target - seen) / c)
        seen += c
    return edges[-1]


def _merged_histogram(snapshot: dict[str, Any], name: str) -> Optional[dict]:
    """Sum a histogram family's series into one bucket vector."""
    family = snapshot.get(name)
    if not family or family.get("type") != "histogram":
        return None
    merged: Optional[dict[str, Any]] = None
    for entry in family["series"]:
        if merged is None:
            merged = {
                "count": entry["count"],
                "sum": entry["sum"],
                "le": list(entry["le"]),
                "buckets": list(entry["buckets"]),
            }
        else:
            merged["count"] += entry["count"]
            merged["sum"] += entry["sum"]
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], entry["buckets"])
            ]
    return merged


def latency_summary(name: str = "mcs_soap_request_seconds") -> dict[str, Any]:
    """p50/p95/p99/mean of one histogram family, all series merged."""
    merged = _merged_histogram(get_registry().snapshot(), name)
    if merged is None or merged["count"] == 0:
        return {"count": 0}
    return {
        "count": merged["count"],
        "mean_s": merged["sum"] / merged["count"],
        "p50_s": _histogram_quantile(merged, 0.50),
        "p95_s": _histogram_quantile(merged, 0.95),
        "p99_s": _histogram_quantile(merged, 0.99),
    }


def _counter_total(snapshot: dict[str, Any], name: str) -> float:
    family = snapshot.get(name)
    if not family:
        return 0.0
    return sum(entry.get("value", 0.0) for entry in family["series"])


def tracing_overhead(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Peak-rate comparison of the tracing-off vs tracing-on series."""
    peak: dict[bool, float] = {}
    for row in rows:
        flag = bool(row["tracing"])
        peak[flag] = max(peak.get(flag, 0.0), row["rate"])
    off, on = peak.get(False, 0.0), peak.get(True, 0.0)
    overhead = 1.0 - (on / off) if off > 0 else 0.0
    return {"peak_rate_off": off, "peak_rate_on": on, "overhead": overhead}


def build_record(config: Optional[BenchConfig] = None) -> dict[str, Any]:
    """Run the PR-10 bench suite and assemble the record document.

    On top of the PR-8 sections this adds the MQL index ablation: the
    same conjunctive statements executed with the attribute secondary
    indexes (``index`` strategy) and without them (``scan``), over the
    figure-11 attribute-count axis.  The headline is the ``mql_index``
    summary — the indexed series must beat the scan series by at least
    3x at the largest attribute count.
    """
    from repro.obs import slo as _slo
    from repro.obs import trace as _trace

    if config is None:
        config = BenchConfig(
            db_sizes=(400,), thread_counts=(1, 4), duration=0.4
        )
    try:
        mql_rows = sweep_mql_index_ablation(config)
        ablation = sweep_tracing_ablation(config)
        conn_rows = sweep_connection_scaling(config)
    finally:
        clear_environments()
    try:
        fig5_sharded = sweep_figure5_sharded(config)
        fig8_sharded = sweep_figure8_sharded(config)
    finally:
        clear_sharded_environments()
    snapshot = get_registry().snapshot()
    return {
        "bench": "PR10",
        "config": {
            "db_sizes": list(config.db_sizes),
            "thread_counts": list(config.thread_counts),
            "duration_s": config.duration,
            "shard_counts": list(config.shard_counts),
            "shard_threads": config.shard_threads,
            "shard_commit_ms": config.shard_commit_ms,
            "conn_base": config.conn_base,
            "conn_scale": config.conn_scale,
            "conn_active_threads": config.conn_active_threads,
            "conn_duration_s": config.conn_duration,
        },
        "sweeps": {
            "mql_index_ablation": mql_rows,
            "tracing_ablation": ablation,
            "connection_scaling": conn_rows,
            "figure5_sharded": fig5_sharded,
            "figure8_sharded": fig8_sharded,
        },
        "mql_index": mql_index_summary(mql_rows),
        "connection_scaling": connection_scaling_summary(conn_rows),
        "shard_scaling": shard_scaling_summary(fig5_sharded),
        "tracing_overhead": tracing_overhead(ablation),
        "soap_request_seconds": latency_summary(),
        "layer_breakdown": obs_breakdown(snapshot),
        "obs": {
            "span_ring_capacity": _trace.span_ring_capacity(),
            "spans_dropped_total": _counter_total(
                snapshot, "mcs_obs_spans_dropped_total"
            ),
            "slo": _slo.SLO.snapshot(),
        },
    }


def write_record(path: str, record: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
