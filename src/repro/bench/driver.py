"""Client drivers: threads of closed-loop MCS clients, two transports.

``BenchEnvironment`` owns one populated catalog, its service, and a
running SOAP server; drivers then spawn client threads over either
transport.  The two modes reproduce the paper's comparison:

* ``mode="direct"`` — clients call the service in-process ("MySQL
  without web service" in §7: database access plus the request→SQL
  conversion overhead);
* ``mode="soap"`` — clients speak SOAP over a real TCP connection ("MCS
  with web service").
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.bench.timing import RateResult, count_until_stopped, run_workers
from repro.core.catalog import MetadataCatalog
from repro.core.client import MCSClient
from repro.core.query import ObjectQuery
from repro.core.service import MCSService
from repro.soap.server import SoapServer
from repro.workloads.population import PopulationSpec, populate_catalog
from repro.workloads.queries import QueryWorkload

OpFactory = Callable[[MCSClient, str], Callable[[int], None]]


class BenchEnvironment:
    """One populated MCS instance plus transports for benchmarking.

    ``shards`` switches the backing store from a single in-memory
    :class:`MetadataCatalog` to a :class:`repro.shard.ShardedCatalog` of
    that many engines behind the same service — the PR-7 sharded sweeps.
    With ``shard_dir`` set each shard is durable (own WAL + fsync), which
    is the configuration whose commit parallelism the sharded add-rate
    figures measure.
    """

    def __init__(
        self,
        spec: PopulationSpec,
        soap_latency_s: float = 0.015,
        shards: Optional[int] = None,
        shard_dir: Optional[str] = None,
    ) -> None:
        self.spec = spec
        # Simulated client↔server network distance for SOAP clients; see
        # HttpTransport.simulated_latency_s and DESIGN.md (substitutions).
        self.soap_latency_s = soap_latency_s
        self.shards = shards
        if shards is None:
            self.catalog = MetadataCatalog()
        else:
            from repro.shard import build_sharded_catalog

            self.catalog = build_sharded_catalog(
                shards,
                directory=shard_dir,
                durable_sync=shard_dir is not None,
            )
        populate_catalog(self.catalog, spec)
        self.service = MCSService(self.catalog)
        self._server: Optional[SoapServer] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def server(self) -> SoapServer:
        if self._server is None:
            self._server = SoapServer(
                self.service.handle, fault_mapper=self.service.fault_mapper
            ).start()
        return self._server

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self.shards is not None:
            self.catalog.close()

    # -- clients ---------------------------------------------------------------

    def make_client(self, mode: str) -> MCSClient:
        """Build a client for ``mode``: ``direct`` or ``soap``, optionally
        with a ``+resilience`` suffix wrapping the transport in the
        retry/deadline/breaker layer (the resilience-overhead ablation)."""
        base_mode, _, suffix = mode.partition("+")
        if suffix not in ("", "resilience"):
            raise ValueError(f"unknown mode suffix {suffix!r} in {mode!r}")
        if base_mode == "direct":
            client = MCSClient.in_process(self.service, caller="bench")
        elif base_mode == "soap":
            from repro.soap.transport import HttpTransport

            host, port = self.server.endpoint
            transport = HttpTransport(
                host, port, simulated_latency_s=self.soap_latency_s
            )
            client = MCSClient(transport, caller="bench")
        else:
            raise ValueError(f"unknown mode {mode!r}")
        if suffix == "resilience":
            from repro.core.client import is_read_method
            from repro.resilience.transport import ResilientTransport

            client._transport = ResilientTransport(
                client._transport,
                endpoint=f"bench-{base_mode}",
                is_idempotent=is_read_method,
            )
        return client

    # -- operation factories ------------------------------------------------------

    def add_op(self, client: MCSClient, worker_id: str) -> Callable[[int], None]:
        """Pure add: register a fresh 10-attribute file per iteration.

        Unlike :meth:`add_delete_op` nothing is deleted, so every
        iteration is exactly one durable create — the op the sharded
        add-rate sweeps scale across shard counts (deletes would add a
        scatter locate per iteration and measure the router, not the
        commit path)."""
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            name, attributes = workload.add_args(worker_id)
            client.create_logical_file(name, attributes=attributes)

        return op

    def add_delete_op(self, client: MCSClient, worker_id: str) -> Callable[[int], None]:
        """The §7 add operation: add a file with 10 attributes, then
        delete it to keep the database size constant."""
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            name, attributes = workload.add_args(worker_id)
            client.create_logical_file(name, attributes=attributes)
            client.delete_logical_file(name)

        return op

    def bulk_add_delete_op(
        self, client: MCSClient, worker_id: str, batch_size: int = 32
    ) -> Callable[[int], None]:
        """Batched add/delete: one bulk_create_files call for
        ``batch_size`` files (10 attributes each), then one pipelined
        ``<BulkRequest>`` of deletes — two round trips per batch instead
        of ``2 * batch_size``.  The returned op carries
        ``ops_per_iteration = batch_size`` so drivers weight each
        iteration as that many add/delete pairs.
        """
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            batch = [workload.add_args(worker_id) for _ in range(batch_size)]
            client.bulk_create_files(
                [{"name": name, "attributes": attrs} for name, attrs in batch]
            )
            with client.bulk() as deletes:
                for name, _attrs in batch:
                    deletes.call("delete_logical_file", name=name)

        op.ops_per_iteration = batch_size  # type: ignore[attr-defined]
        return op

    def simple_query_op(self, client: MCSClient, worker_id: str) -> Callable[[int], None]:
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            field, value = workload.simple_query_args()
            client.query(ObjectQuery().where_field(field, "=", value))

        return op

    def complex_query_op(
        self, client: MCSClient, worker_id: str, num_attributes: int = 10
    ) -> Callable[[int], None]:
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            conditions = workload.complex_query_conditions(num_attributes)
            query = ObjectQuery()
            for attr, value in conditions.items():
                query.where(attr, "=", value)
            client.query(query)

        return op

    def mql_query_op(
        self, client: MCSClient, worker_id: str, num_attributes: int = 10
    ) -> Callable[[int], None]:
        """Figure-11-shaped conjunctions expressed as MQL text.

        Each iteration rebuilds the statement through the canonical
        printer, so the measured path is the full pipeline — parse, plan
        (or plan-cache hit), execute — under whatever execution strategy
        the catalog currently forces (the MQL ablation axis).
        """
        from repro.mql import to_mql
        from repro.mql.ast import And, Condition, Query, Statement

        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)

        def op(_: int) -> None:
            conditions = workload.complex_query_conditions(num_attributes)
            parts = tuple(
                Condition(attr, "=", value)
                for attr, value in conditions.items()
            )
            where = parts[0] if len(parts) == 1 else And(parts)
            client.query_mql(
                to_mql(Statement(source=Query(object_type="file", where=where)))
            )

        return op

    def repeated_complex_query_op(
        self, client: MCSClient, worker_id: str, num_attributes: int = 10,
        distinct: int = 8,
    ) -> Callable[[int], None]:
        """Complex queries drawn from a small fixed pool, cycled per worker.

        The repetition is what the read cache can exploit; with the cache
        off every iteration pays the full EAV join, so this op is the
        workload for the cache on/off ablation sweep.
        """
        workload = QueryWorkload(self.spec, seed=hash(worker_id) & 0xFFFF)
        pool = [
            workload.complex_query_conditions(num_attributes)
            for _ in range(distinct)
        ]

        def op(i: int) -> None:
            query = ObjectQuery()
            for attr, value in pool[i % distinct].items():
                query.where(attr, "=", value)
            client.query(query)

        return op


def run_closed_loop(
    env: BenchEnvironment,
    mode: str,
    op_factory: OpFactory,
    threads: int,
    duration: float,
    worker_prefix: str = "w",
) -> RateResult:
    """Measure ops/second with *threads* closed-loop clients."""
    clients = [env.make_client(mode) for _ in range(threads)]
    try:
        worker_fns = []
        for idx, client in enumerate(clients):
            op = op_factory(client, f"{worker_prefix}{idx}")
            weight = getattr(op, "ops_per_iteration", 1)
            worker_fns.append(
                lambda stop, op=op, weight=weight: count_until_stopped(
                    op, stop, ops_per_iteration=weight
                )
            )
        return run_workers(worker_fns, duration)
    finally:
        for client in clients:
            client.close()
