"""``python -m repro.bench`` — run the bench suite, write a JSON record."""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.bench.record import build_record, write_record
from repro.bench.sweeps import BenchConfig


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the bench suite and write a machine-readable record",
    )
    parser.add_argument("--out", default="BENCH_PR10.json", metavar="FILE")
    parser.add_argument("--db-size", type=int, default=400)
    parser.add_argument("--threads", type=int, nargs="+", default=[1, 4])
    parser.add_argument("--duration", type=float, default=0.4)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts for the sharded add-rate sweeps",
    )
    parser.add_argument(
        "--conn-base", type=int, default=50,
        help="idle keep-alive herd against the threaded server "
        "(the asyncio front end carries 10x this)",
    )
    args = parser.parse_args(argv)

    config = BenchConfig(
        db_sizes=(args.db_size,),
        thread_counts=tuple(args.threads),
        duration=args.duration,
        shard_counts=tuple(args.shards),
        conn_base=args.conn_base,
    )
    record = build_record(config)
    write_record(args.out, record)
    mql = record["mql_index"]
    if mql:
        print(
            f"mql index ablation: {mql['index_rate']:.0f} q/s indexed vs "
            f"{mql['scan_rate']:.0f} q/s scan at "
            f"{mql['attribute_count']} attributes "
            f"({mql['speedup']:.1f}x)"
        )
    overhead = record["tracing_overhead"]
    scaling = record["shard_scaling"]
    print(
        f"wrote {args.out}: peak {overhead['peak_rate_off']:.0f} ops/s "
        f"untraced, {overhead['peak_rate_on']:.0f} ops/s traced "
        f"({overhead['overhead']:+.2%} overhead)"
    )
    if scaling:
        print(
            f"sharded add rate (emulated commit): "
            + ", ".join(
                f"{k} shard(s) {v:.0f}/s" for k, v in scaling["rates"].items()
            )
            + f" — {scaling['speedup']:.2f}x at {scaling['shards']} shards"
        )
    conn = record["connection_scaling"]
    if conn:
        print(
            f"connection scaling: async holds {conn['async_connections']} "
            f"keep-alive conns vs {conn['threaded_connections']} threaded "
            f"({conn['connection_ratio']:.0f}x) at p99 "
            f"{conn['async_p99_ms']:.2f}ms vs {conn['threaded_p99_ms']:.2f}ms "
            f"({conn['p99_ratio']:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
