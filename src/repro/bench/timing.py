"""Closed-loop rate measurement primitives."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class RateResult:
    """Outcome of one timed run."""

    operations: int
    seconds: float
    workers: int
    errors: int = 0

    @property
    def rate(self) -> float:
        """Operations per second."""
        return self.operations / self.seconds if self.seconds > 0 else 0.0


def run_workers(
    worker_fns: list[Callable[[threading.Event], int]],
    duration: float,
) -> RateResult:
    """Run each callable in its own thread until the deadline.

    Each worker receives a stop Event and returns its completed-operation
    count; the measured window starts when all workers are ready (barrier)
    and ends when the stop flag is raised.
    """
    counts = [0] * len(worker_fns)
    errors = [0] * len(worker_fns)
    stop = threading.Event()
    start_barrier = threading.Barrier(len(worker_fns) + 1)

    def runner(idx: int, fn: Callable[[threading.Event], int]) -> None:
        try:
            start_barrier.wait()
        except threading.BrokenBarrierError:  # pragma: no cover
            return
        try:
            counts[idx] = fn(stop)
        except Exception:
            errors[idx] += 1
            raise

    threads = [
        threading.Thread(target=runner, args=(i, fn), daemon=True)
        for i, fn in enumerate(worker_fns)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.perf_counter()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    elapsed = time.perf_counter() - started
    return RateResult(
        operations=sum(counts),
        seconds=elapsed,
        workers=len(worker_fns),
        errors=sum(errors),
    )


def count_until_stopped(
    op: Callable[[int], None],
    stop: threading.Event,
    ops_per_iteration: int = 1,
) -> int:
    """Loop *op* until the stop flag; returns completed operations.

    ``ops_per_iteration`` weights batched ops: one iteration of a
    batch-32 op counts as 32 operations, so rates stay comparable
    across batch sizes.
    """
    done = 0
    while not stop.is_set():
        op(done)
        done += 1
    return done * ops_per_iteration
