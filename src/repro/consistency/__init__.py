"""Master-copy data consistency service.

The MCS deliberately stores almost no physical metadata, with one
exception (§3): "To support replica management and data consistency, the
Metadata Service may provide support for associating a *master copy*
attribute with metadata mappings.  A master copy is the definitive
physical copy of a data item; typically, updates are made to the master
copy and then propagated to other copies."

:class:`~repro.consistency.manager.ConsistencyManager` is the
"higher level data consistency service" the paper alludes to: it updates
the master copy, bumps a version, propagates content to every replica
registered in the RLS, and can audit replica freshness by checksum.
"""

from repro.consistency.manager import ConsistencyManager, ReplicaState

__all__ = ["ConsistencyManager", "ReplicaState"]
