"""Propagating updates from a file's master copy to its replicas."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.client import MCSClient
from repro.gridftp.transfer import GridFTPServer, parse_gsiftp_url
from repro.rls.client import RLSClient


class ReplicaState(enum.Enum):
    """Freshness of one replica relative to the master copy."""

    CURRENT = "current"
    STALE = "stale"
    MISSING = "missing"
    MASTER = "master"


@dataclass(frozen=True)
class ReplicaAudit:
    """One replica's audit result."""

    url: str
    state: ReplicaState


class ConsistencyManager:
    """Keeps replicas of a logical file consistent with its master copy.

    The MCS stores *which* physical copy is definitive (``master_copy``);
    the RLS stores where the replicas are; GridFTP moves the bytes.  This
    service glues them: ``update_master`` writes new content to the
    master and propagates it; ``audit`` reports per-replica freshness;
    ``repair`` re-pushes to stale replicas only.
    """

    def __init__(
        self,
        mcs: MCSClient,
        rls: RLSClient,
        gridftp: GridFTPServer,
    ) -> None:
        self.mcs = mcs
        self.rls = rls
        self.gridftp = gridftp

    # -- designation ---------------------------------------------------------

    def designate_master(self, logical_name: str, master_url: str) -> None:
        """Record *master_url* as the file's definitive copy in the MCS."""
        site, path = parse_gsiftp_url(master_url)  # validates the URL shape
        if site not in self.gridftp.sites or not self.gridftp.sites[site].exists(path):
            raise FileNotFoundError(f"no physical copy at {master_url}")
        self.mcs.modify_logical_file(logical_name, master_copy=master_url)

    def master_of(self, logical_name: str) -> str:
        record = self.mcs.get_logical_file(logical_name)
        master = record.get("master_copy")
        if not master:
            raise LookupError(f"{logical_name!r} has no master copy designated")
        return master

    # -- updates -----------------------------------------------------------------

    def update_master(
        self,
        logical_name: str,
        content: bytes,
        propagate: bool = True,
        note: Optional[str] = None,
    ) -> int:
        """Write new content to the master copy; optionally propagate.

        Returns the number of replicas refreshed.  A transformation
        record documents the update (provenance).
        """
        master_url = self.master_of(logical_name)
        site_name, path = parse_gsiftp_url(master_url)
        self.gridftp.sites[site_name].store(path, content)
        self.mcs.add_transformation(
            logical_name, note or "master copy updated"
        )
        if not propagate:
            return 0
        return self.propagate(logical_name)

    def propagate(self, logical_name: str) -> int:
        """Push the master's current content to every registered replica."""
        master_url = self.master_of(logical_name)
        refreshed = 0
        for replica_url in self._replica_urls(logical_name):
            if replica_url == master_url:
                continue
            self.gridftp.transfer(master_url, replica_url)
            refreshed += 1
        return refreshed

    # -- auditing ------------------------------------------------------------------

    def audit(self, logical_name: str) -> list[ReplicaAudit]:
        """Compare every replica's checksum against the master's."""
        master_url = self.master_of(logical_name)
        master_site, master_path = parse_gsiftp_url(master_url)
        master_sum = self.gridftp.sites[master_site].checksum(master_path)
        out = [ReplicaAudit(master_url, ReplicaState.MASTER)]
        for replica_url in self._replica_urls(logical_name):
            if replica_url == master_url:
                continue
            site_name, path = parse_gsiftp_url(replica_url)
            site = self.gridftp.sites.get(site_name)
            if site is None or not site.exists(path):
                out.append(ReplicaAudit(replica_url, ReplicaState.MISSING))
            elif site.checksum(path) != master_sum:
                out.append(ReplicaAudit(replica_url, ReplicaState.STALE))
            else:
                out.append(ReplicaAudit(replica_url, ReplicaState.CURRENT))
        return out

    def repair(self, logical_name: str) -> int:
        """Re-push the master's content to stale or missing replicas only."""
        master_url = self.master_of(logical_name)
        repaired = 0
        for entry in self.audit(logical_name):
            if entry.state in (ReplicaState.STALE, ReplicaState.MISSING):
                self.gridftp.transfer(master_url, entry.url)
                repaired += 1
        return repaired

    # -- internals -----------------------------------------------------------------------

    def _replica_urls(self, logical_name: str) -> list[str]:
        urls: list[str] = []
        for replicas in self.rls.lookup(logical_name).values():
            urls.extend(replicas)
        return sorted(set(urls))
