"""GridFTP-like data transfer simulator.

The paper's discovery-and-access scenario (Figure 2) ends with the client
fetching selected replicas over GridFTP [7].  This package simulates that
substrate: storage sites holding file content, a bandwidth/latency model
with parallel streams, and third-party transfers between sites.
"""

from repro.gridftp.site import StorageSite
from repro.gridftp.transfer import GridFTPServer, TransferResult, parse_gsiftp_url

__all__ = ["StorageSite", "GridFTPServer", "TransferResult", "parse_gsiftp_url"]
