"""The transfer protocol: parallel-stream GridFTP simulation.

The simulator models the features GridFTP is known for — parallel TCP
streams, striped throughput that saturates at the bottleneck link, and
third-party (site-to-site) transfers — with a simple analytic time model:

    time = handshake + latency + bytes / effective_bandwidth
    effective_bandwidth = min(src, dst) * stream_efficiency(streams)

where stream efficiency rises with diminishing returns (each extra
stream recovers part of the latency-bound window).  Transfers complete
instantly in wall-clock terms; the *simulated* duration is returned so
experiments can account time without sleeping.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional

HANDSHAKE_SECONDS = 0.050  # control-channel setup (auth + negotiation)
_URL_RE = re.compile(r"^gsiftp://([^/]+)/(.*)$")


def parse_gsiftp_url(url: str) -> tuple[str, str]:
    """Split a gsiftp:// URL into (site, path)."""
    match = _URL_RE.match(url)
    if not match:
        raise ValueError(f"not a gsiftp URL: {url!r}")
    return match.group(1), match.group(2)


def stream_efficiency(streams: int) -> float:
    """Fraction of link bandwidth achieved with N parallel streams.

    One stream on a high-latency path achieves ~55% of the link; each
    doubling claws back half the remaining window (matching the shape of
    published GridFTP striping results).
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    efficiency = 0.55
    gap = 1.0 - efficiency
    n = streams
    while n > 1:
        gap /= 2
        n //= 2
    return 1.0 - gap


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer."""

    source_url: str
    dest_url: str
    size_bytes: int
    streams: int
    simulated_seconds: float
    checksum: str

    @property
    def throughput_mbps(self) -> float:
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.size_bytes * 8 / 1e6 / self.simulated_seconds


class GridFTPServer:
    """Transfer engine over a registry of storage sites."""

    def __init__(self, sites: Mapping[str, "object"]) -> None:
        from repro.gridftp.site import StorageSite

        self.sites: dict[str, StorageSite] = dict(sites)
        self.transfer_log: list[TransferResult] = []

    def add_site(self, site: "object") -> None:
        self.sites[site.name] = site

    def _site(self, name: str):
        try:
            return self.sites[name]
        except KeyError:
            raise FileNotFoundError(f"unknown site {name!r}") from None

    def transfer(
        self,
        source_url: str,
        dest_url: str,
        streams: int = 4,
    ) -> TransferResult:
        """Third-party transfer between two gsiftp URLs."""
        src_site_name, src_path = parse_gsiftp_url(source_url)
        dst_site_name, dst_path = parse_gsiftp_url(dest_url)
        src = self._site(src_site_name)
        dst = self._site(dst_site_name)
        content = src.read(src_path)
        dst.store(dst_path, content)
        seconds = self._simulate_time(src, dst, len(content), streams)
        result = TransferResult(
            source_url=source_url,
            dest_url=dest_url,
            size_bytes=len(content),
            streams=streams,
            simulated_seconds=seconds,
            checksum=dst.checksum(dst_path),
        )
        self.transfer_log.append(result)
        return result

    def fetch(self, source_url: str, streams: int = 4) -> tuple[bytes, TransferResult]:
        """Client-side GET: returns content plus the simulated result."""
        site_name, path = parse_gsiftp_url(source_url)
        site = self._site(site_name)
        content = site.read(path)
        seconds = self._simulate_time(site, None, len(content), streams)
        result = TransferResult(
            source_url=source_url,
            dest_url="client://local",
            size_bytes=len(content),
            streams=streams,
            simulated_seconds=seconds,
            checksum=site.checksum(path),
        )
        self.transfer_log.append(result)
        return content, result

    @staticmethod
    def _simulate_time(src, dst, size_bytes: int, streams: int) -> float:
        bandwidth = src.wan_bandwidth_mbps
        latency_ms = src.latency_ms
        if dst is not None:
            bandwidth = min(bandwidth, dst.wan_bandwidth_mbps)
            latency_ms += dst.latency_ms
        effective = bandwidth * stream_efficiency(streams)  # Mbit/s
        return (
            HANDSHAKE_SECONDS
            + latency_ms / 1000.0
            + size_bytes * 8 / (effective * 1e6)
        )
