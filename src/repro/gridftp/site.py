"""Storage sites: named stores of file content with bandwidth properties."""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Optional


class StorageSite:
    """A storage system reachable by the transfer protocol.

    Content is held in memory (bytes); ``wan_bandwidth`` / ``latency``
    parameterize the simulated network between this site and any other.
    """

    def __init__(
        self,
        name: str,
        wan_bandwidth_mbps: float = 1000.0,
        latency_ms: float = 20.0,
    ) -> None:
        if wan_bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.wan_bandwidth_mbps = wan_bandwidth_mbps
        self.latency_ms = latency_ms
        self._files: dict[str, bytes] = {}
        self._lock = threading.Lock()

    # -- content -----------------------------------------------------------

    def store(self, path: str, content: bytes) -> None:
        with self._lock:
            self._files[path] = bytes(content)

    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                return self._files[path]
            except KeyError:
                raise FileNotFoundError(f"{self.name}:{path}") from None

    def delete(self, path: str) -> bool:
        with self._lock:
            return self._files.pop(path, None) is not None

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def size(self, path: str) -> int:
        return len(self.read(path))

    def checksum(self, path: str) -> str:
        return hashlib.sha256(self.read(path)).hexdigest()

    def paths(self) -> list[str]:
        with self._lock:
            return sorted(self._files)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._files.values())

    def url_for(self, path: str) -> str:
        """gsiftp:// URL naming this site + path."""
        return f"gsiftp://{self.name}/{path.lstrip('/')}"
