"""The container service: build, store, extract, and register containers."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.container.format import (
    extract_member,
    list_members,
    pack_container,
    unpack_container,
)
from repro.core.client import MCSClient
from repro.gridftp.site import StorageSite


class ContainerService:
    """Groups small data objects into containers on storage sites.

    A container lives at ``<site>:containers/<container_id>.mcsc``; member
    logical files registered through :meth:`publish_container` carry the
    MCS ``container_id`` and ``container_service`` attributes so clients
    can find the service responsible for extraction.
    """

    def __init__(self, name: str = "container-svc") -> None:
        self.name = name
        self._sites: dict[str, StorageSite] = {}

    def add_site(self, site: StorageSite) -> None:
        self._sites[site.name] = site

    @staticmethod
    def container_path(container_id: str) -> str:
        return f"containers/{container_id}.mcsc"

    # -- construction ---------------------------------------------------------

    def build_container(
        self,
        site_name: str,
        container_id: str,
        members: Mapping[str, bytes],
    ) -> str:
        """Pack members and store the container; returns its gsiftp URL."""
        site = self._site(site_name)
        blob = pack_container(members)
        path = self.container_path(container_id)
        site.store(path, blob)
        return site.url_for(path)

    def build_from_site_files(
        self,
        site_name: str,
        container_id: str,
        paths: list[str],
        delete_originals: bool = True,
    ) -> str:
        """Containerize loose files already on the site."""
        site = self._site(site_name)
        members = {path: site.read(path) for path in paths}
        url = self.build_container(site_name, container_id, members)
        if delete_originals:
            for path in paths:
                site.delete(path)
        return url

    # -- access ------------------------------------------------------------------

    def members(self, site_name: str, container_id: str) -> list[str]:
        blob = self._blob(site_name, container_id)
        return list_members(blob)

    def extract(self, site_name: str, container_id: str, member: str) -> bytes:
        """Extract one data item from a container (the service's job)."""
        blob = self._blob(site_name, container_id)
        return extract_member(blob, member)

    def extract_all(self, site_name: str, container_id: str) -> dict[str, bytes]:
        return unpack_container(self._blob(site_name, container_id))

    def unpack_to_site(self, site_name: str, container_id: str) -> list[str]:
        """Expand a container back into loose files on its site."""
        site = self._site(site_name)
        members = self.extract_all(site_name, container_id)
        for name, payload in members.items():
            site.store(name, payload)
        return sorted(members)

    # -- MCS integration -----------------------------------------------------------

    def publish_container(
        self,
        mcs: MCSClient,
        site_name: str,
        container_id: str,
        members: Mapping[str, bytes],
        collection: Optional[str] = None,
        data_type: str = "binary",
    ) -> str:
        """Build + store a container and register every member in the MCS
        with container_id / container_service attributes."""
        url = self.build_container(site_name, container_id, members)
        for logical_name in members:
            mcs.create_logical_file(
                logical_name,
                data_type=data_type,
                collection=collection,
                container_id=container_id,
                container_service=self.name,
            )
        return url

    def fetch_logical_file(
        self, mcs: MCSClient, site_name: str, logical_name: str
    ) -> bytes:
        """Resolve a containerized logical file via its MCS record."""
        record = mcs.get_logical_file(logical_name)
        container_id = record.get("container_id")
        if not container_id:
            raise LookupError(f"{logical_name!r} is not containerized")
        if record.get("container_service") not in (None, self.name):
            raise LookupError(
                f"{logical_name!r} belongs to service "
                f"{record['container_service']!r}, not {self.name!r}"
            )
        return self.extract(site_name, container_id, logical_name)

    # -- internals ---------------------------------------------------------------------

    def _site(self, name: str) -> StorageSite:
        try:
            return self._sites[name]
        except KeyError:
            raise LookupError(f"unknown site {name!r}") from None

    def _blob(self, site_name: str, container_id: str) -> bytes:
        return self._site(site_name).read(self.container_path(container_id))
