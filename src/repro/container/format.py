"""The container file format.

Layout (all integers big-endian)::

    magic    4 bytes   b"MCScontain"[:4] = b"MCSc"
    version  2 bytes   format version (1)
    count    4 bytes   number of members
    index    per member:
        name_len   2 bytes
        name       name_len bytes (UTF-8)
        offset     8 bytes   into the data section
        size       8 bytes
        sha256     32 bytes
    data     concatenated member payloads

Offsets are relative to the start of the data section so the index can be
parsed without knowing its own size in advance.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Mapping

MAGIC = b"MCSc"
VERSION = 1

_HEADER = struct.Struct(">4sHI")
_ENTRY_FIXED = struct.Struct(">QQ32s")


class ContainerFormatError(Exception):
    """The blob is not a valid container."""


def pack_container(members: Mapping[str, bytes]) -> bytes:
    """Serialize members (name → payload) into one container blob."""
    if not members:
        raise ContainerFormatError("a container needs at least one member")
    index_parts: list[bytes] = []
    data_parts: list[bytes] = []
    offset = 0
    for name in sorted(members):
        payload = members[name]
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise ContainerFormatError(f"member name too long: {name[:40]}...")
        index_parts.append(struct.pack(">H", len(encoded)))
        index_parts.append(encoded)
        index_parts.append(
            _ENTRY_FIXED.pack(offset, len(payload), hashlib.sha256(payload).digest())
        )
        data_parts.append(payload)
        offset += len(payload)
    header = _HEADER.pack(MAGIC, VERSION, len(members))
    return header + b"".join(index_parts) + b"".join(data_parts)


def _parse_index(blob: bytes) -> tuple[dict[str, tuple[int, int, bytes]], int]:
    """Returns ({name: (offset, size, digest)}, data_section_start)."""
    if len(blob) < _HEADER.size:
        raise ContainerFormatError("truncated container header")
    magic, version, count = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ContainerFormatError("bad magic; not a container")
    if version != VERSION:
        raise ContainerFormatError(f"unsupported container version {version}")
    index: dict[str, tuple[int, int, bytes]] = {}
    position = _HEADER.size
    for _ in range(count):
        if position + 2 > len(blob):
            raise ContainerFormatError("truncated index")
        (name_len,) = struct.unpack_from(">H", blob, position)
        position += 2
        name = blob[position : position + name_len].decode("utf-8")
        position += name_len
        if position + _ENTRY_FIXED.size > len(blob):
            raise ContainerFormatError("truncated index entry")
        offset, size, digest = _ENTRY_FIXED.unpack_from(blob, position)
        position += _ENTRY_FIXED.size
        index[name] = (offset, size, digest)
    return index, position


def list_members(blob: bytes) -> list[str]:
    """Member names without extracting payloads."""
    index, _ = _parse_index(blob)
    return sorted(index)


def unpack_container(blob: bytes) -> dict[str, bytes]:
    """Extract every member, verifying checksums."""
    index, data_start = _parse_index(blob)
    out: dict[str, bytes] = {}
    for name, (offset, size, digest) in index.items():
        start = data_start + offset
        payload = blob[start : start + size]
        if len(payload) != size:
            raise ContainerFormatError(f"member {name!r} truncated")
        if hashlib.sha256(payload).digest() != digest:
            raise ContainerFormatError(f"member {name!r} fails checksum")
        out[name] = payload
    return out


def extract_member(blob: bytes, name: str) -> bytes:
    """Extract one member, verifying its checksum."""
    index, data_start = _parse_index(blob)
    if name not in index:
        raise KeyError(name)
    offset, size, digest = index[name]
    payload = blob[data_start + offset : data_start + offset + size]
    if len(payload) != size or hashlib.sha256(payload).digest() != digest:
        raise ContainerFormatError(f"member {name!r} corrupt")
    return payload
