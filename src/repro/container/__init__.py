"""External container service.

The MCS schema carries ``container_id`` / ``container_service`` attributes
pointing at "an external container service that is used to group together
large numbers of relatively small data objects for efficient data storage
and transfer.  The external container service is responsible for
constructing containers and extracting individual data items from the
container" (§3/§5).

* :mod:`repro.container.format` — the on-disk container format (indexed
  aggregate with per-member checksums);
* :mod:`repro.container.service` — the service: build containers on
  storage sites, extract members, register membership in the MCS.
"""

from repro.container.format import ContainerFormatError, pack_container, unpack_container, list_members
from repro.container.service import ContainerService

__all__ = [
    "pack_container",
    "unpack_container",
    "list_members",
    "ContainerFormatError",
    "ContainerService",
]
