"""Durability: snapshot files plus a write-ahead log.

Layout of a database directory::

    <dir>/snapshot.json   full image (schema + rows) at some point in time
    <dir>/wal.log         JSON-lines of committed transactions since then

Each committed transaction appends its records followed by a commit
marker; recovery replays only transactions whose marker is present, so a
crash mid-append loses at most the uncommitted tail.

Values are encoded with type tags so DATE/TIME/DATETIME round-trip::

    {"t": "date", "v": "2003-11-15"}
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import time
from typing import Any, Optional

from repro import faults
from repro.db.errors import RecoveryError
from repro.db.schema import Column, ForeignKey, IndexDef, TableDef
from repro.db.storage import Catalog
from repro.db.types import ColumnType
from repro.obs.metrics import OBS, counter as _obs_counter, histogram as _obs_histogram

SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.log"

_WAL_APPENDS = _obs_counter(
    "mcs_db_wal_appends_total", "Committed transactions appended to the WAL"
)
_WAL_RECORDS = _obs_counter(
    "mcs_db_wal_records_total", "Logical records written to the WAL"
)
_WAL_BYTES = _obs_counter("mcs_db_wal_bytes_total", "Bytes written to the WAL")
_WAL_FSYNCS = _obs_counter(
    "mcs_db_wal_fsyncs_total", "fsync calls issued by the WAL (durable_sync mode)"
)
_WAL_APPEND_SECONDS = _obs_histogram(
    "mcs_db_wal_append_seconds", "WAL append latency (write + flush + optional fsync)"
)


def encode_value(value: Any) -> Any:
    if isinstance(value, _dt.datetime):
        return {"t": "datetime", "v": value.strftime("%Y-%m-%d %H:%M:%S.%f")}
    if isinstance(value, _dt.date):
        return {"t": "date", "v": value.isoformat()}
    if isinstance(value, _dt.time):
        return {"t": "time", "v": value.strftime("%H:%M:%S.%f")}
    return value


def decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "t" in value:
        kind, text = value["t"], value["v"]
        if kind == "datetime":
            return _dt.datetime.strptime(text, "%Y-%m-%d %H:%M:%S.%f")
        if kind == "date":
            return _dt.date.fromisoformat(text)
        if kind == "time":
            return _dt.datetime.strptime(text, "%H:%M:%S.%f").time()
        raise RecoveryError(f"unknown value tag {kind!r}")
    return value


def encode_row(row: tuple) -> list:
    return [encode_value(v) for v in row]


def decode_row(row: list) -> tuple:
    return tuple(decode_value(v) for v in row)


# --------------------------------------------------------------------------
# Schema serialization
# --------------------------------------------------------------------------


def table_def_to_dict(definition: TableDef) -> dict:
    return {
        "name": definition.name,
        "columns": [
            {
                "name": c.name,
                "type": c.ctype.value,
                "nullable": c.nullable,
                "default": encode_value(c.default),
                "autoincrement": c.autoincrement,
            }
            for c in definition.columns
        ],
        "primary_key": list(definition.primary_key),
        "unique": [list(u) for u in definition.unique],
        "foreign_keys": [
            {
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
            for fk in definition.foreign_keys
        ],
    }


def table_def_from_dict(data: dict) -> TableDef:
    return TableDef(
        name=data["name"],
        columns=[
            Column(
                name=c["name"],
                ctype=ColumnType(c["type"]),
                nullable=c["nullable"],
                default=decode_value(c["default"]),
                autoincrement=c["autoincrement"],
            )
            for c in data["columns"]
        ],
        primary_key=tuple(data["primary_key"]),
        unique=[tuple(u) for u in data["unique"]],
        foreign_keys=[
            ForeignKey(tuple(f["columns"]), f["ref_table"], tuple(f["ref_columns"]))
            for f in data["foreign_keys"]
        ],
    )


# --------------------------------------------------------------------------
# Snapshot
# --------------------------------------------------------------------------


def write_snapshot(catalog: Catalog, directory: str) -> None:
    """Write a full image atomically (write temp file, rename over)."""
    payload = {"tables": []}
    for name in catalog.table_names():
        table = catalog.table(name)
        payload["tables"].append(
            {
                "def": table_def_to_dict(table.definition),
                "indexes": [
                    {
                        "name": d.name,
                        "columns": list(d.columns),
                        "unique": d.unique,
                    }
                    for d in table.index_defs()
                    if not d.name.startswith("__")
                ],
                "rows": [[rid, encode_row(row)] for rid, row in table.scan()],
            }
        )
    os.makedirs(directory, exist_ok=True)
    tmp = os.path.join(directory, SNAPSHOT_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, os.path.join(directory, SNAPSHOT_NAME))


def load_snapshot(catalog: Catalog, directory: str) -> bool:
    """Populate *catalog* from a snapshot; returns False when absent."""
    path = os.path.join(directory, SNAPSHOT_NAME)
    if not os.path.exists(path):
        return False
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise RecoveryError(f"unreadable snapshot {path!r}: {exc}") from exc
    for entry in payload.get("tables", []):
        definition = table_def_from_dict(entry["def"])
        table = catalog.create_table(definition)
        for index in entry.get("indexes", []):
            table.create_index(
                IndexDef(
                    name=index["name"],
                    table=definition.name,
                    columns=tuple(index["columns"]),
                    unique=index["unique"],
                )
            )
        for rid, row in entry.get("rows", []):
            table.insert_row_with_id(rid, decode_row(row))
    return True


# --------------------------------------------------------------------------
# Write-ahead log
# --------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only commit log.  Thread safety is the engine's job."""

    def __init__(self, directory: str, sync: bool = False) -> None:
        self.directory = directory
        self.sync = sync
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, WAL_NAME)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._txn_counter = 0

    def append_commit(self, records: list[dict]) -> None:
        """Durably append one committed transaction.

        Injection site ``db.wal:append`` (see :mod:`repro.faults`): a
        ``latency`` rule emulates a slower commit device — the sharded
        benchmarks use it to model one-disk-per-shard deployments — and
        an ``error`` rule models a write failure before anything reaches
        the log.
        """
        if not records:
            return
        injection = faults.check("db.wal", "append")
        if injection is not None:
            injection.fail()
        start = time.perf_counter() if OBS.enabled else 0.0
        self._txn_counter += 1
        txn_id = self._txn_counter
        lines = [json.dumps({"txn": txn_id, **rec}) for rec in records]
        lines.append(json.dumps({"txn": txn_id, "op": "commit"}))
        payload = "\n".join(lines) + "\n"
        self._fh.write(payload)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
            _WAL_FSYNCS.inc()
        _WAL_APPENDS.inc()
        _WAL_RECORDS.inc(len(records))
        _WAL_BYTES.inc(len(payload))
        if OBS.enabled:
            _WAL_APPEND_SECONDS.observe(time.perf_counter() - start)

    def close(self) -> None:
        self._fh.close()

    def truncate(self) -> None:
        """Discard the log (after a fresh snapshot subsumes it)."""
        self._fh.close()
        self._fh = open(self.path, "w", encoding="utf-8")


def replay_wal(catalog: Catalog, directory: str) -> int:
    """Apply committed WAL transactions to *catalog*; returns #txns."""
    path = os.path.join(directory, WAL_NAME)
    if not os.path.exists(path):
        return 0
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    # Group records per txn; apply only those with a commit marker.
    pending: dict[int, list[dict]] = {}
    committed: list[int] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break  # torn tail write — everything after is discarded
        txn = record.get("txn")
        if record.get("op") == "commit":
            committed.append(txn)
        else:
            pending.setdefault(txn, []).append(record)
    applied = 0
    for txn in committed:
        for record in pending.get(txn, []):
            _apply_record(catalog, record)
        applied += 1
    return applied


def _apply_record(catalog: Catalog, record: dict) -> None:
    op = record["op"]
    if op == "create_table":
        catalog.create_table(table_def_from_dict(record["def"]))
        return
    if op == "drop_table":
        catalog.drop_table(record["table"])
        return
    if op == "create_index":
        catalog.table(record["table"]).create_index(
            IndexDef(
                name=record["name"],
                table=record["table"],
                columns=tuple(record["columns"]),
                unique=record["unique"],
            )
        )
        return
    if op == "drop_index":
        catalog.table(record["table"]).drop_index(record["name"])
        return
    table = catalog.table(record["table"])
    if op == "insert":
        table.insert_row_with_id(record["rowid"], decode_row(record["row"]))
    elif op == "update":
        from repro.db.txn import _raw_replace

        _raw_replace(table, record["rowid"], decode_row(record["row"]))
    elif op == "delete":
        table.delete(record["rowid"])
    else:
        raise RecoveryError(f"unknown WAL op {op!r}")
