"""Exception hierarchy for the embedded database engine."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for every error raised by :mod:`repro.db`."""


class ProgrammingError(DatabaseError):
    """Misuse of the API (wrong parameter counts, closed handles, ...)."""


class SQLSyntaxError(ProgrammingError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SchemaError(DatabaseError):
    """Reference to a missing table/column/index, or an invalid DDL request."""


class TypeMismatchError(DatabaseError):
    """A value could not be coerced to its column's declared type."""


class IntegrityError(DatabaseError):
    """A constraint (primary key, unique, not-null, foreign key) was violated."""


class LockTimeoutError(DatabaseError):
    """A table lock could not be acquired within the configured timeout."""


class TransactionError(DatabaseError):
    """Invalid transaction state transition (e.g. COMMIT with no BEGIN)."""


class RecoveryError(DatabaseError):
    """The snapshot or write-ahead log could not be replayed."""
