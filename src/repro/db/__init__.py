"""Embedded relational database engine.

This package is the reproduction's stand-in for the MySQL 4.1 backend used
by the paper's Metadata Catalog Service.  It provides:

* a typed relational schema (:mod:`repro.db.schema`),
* B+tree secondary indexes (:mod:`repro.db.btree`),
* a SQL subset with lexer, parser and AST (:mod:`repro.db.sql`),
* a cost-aware planner and iterator-model executor
  (:mod:`repro.db.planner`, :mod:`repro.db.executor`),
* transactions with rollback and table-level read/write locking
  (:mod:`repro.db.txn`),
* optional durability via snapshot + write-ahead log (:mod:`repro.db.wal`).

The public entry point is :class:`repro.db.engine.Database`::

    from repro.db import Database

    db = Database()
    conn = db.connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name STRING)")
    conn.execute("INSERT INTO t (id, name) VALUES (?, ?)", (1, "x"))
    rows = conn.execute("SELECT name FROM t WHERE id = ?", (1,)).fetchall()
"""

from repro.db.engine import Database, Connection, ResultSet
from repro.db.errors import (
    DatabaseError,
    IntegrityError,
    LockTimeoutError,
    ProgrammingError,
    SchemaError,
    SQLSyntaxError,
    TypeMismatchError,
)
from repro.db.schema import Column, IndexDef, TableDef
from repro.db.types import ColumnType

__all__ = [
    "Database",
    "Connection",
    "ResultSet",
    "DatabaseError",
    "IntegrityError",
    "LockTimeoutError",
    "ProgrammingError",
    "SchemaError",
    "SQLSyntaxError",
    "TypeMismatchError",
    "Column",
    "IndexDef",
    "TableDef",
    "ColumnType",
]
