"""B+tree used for table indexes.

Keys are tuples of canonical column values wrapped with
:func:`repro.db.types.sort_key` so NULLs and mixed types compare totally.
Leaves hold, per key, the set of row ids carrying that key (a single row id
for unique indexes).  Leaves are chained for range scans.

The tree is *not* itself thread-safe; the engine serializes index access
under its table locks.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.db.errors import IntegrityError
from repro.db.types import sort_key
from repro.obs.metrics import counter as _obs_counter

DEFAULT_ORDER = 64

_PROBES = _obs_counter(
    "mcs_db_index_probes_total",
    "B+tree probe operations",
    labels=("kind",),
)
_POINT_PROBES = _PROBES.labels("point")
_RANGE_PROBES = _PROBES.labels("range")
_PREFIX_PROBES = _PROBES.labels("prefix")


def make_key(values: tuple) -> tuple:
    """Build a comparable composite key from raw column values."""
    return tuple(sort_key(v) for v in values)


class _Node:
    __slots__ = ("keys", "parent")

    def __init__(self) -> None:
        self.keys: list[tuple] = []
        self.parent: Optional[_Internal] = None


class _Leaf(_Node):
    __slots__ = ("values", "next", "prev")

    def __init__(self) -> None:
        super().__init__()
        # values[i] is the list of row ids for keys[i]
        self.values: list[list[int]] = []
        self.next: Optional[_Leaf] = None
        self.prev: Optional[_Leaf] = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        # len(children) == len(keys) + 1
        self.children: list[_Node] = []


class BPlusTree:
    """A B+tree mapping composite keys to row-id postings lists."""

    def __init__(self, order: int = DEFAULT_ORDER, unique: bool = False, name: str = "") -> None:
        if order < 4:
            raise ValueError("B+tree order must be >= 4")
        self.order = order
        self.unique = unique
        self.name = name
        self._root: _Node = _Leaf()
        self._len = 0  # number of (key, rowid) postings

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return self._len

    @property
    def key_count(self) -> int:
        """Number of distinct keys in the tree."""
        count = 0
        leaf = self._first_leaf()
        while leaf is not None:
            count += len(leaf.keys)
            leaf = leaf.next
        return count

    # -- mutation -----------------------------------------------------------

    def insert(self, raw_key: tuple, rowid: int) -> None:
        """Insert a posting.  Raises IntegrityError on unique violation."""
        key = make_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if self.unique:
                raise IntegrityError(
                    f"unique index {self.name or '<anon>'}: duplicate key {raw_key!r}"
                )
            postings = leaf.values[idx]
            pos = bisect.bisect_left(postings, rowid)
            if pos < len(postings) and postings[pos] == rowid:
                return  # already present; idempotent
            postings.insert(pos, rowid)
            self._len += 1
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [rowid])
        self._len += 1
        if len(leaf.keys) > self.order:
            self._split_leaf(leaf)

    def delete(self, raw_key: tuple, rowid: int) -> bool:
        """Remove a posting; returns True if it was present.

        The tree uses lazy deletion (no rebalancing); empty key slots are
        removed but underfull nodes are left in place.  Index rebuilds on
        snapshot load restore tight packing.
        """
        key = make_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        postings = leaf.values[idx]
        pos = bisect.bisect_left(postings, rowid)
        if pos >= len(postings) or postings[pos] != rowid:
            return False
        postings.pop(pos)
        self._len -= 1
        if not postings:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        return True

    def clear(self) -> None:
        self._root = _Leaf()
        self._len = 0

    # -- lookups -------------------------------------------------------------

    def get(self, raw_key: tuple) -> list[int]:
        """Row ids exactly matching *raw_key* (empty list when absent)."""
        _POINT_PROBES.inc()
        key = make_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def contains_key(self, raw_key: tuple) -> bool:
        key = make_key(raw_key)
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def range(
        self,
        low: tuple | None = None,
        high: tuple | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[int]:
        """Yield row ids whose key lies inside [low, high] (raw keys).

        Either bound may be None for an open end.  Keys compare by the
        composite sort order; for prefix scans pass a prefix as ``low`` and
        the same prefix as ``high`` with inclusive bounds plus a sentinel —
        see :meth:`prefix`.
        """
        _RANGE_PROBES.inc()
        return self._range_iter(low, high, low_inclusive, high_inclusive)

    def _range_iter(
        self,
        low: tuple | None,
        high: tuple | None,
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> Iterator[int]:
        low_key = make_key(low) if low is not None else None
        high_key = make_key(high) if high is not None else None
        if low_key is not None:
            leaf = self._find_leaf(low_key)
            idx = (
                bisect.bisect_left(leaf.keys, low_key)
                if low_inclusive
                else bisect.bisect_right(leaf.keys, low_key)
            )
        else:
            leaf = self._first_leaf()
            idx = 0
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high_key is not None:
                    if high_inclusive:
                        if key > high_key:
                            return
                    elif key >= high_key:
                        return
                yield from leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def prefix(self, raw_prefix: tuple) -> Iterator[int]:
        """Yield row ids for keys whose leading columns equal *raw_prefix*."""
        _PREFIX_PROBES.inc()
        return self._prefix_iter(raw_prefix)

    def _prefix_iter(self, raw_prefix: tuple) -> Iterator[int]:
        prefix = make_key(raw_prefix)
        n = len(prefix)
        leaf = self._find_leaf(prefix)
        idx = bisect.bisect_left(leaf.keys, prefix)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key[:n] != prefix:
                    return
                yield from leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[tuple[tuple, list[int]]]:
        """All (composite key, row ids) pairs in key order."""
        leaf = self._first_leaf()
        while leaf is not None:
            for key, postings in zip(leaf.keys, leaf.values):
                yield key, list(postings)
            leaf = leaf.next

    def scan_all(self) -> Iterator[int]:
        """All row ids in key order."""
        leaf = self._first_leaf()
        while leaf is not None:
            for postings in leaf.values:
                yield from postings
            leaf = leaf.next

    # -- internals -------------------------------------------------------------

    def _first_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node  # type: ignore[return-value]

    def _find_leaf(self, key: tuple) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node  # type: ignore[return-value]

    def _split_leaf(self, leaf: _Leaf) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._insert_into_parent(leaf, right.keys[0], right)

    def _split_internal(self, node: _Internal) -> None:
        mid = len(node.keys) // 2
        push_key = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, push_key, right)

    def _insert_into_parent(self, left: _Node, key: tuple, right: _Node) -> None:
        parent = left.parent
        if parent is None:
            new_root = _Internal()
            new_root.keys = [key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            return
        idx = bisect.bisect_right(parent.keys, key)
        parent.keys.insert(idx, key)
        parent.children.insert(idx + 1, right)
        right.parent = parent
        if len(parent.keys) > self.order:
            self._split_internal(parent)

    # -- invariant checking (used by tests) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        leaf = self._first_leaf()
        prev_key = None
        counted = 0
        while leaf is not None:
            assert len(leaf.keys) == len(leaf.values)
            for key, postings in zip(leaf.keys, leaf.values):
                assert postings, "empty postings list left in tree"
                assert postings == sorted(postings)
                if prev_key is not None:
                    assert key > prev_key, "keys out of order across leaves"
                prev_key = key
                counted += len(postings)
            if leaf.next is not None:
                assert leaf.next.prev is leaf
            leaf = leaf.next
        assert counted == self._len, f"posting count {counted} != tracked {self._len}"
        self._check_node(self._root)

    def _check_node(self, node: _Node) -> None:
        if isinstance(node, _Internal):
            assert len(node.children) == len(node.keys) + 1
            for child in node.children:
                assert child.parent is node
                self._check_node(child)
