"""Column types and value coercion.

The MCS paper's user-defined attributes may be ``string``, ``float``,
``integer``, ``date``, ``time`` or ``date/time`` (§5, "User-defined metadata
attributes"); the engine supports those plus BOOLEAN for flags such as the
logical-file ``valid`` attribute.

Values are stored in their canonical Python representation:

===========  =============================
ColumnType   canonical Python type
===========  =============================
INTEGER      int
FLOAT        float
STRING       str
BOOLEAN      bool
DATE         datetime.date
TIME         datetime.time
DATETIME     datetime.datetime
===========  =============================

``None`` is the SQL NULL and is accepted by every type (not-null constraints
are enforced at the schema layer, not here).
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

from repro.db.errors import TypeMismatchError

_DATE_FMT = "%Y-%m-%d"
_TIME_FMT = "%H:%M:%S"
_DATETIME_FMTS = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S")


class ColumnType(enum.Enum):
    """Declared type of a table column."""

    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"
    TIME = "TIME"
    DATETIME = "DATETIME"

    @classmethod
    def from_name(cls, name: str) -> "ColumnType":
        """Resolve a type name as written in SQL (case-insensitive).

        Accepts a few aliases so schemas read naturally: INT, BIGINT,
        DOUBLE, REAL, TEXT, VARCHAR, CHAR, BOOL, TIMESTAMP.
        """
        upper = name.upper()
        aliases = {
            "INT": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "DOUBLE": cls.FLOAT,
            "REAL": cls.FLOAT,
            "NUMERIC": cls.FLOAT,
            "TEXT": cls.STRING,
            "VARCHAR": cls.STRING,
            "CHAR": cls.STRING,
            "BOOL": cls.BOOLEAN,
            "TIMESTAMP": cls.DATETIME,
        }
        if upper in cls.__members__:
            return cls[upper]
        if upper in aliases:
            return aliases[upper]
        raise TypeMismatchError(f"unknown column type {name!r}")


def coerce(value: Any, ctype: ColumnType) -> Any:
    """Coerce *value* to the canonical representation of *ctype*.

    Raises :class:`TypeMismatchError` when the value cannot be represented
    in the target type without information loss (e.g. ``"abc"`` as INTEGER,
    or ``1.5`` as INTEGER).
    """
    if value is None:
        return None
    try:
        if ctype is ColumnType.INTEGER:
            return _coerce_int(value)
        if ctype is ColumnType.FLOAT:
            return _coerce_float(value)
        if ctype is ColumnType.STRING:
            return _coerce_str(value)
        if ctype is ColumnType.BOOLEAN:
            return _coerce_bool(value)
        if ctype is ColumnType.DATE:
            return _coerce_date(value)
        if ctype is ColumnType.TIME:
            return _coerce_time(value)
        if ctype is ColumnType.DATETIME:
            return _coerce_datetime(value)
    except TypeMismatchError:
        raise
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce {value!r} to {ctype.value}: {exc}") from exc
    raise TypeMismatchError(f"unhandled column type {ctype!r}")


def _coerce_int(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise TypeMismatchError(f"cannot coerce non-integral float {value!r} to INTEGER")
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to INTEGER")


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to FLOAT")


def _coerce_str(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value) if isinstance(value, float) else str(value)
    if isinstance(value, (_dt.date, _dt.time, _dt.datetime)):
        return format_value(value)
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to STRING")


def _coerce_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        if value in (0, 1):
            return bool(value)
        raise TypeMismatchError(f"cannot coerce integer {value} to BOOLEAN")
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
        raise TypeMismatchError(f"cannot coerce string {value!r} to BOOLEAN")
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to BOOLEAN")


def _coerce_date(value: Any) -> _dt.date:
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, str):
        return _dt.datetime.strptime(value.strip(), _DATE_FMT).date()
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to DATE")


def _coerce_time(value: Any) -> _dt.time:
    if isinstance(value, _dt.datetime):
        return value.time()
    if isinstance(value, _dt.time):
        return value
    if isinstance(value, str):
        return _dt.datetime.strptime(value.strip(), _TIME_FMT).time()
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to TIME")


def _coerce_datetime(value: Any) -> _dt.datetime:
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, str):
        text = value.strip()
        for fmt in _DATETIME_FMTS:
            try:
                return _dt.datetime.strptime(text, fmt)
            except ValueError:
                continue
        raise TypeMismatchError(f"cannot parse {value!r} as DATETIME")
    raise TypeMismatchError(f"cannot coerce {type(value).__name__} to DATETIME")


def format_value(value: Any) -> str:
    """Render a canonical value as its SQL-literal text (without quotes)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, _dt.datetime):
        return value.strftime(_DATETIME_FMTS[0])
    if isinstance(value, _dt.date):
        return value.strftime(_DATE_FMT)
    if isinstance(value, _dt.time):
        return value.strftime(_TIME_FMT)
    return str(value)


def parse_typed_text(text: str, ctype: ColumnType) -> Any:
    """Parse attribute text (as carried in SOAP messages) into a value."""
    return coerce(text, ctype)


_ORDER_RANK = {
    bool: 0,
    int: 1,
    float: 1,
    str: 2,
    _dt.date: 3,
    _dt.time: 4,
    _dt.datetime: 5,
}


def sort_key(value: Any) -> tuple:
    """Total-order key so heterogeneous columns can still be sorted.

    NULLs sort first (MySQL semantics); bools before numbers before strings
    before temporals.  Within a rank values use natural ordering.
    """
    if value is None:
        return (-1, 0)
    rank = _ORDER_RANK.get(type(value))
    if rank is None:
        # Subclass (e.g. datetime is a subclass of date); resolve by MRO.
        for klass, r in _ORDER_RANK.items():
            if isinstance(value, klass):
                rank = r
                break
        else:
            rank = 99
    if isinstance(value, bool):
        value = int(value)
    return (rank, value)
