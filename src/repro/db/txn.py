"""Concurrency control and rollback.

Locking model (close to MySQL 4.x table locks):

* one reader-writer lock per table;
* an autocommit statement acquires every lock it needs up front, in sorted
  table-name order (no incremental acquisition → no intra-statement
  deadlock), and releases at statement end;
* an explicit transaction (BEGIN ... COMMIT/ROLLBACK) accumulates locks
  across statements and releases at commit/rollback (strict two-phase
  locking);
* cross-transaction deadlocks are broken by lock timeouts
  (:class:`~repro.db.errors.LockTimeoutError`), after which the
  application rolls back.

Rollback uses a logical undo log: each row mutation appends the inverse
operation, applied in reverse order on ROLLBACK.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Optional

from repro.db.errors import LockTimeoutError, TransactionError
from repro.db.storage import Catalog, Table
from repro.obs.metrics import OBS, counter as _obs_counter, histogram as _obs_histogram

_LOCK_WAIT_SECONDS = _obs_histogram(
    "mcs_db_lock_wait_seconds",
    "Time spent blocked waiting for a table lock (contended acquisitions only)",
    labels=("table",),
)
_LOCK_TIMEOUTS = _obs_counter(
    "mcs_db_lock_timeouts_total",
    "Lock acquisitions abandoned after the timeout",
    labels=("table",),
)


class RWLock:
    """Reentrant reader-writer lock keyed by owner token.

    Supports read→write upgrade for the sole reader; concurrent upgrade
    attempts are resolved by timeout.

    Fairness is arrival-ordered: a fresh reader is gated only by writers
    that started waiting *before* it, and a waiting writer only admits
    readers that arrived before it.  Overlapping readers therefore
    cannot starve a writer, and a stream of back-to-back writers cannot
    starve readers — each waiter outwaits a finite set.  Owners already
    holding a read re-enter freely (an upgrade could otherwise deadlock
    against its own gated peers).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers: dict[Any, int] = {}
        self._writer: Any = None
        self._writer_depth = 0
        self._ticket = itertools.count()
        self._waiting_writers: set[int] = set()
        self._waiting_readers: set[int] = set()

    def _read_admissible(self, owner: Any, ticket: Optional[int]) -> bool:
        if self._writer == owner:
            return True
        if self._writer is not None:
            return False
        if owner in self._readers:
            return True  # reentrant read is never gated
        barrier = min(self._waiting_writers, default=None)
        return barrier is None or (ticket is not None and ticket < barrier)

    def _write_admissible(self, owner: Any, ticket: int) -> bool:
        if self._writer == owner:
            return True  # reentrant write is never gated
        if self._writer is not None:
            return False
        if any(o != owner for o in self._readers):
            return False
        barrier = min(self._waiting_readers, default=None)
        return barrier is None or ticket < barrier

    def acquire_read(self, owner: Any, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        waited_from = 0.0
        with self._cond:
            ticket: Optional[int] = None
            try:
                while True:
                    if self._read_admissible(owner, ticket):
                        self._readers[owner] = self._readers.get(owner, 0) + 1
                        break
                    if ticket is None:
                        ticket = next(self._ticket)
                        self._waiting_readers.add(ticket)
                    if not waited_from and OBS.enabled:
                        waited_from = time.perf_counter()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        _LOCK_TIMEOUTS.labels(self.name).inc()
                        raise LockTimeoutError(
                            f"timeout acquiring read lock on {self.name!r}"
                        )
            finally:
                if ticket is not None:
                    self._waiting_readers.discard(ticket)
                    # Writers deferring to this reader must re-check
                    # (granted or timed out either way).
                    self._cond.notify_all()
        if waited_from:
            _LOCK_WAIT_SECONDS.labels(self.name).observe(
                time.perf_counter() - waited_from
            )

    def acquire_write(self, owner: Any, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        waited_from = 0.0
        with self._cond:
            ticket = next(self._ticket)
            self._waiting_writers.add(ticket)
            try:
                while True:
                    if self._write_admissible(owner, ticket):
                        self._writer = owner
                        self._writer_depth += 1
                        break
                    if not waited_from and OBS.enabled:
                        waited_from = time.perf_counter()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        _LOCK_TIMEOUTS.labels(self.name).inc()
                        raise LockTimeoutError(
                            f"timeout acquiring write lock on {self.name!r}"
                        )
            finally:
                self._waiting_writers.discard(ticket)
                # Readers gated behind this writer must re-check whether
                # the gate is open (acquired or timed out either way).
                self._cond.notify_all()
        if waited_from:
            _LOCK_WAIT_SECONDS.labels(self.name).observe(
                time.perf_counter() - waited_from
            )

    def release(self, owner: Any, write: bool) -> None:
        with self._cond:
            if write:
                if self._writer != owner:
                    raise TransactionError(
                        f"release of write lock on {self.name!r} not held by owner"
                    )
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
            else:
                count = self._readers.get(owner, 0)
                if count <= 0:
                    raise TransactionError(
                        f"release of read lock on {self.name!r} not held by owner"
                    )
                if count == 1:
                    del self._readers[owner]
                else:
                    self._readers[owner] = count - 1
            self._cond.notify_all()

    def held_by(self, owner: Any) -> tuple[int, int]:
        """(read depth, write depth) held by *owner* — test/debug helper."""
        with self._cond:
            return (
                self._readers.get(owner, 0),
                self._writer_depth if self._writer == owner else 0,
            )


class LockManager:
    """Per-table RW locks plus a schema lock for DDL."""

    def __init__(self, timeout: float = 5.0) -> None:
        self.timeout = timeout
        self._registry_guard = threading.Lock()
        self._locks: dict[str, RWLock] = {}
        self.schema_lock = RWLock("__schema__")

    def lock_for(self, table: str) -> RWLock:
        with self._registry_guard:
            lock = self._locks.get(table)
            if lock is None:
                lock = RWLock(table)
                self._locks[table] = lock
            return lock

    def acquire(
        self,
        owner: Any,
        read_tables: set[str],
        write_tables: set[str],
        timeout: Optional[float] = None,
    ) -> list[tuple[RWLock, bool]]:
        """Acquire all requested locks in sorted order; returns the holds.

        On failure every lock already taken by this call is released, so a
        timeout leaves the owner exactly as before.
        """
        timeout = self.timeout if timeout is None else timeout
        plan: list[tuple[str, bool]] = []
        for name in sorted(read_tables | write_tables):
            plan.append((name, name in write_tables))
        held: list[tuple[RWLock, bool]] = []
        try:
            for name, write in plan:
                lock = self.lock_for(name)
                if write:
                    lock.acquire_write(owner, timeout)
                else:
                    lock.acquire_read(owner, timeout)
                held.append((lock, write))
        except LockTimeoutError:
            for lock, write in reversed(held):
                lock.release(owner, write)
            raise
        return held

    @staticmethod
    def release(owner: Any, held: list[tuple[RWLock, bool]]) -> None:
        for lock, write in reversed(held):
            lock.release(owner, write)


class UndoLog:
    """Logical undo records for one transaction."""

    def __init__(self) -> None:
        self._entries: list[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record_insert(self, table: str, rowid: int) -> None:
        self._entries.append(("insert", table, rowid))

    def record_update(self, table: str, rowid: int, old_row: tuple) -> None:
        self._entries.append(("update", table, rowid, old_row))

    def record_delete(self, table: str, rowid: int, old_row: tuple) -> None:
        self._entries.append(("delete", table, rowid, old_row))

    def mark(self) -> int:
        """Current length, for statement-scoped partial rollback."""
        return len(self._entries)

    def rollback(self, catalog: Catalog) -> None:
        """Apply inverse operations in reverse order, then clear."""
        self.rollback_to(catalog, 0)

    def rollback_to(self, catalog: Catalog, mark: int) -> None:
        """Revert every entry recorded after *mark* and truncate to it."""
        for entry in reversed(self._entries[mark:]):
            kind = entry[0]
            table = catalog.table(entry[1])
            if kind == "insert":
                table.delete(entry[2])
            elif kind == "update":
                _raw_replace(table, entry[2], entry[3])
            elif kind == "delete":
                table.insert_row_with_id(entry[2], entry[3])
        del self._entries[mark:]

    def clear(self) -> None:
        self._entries.clear()


def _raw_replace(table: Table, rowid: int, old_row: tuple) -> None:
    """Restore a row image without constraint re-checking."""
    current = table.rows[rowid]
    for name, cols in table._index_cols.items():
        cur_key = tuple(current[i] for i in cols)
        old_key = tuple(old_row[i] for i in cols)
        if cur_key != old_key:
            tree = table.indexes[name]
            tree.delete(cur_key, rowid)
            tree.insert(old_key, rowid)
    table.rows[rowid] = old_row


class TransactionState:
    """Per-connection transaction bookkeeping."""

    def __init__(self) -> None:
        self.explicit = False
        self.undo = UndoLog()
        self.held: list[tuple[RWLock, bool]] = []  # from LockManager.acquire
        self.wal_records: list[dict] = []
        # Tables this transaction has issued writes against.  Unlike
        # wal_records this set is NOT truncated by savepoint rollback —
        # it gates shared-cache use (repro.cache), where overshooting
        # only costs extra misses while undershooting would be unsound.
        self.written_tables: set[str] = set()

    @property
    def active(self) -> bool:
        return self.explicit or bool(self.held)
