"""Schema objects: columns, tables, indexes, constraints.

A :class:`TableDef` is the authoritative description of a table: ordered
columns, the primary key, unique constraints and foreign keys.  Runtime
storage (:mod:`repro.db.storage`) and indexes (:mod:`repro.db.btree`) are
built from these definitions by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.db.errors import SchemaError, TypeMismatchError
from repro.db.types import ColumnType, coerce


@dataclass(frozen=True)
class Column:
    """A single table column."""

    name: str
    ctype: ColumnType
    nullable: bool = True
    default: Any = None
    autoincrement: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.autoincrement and self.ctype is not ColumnType.INTEGER:
            raise SchemaError(f"column {self.name!r}: AUTOINCREMENT requires INTEGER")


@dataclass(frozen=True)
class ForeignKey:
    """Declarative foreign key; enforced on INSERT/UPDATE/DELETE."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError("foreign key column count mismatch")


@dataclass(frozen=True)
class IndexDef:
    """A named (possibly unique, possibly multi-column) index."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"index {self.name!r} must cover at least one column")


class TableDef:
    """Immutable-ish definition of a table.

    Parameters
    ----------
    name:
        Table name (a valid identifier).
    columns:
        Ordered column definitions; names must be unique.
    primary_key:
        Column names forming the primary key (may be empty).
    unique:
        Extra unique constraints, each a tuple of column names.
    foreign_keys:
        Foreign-key constraints referencing other tables.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        unique: Iterable[Sequence[str]] = (),
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._by_name: dict[str, int] = {}
        for idx, col in enumerate(self.columns):
            if col.name in self._by_name:
                raise SchemaError(f"duplicate column {col.name!r} in table {name!r}")
            self._by_name[col.name] = idx
        self.primary_key: tuple[str, ...] = tuple(primary_key)
        for pk_col in self.primary_key:
            if pk_col not in self._by_name:
                raise SchemaError(f"primary key column {pk_col!r} not in table {name!r}")
        self.unique: tuple[tuple[str, ...], ...] = tuple(tuple(u) for u in unique)
        for constraint in self.unique:
            for col_name in constraint:
                if col_name not in self._by_name:
                    raise SchemaError(f"unique column {col_name!r} not in table {name!r}")
        self.foreign_keys: tuple[ForeignKey, ...] = tuple(foreign_keys)
        for fk in self.foreign_keys:
            for col_name in fk.columns:
                if col_name not in self._by_name:
                    raise SchemaError(f"foreign key column {col_name!r} not in table {name!r}")
        auto_cols = [c for c in self.columns if c.autoincrement]
        if len(auto_cols) > 1:
            raise SchemaError(f"table {name!r}: at most one AUTOINCREMENT column")
        self.auto_column: str | None = auto_cols[0].name if auto_cols else None

    # -- lookups ---------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._by_name[name]]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    # -- row construction ------------------------------------------------

    def coerce_row(self, values: dict[str, Any]) -> list[Any]:
        """Build a full row (list ordered by column position) from a dict.

        Missing columns get their default. Type coercion is applied;
        NOT NULL is checked except for autoincrement columns, which the
        storage layer fills in.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}"
            )
        row: list[Any] = []
        for col in self.columns:
            if col.name in values:
                value = coerce(values[col.name], col.ctype)
            elif col.default is not None:
                value = coerce(col.default, col.ctype)
            else:
                value = None
            if value is None and not col.nullable and not col.autoincrement:
                raise TypeMismatchError(
                    f"column {self.name}.{col.name} is NOT NULL but got NULL"
                )
            row.append(value)
        return row

    def coerce_value(self, column: str, value: Any) -> Any:
        return coerce(value, self.column(column).ctype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"TableDef({self.name}: {cols})"
