"""Expression AST shared by the SQL layer, planner and executor.

Expressions evaluate against a *row scope*: a mapping from column reference
(``name`` or ``alias.name``) to value.  Evaluation follows SQL three-valued
logic: comparisons with NULL yield ``None`` (unknown); ``AND``/``OR``/``NOT``
combine unknowns per the standard truth tables; a WHERE clause accepts a row
only when the predicate evaluates to ``True`` exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.db.errors import ProgrammingError
from repro.db.types import sort_key


class Expr:
    """Base expression node."""

    def eval(self, scope: Mapping[str, Any]) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def columns(self) -> Iterator["ColumnRef"]:
        """Yield every column reference in the subtree."""
        return iter(())


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: Any

    def eval(self, scope: Mapping[str, Any]) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter(Expr):
    """A ``?`` placeholder, bound before execution."""

    index: int

    def eval(self, scope: Mapping[str, Any]) -> Any:
        raise ProgrammingError(f"unbound parameter ?{self.index}")

    def __str__(self) -> str:
        return "?"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally qualified with a table alias."""

    name: str
    table: Optional[str] = None

    @property
    def key(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def eval(self, scope: Mapping[str, Any]) -> Any:
        key = self.key
        if key in scope:
            return scope[key]
        if self.table is None:
            raise ProgrammingError(f"unknown column {self.name!r}")
        # Fall back to unqualified lookup (single-table queries).
        if self.name in scope:
            return scope[self.name]
        raise ProgrammingError(f"unknown column {self.key!r}")

    def columns(self) -> Iterator["ColumnRef"]:
        yield self

    def __str__(self) -> str:
        return self.key


_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: sort_key(a) < sort_key(b),
    "<=": lambda a, b: sort_key(a) <= sort_key(b),
    ">": lambda a, b: sort_key(a) > sort_key(b),
    ">=": lambda a, b: sort_key(a) >= sort_key(b),
}

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison (=, !=, <, <=, >, >=) with SQL NULL semantics."""

    op: str  # one of = != < <= > >=
    left: Expr
    right: Expr

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        lhs = self.left.eval(scope)
        rhs = self.right.eval(scope)
        if lhs is None or rhs is None:
            return None
        try:
            return _CMP_OPS[self.op](lhs, rhs)
        except TypeError:
            # Incomparable types: fall back to total order for </>; equality
            # between different types is simply False.
            if self.op in ("=", "!="):
                return (lhs == rhs) if self.op == "=" else (lhs != rhs)
            raise

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.left.columns()
        yield from self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic (+ - * / %); NULL operands propagate NULL."""

    op: str  # + - * / %
    left: Expr
    right: Expr

    def eval(self, scope: Mapping[str, Any]) -> Any:
        lhs = self.left.eval(scope)
        rhs = self.right.eval(scope)
        if lhs is None or rhs is None:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.left.columns()
        yield from self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction under three-valued logic."""

    parts: tuple[Expr, ...]

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        saw_null = False
        for part in self.parts:
            value = part.eval(scope)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def columns(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part.columns()

    def __str__(self) -> str:
        return "(" + " AND ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction under three-valued logic."""

    parts: tuple[Expr, ...]

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        saw_null = False
        for part in self.parts:
            value = part.eval(scope)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def columns(self) -> Iterator[ColumnRef]:
        for part in self.parts:
            yield from part.columns()

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation; NOT NULL is NULL."""

    inner: Expr

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        value = self.inner.eval(scope)
        if value is None:
            return None
        return not value

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.inner.columns()

    def __str__(self) -> str:
        return f"(NOT {self.inner})"


@dataclass(frozen=True)
class IsNull(Expr):
    """IS [NOT] NULL test (always two-valued)."""

    inner: Expr
    negated: bool = False

    def eval(self, scope: Mapping[str, Any]) -> bool:
        value = self.inner.eval(scope)
        return (value is not None) if self.negated else (value is None)

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.inner.columns()

    def __str__(self) -> str:
        return f"({self.inner} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class InList(Expr):
    """value [NOT] IN (options) with SQL NULL semantics."""

    inner: Expr
    options: tuple[Expr, ...]
    negated: bool = False

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        value = self.inner.eval(scope)
        if value is None:
            return None
        found = False
        saw_null = False
        for option in self.options:
            candidate = option.eval(scope)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not self.negated
        if saw_null:
            return None
        return self.negated

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.inner.columns()
        for option in self.options:
            yield from option.columns()

    def __str__(self) -> str:
        opts = ", ".join(str(o) for o in self.options)
        return f"({self.inner} {'NOT ' if self.negated else ''}IN ({opts}))"


@dataclass(frozen=True)
class Between(Expr):
    """value [NOT] BETWEEN low AND high (inclusive)."""

    inner: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        value = self.inner.eval(scope)
        low = self.low.eval(scope)
        high = self.high.eval(scope)
        if value is None or low is None or high is None:
            return None
        result = sort_key(low) <= sort_key(value) <= sort_key(high)
        return (not result) if self.negated else result

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.inner.columns()
        yield from self.low.columns()
        yield from self.high.columns()

    def __str__(self) -> str:
        return f"({self.inner} BETWEEN {self.low} AND {self.high})"


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (% and _ wildcards) to a regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


@dataclass(frozen=True)
class Like(Expr):
    """string [NOT] LIKE pattern (% and _ wildcards)."""

    inner: Expr
    pattern: Expr
    negated: bool = False

    def eval(self, scope: Mapping[str, Any]) -> Optional[bool]:
        value = self.inner.eval(scope)
        pattern = self.pattern.eval(scope)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            return False if not self.negated else True
        matched = like_to_regex(pattern).match(value) is not None
        return (not matched) if self.negated else matched

    def columns(self) -> Iterator[ColumnRef]:
        yield from self.inner.columns()
        yield from self.pattern.columns()

    def __str__(self) -> str:
        return f"({self.inner} {'NOT ' if self.negated else ''}LIKE {self.pattern})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Scalar function call (LOWER, UPPER, LENGTH, ABS, COALESCE...)."""

    name: str
    args: tuple[Expr, ...]

    def eval(self, scope: Mapping[str, Any]) -> Any:
        from repro.db.functions import SCALAR_FUNCTIONS

        func = SCALAR_FUNCTIONS.get(self.name.upper())
        if func is None:
            raise ProgrammingError(f"unknown function {self.name!r}")
        return func(*[arg.eval(scope) for arg in self.args])

    def columns(self) -> Iterator[ColumnRef]:
        for arg in self.args:
            yield from arg.columns()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


def bind_parameters(expr: Expr, params: Sequence[Any]) -> Expr:
    """Return a copy of *expr* with ``Parameter`` nodes replaced by literals."""
    if isinstance(expr, Parameter):
        if expr.index >= len(params):
            raise ProgrammingError(
                f"statement requires at least {expr.index + 1} parameters, got {len(params)}"
            )
        return Literal(params[expr.index])
    if isinstance(expr, Comparison):
        return Comparison(expr.op, bind_parameters(expr.left, params), bind_parameters(expr.right, params))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, bind_parameters(expr.left, params), bind_parameters(expr.right, params))
    if isinstance(expr, And):
        return And(tuple(bind_parameters(p, params) for p in expr.parts))
    if isinstance(expr, Or):
        return Or(tuple(bind_parameters(p, params) for p in expr.parts))
    if isinstance(expr, Not):
        return Not(bind_parameters(expr.inner, params))
    if isinstance(expr, IsNull):
        return IsNull(bind_parameters(expr.inner, params), expr.negated)
    if isinstance(expr, InList):
        return InList(
            bind_parameters(expr.inner, params),
            tuple(bind_parameters(o, params) for o in expr.options),
            expr.negated,
        )
    if isinstance(expr, Between):
        return Between(
            bind_parameters(expr.inner, params),
            bind_parameters(expr.low, params),
            bind_parameters(expr.high, params),
            expr.negated,
        )
    if isinstance(expr, Like):
        return Like(
            bind_parameters(expr.inner, params),
            bind_parameters(expr.pattern, params),
            expr.negated,
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(bind_parameters(a, params) for a in expr.args))
    return expr


def conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten an expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for part in expr.parts:
            out.extend(conjuncts(part))
        return out
    return [expr]


def count_parameters(expr: Optional[Expr]) -> int:
    """Highest parameter index + 1 appearing in the expression tree."""
    if expr is None:
        return 0
    highest = -1

    def walk(node: Expr) -> None:
        nonlocal highest
        if isinstance(node, Parameter):
            highest = max(highest, node.index)
        elif isinstance(node, (Comparison, Arithmetic)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Not):
            walk(node.inner)
        elif isinstance(node, IsNull):
            walk(node.inner)
        elif isinstance(node, InList):
            walk(node.inner)
            for option in node.options:
                walk(option)
        elif isinstance(node, Between):
            walk(node.inner)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Like):
            walk(node.inner)
            walk(node.pattern)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return highest + 1
