"""Query planner: turns a parsed SELECT/UPDATE/DELETE into a physical plan.

The planner is rule-based with a simple cost preference order:

1. unique-index full-key equality lookup,
2. longest equality prefix on any index (optionally extended by a range
   predicate on the next index column),
3. single-column IN on an indexed column (union of point lookups),
4. sequential scan.

Joins are executed left-deep in the order written.  For each join the
planner prefers an index nested-loop (equi-join key covered by an index on
the inner table), then a hash join (any equi-join), then a filtered
nested loop.

Column references are resolved during planning: every bare ``col`` is
rewritten to ``alias.col``; ambiguous references raise ProgrammingError.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.db.errors import ProgrammingError, SchemaError
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjuncts,
)
from repro.db.sql.ast import Join, OrderItem, Select, SelectItem, TableRef
from repro.db.storage import Catalog, Table


# --------------------------------------------------------------------------
# Physical plan nodes
# --------------------------------------------------------------------------


@dataclass
class AccessPath:
    """How to produce candidate rowids for one table."""

    table: str
    alias: str
    kind: str  # "seq" | "index_eq" | "index_range" | "index_in" | "index_and"
    index: Optional[str] = None
    eq_values: tuple = ()          # literal prefix values for index_eq / index_range
    in_values: tuple = ()          # values for index_in (single column)
    low: Any = None                # range bound on the column after the eq prefix
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    residual: Optional[Expr] = None  # post-access filter
    subpaths: tuple = ()           # index_and: single-index paths to intersect


@dataclass(frozen=True)
class TableStats:
    """Cheap cardinality statistics driving cost-based access choice.

    ``row_count`` is the live row count; ``index_key_counts`` maps index
    name to its number of distinct keys (``rows / keys`` approximates the
    posting-list length of one equality probe).  Only consulted when the
    database opted in via ``Database(cost_stats=True)`` — the default
    planner stays purely rule-based.
    """

    row_count: int
    index_key_counts: dict[str, int]

    @classmethod
    def from_table(cls, table: Table) -> "TableStats":
        return cls(
            row_count=len(table.rows),
            index_key_counts={
                name: tree.key_count for name, tree in table.indexes.items()
            },
        )


@dataclass
class JoinStep:
    """One join applied to the running pipeline."""

    kind: str  # "index_nl" | "hash" | "nested"
    access: AccessPath           # inner table access (seq scan for hash/nested)
    left_outer: bool = False
    # index_nl: values for the inner index come from outer-row expressions
    outer_key_exprs: tuple = ()
    # hash: equi-key expression pairs (outer_expr, inner_col_ref)
    hash_outer: tuple = ()
    hash_inner: tuple = ()
    condition: Optional[Expr] = None   # residual join (ON) predicate
    post_filter: Optional[Expr] = None  # WHERE parts applied after padding


@dataclass
class ProjectionItem:
    """One output column: expression or aggregate, plus its name."""

    expr: Optional[Expr]
    name: str
    aggregate: Optional[str] = None
    count_star: bool = False


@dataclass
class SelectPlan:
    """The full physical plan for a SELECT."""

    base: AccessPath
    joins: list[JoinStep]
    items: list[ProjectionItem]
    star_aliases: list[str]            # aliases whose full column set is projected
    group_by: list[Expr]
    having: Optional[Expr]
    order_by: list[OrderItem]
    order_on_output: bool              # sort projected rows (aggregate mode)
    limit: Optional[int]
    offset: Optional[int]
    distinct: bool
    column_layout: dict[str, tuple[str, ...]]  # alias -> qualified column keys
    output_names: tuple[str, ...] = ()


@dataclass
class MutationPlan:
    """Plan for UPDATE/DELETE: which rowids to touch."""

    access: AccessPath


# --------------------------------------------------------------------------
# Name resolution
# --------------------------------------------------------------------------


class _Resolver:
    """Rewrites bare column references to qualified ``alias.col`` form."""

    def __init__(self, catalog: Catalog, tables: list[tuple[str, str]]) -> None:
        # tables: list of (alias, table_name)
        self._owners: dict[str, list[str]] = {}
        self._aliases = {alias for alias, _ in tables}
        for alias, table_name in tables:
            for col in catalog.table(table_name).definition.column_names:
                self._owners.setdefault(col, []).append(alias)

    def resolve(self, expr: Expr, lenient: bool = False) -> Expr:
        if lenient:
            return self._resolve_inner(expr, lenient=True)
        return self._resolve_inner(expr, lenient=False)

    def _resolve_inner(self, expr: Expr, lenient: bool) -> Expr:
        if isinstance(expr, ColumnRef):
            if expr.table is not None:
                if expr.table not in self._aliases:
                    raise ProgrammingError(f"unknown table alias {expr.table!r}")
                return expr
            owners = self._owners.get(expr.name)
            if not owners:
                if lenient:
                    # Leave bare: resolved against the output row later
                    # (HAVING / ORDER BY on aggregate aliases).
                    return expr
                raise ProgrammingError(f"unknown column {expr.name!r}")
            if len(owners) > 1:
                raise ProgrammingError(
                    f"ambiguous column {expr.name!r} (in {sorted(set(owners))})"
                )
            return ColumnRef(expr.name, table=owners[0])
        if isinstance(expr, Comparison):
            return Comparison(expr.op, self._resolve_inner(expr.left, lenient), self._resolve_inner(expr.right, lenient))
        if isinstance(expr, Arithmetic):
            return Arithmetic(expr.op, self._resolve_inner(expr.left, lenient), self._resolve_inner(expr.right, lenient))
        if isinstance(expr, And):
            return And(tuple(self._resolve_inner(p, lenient) for p in expr.parts))
        if isinstance(expr, Or):
            return Or(tuple(self._resolve_inner(p, lenient) for p in expr.parts))
        if isinstance(expr, Not):
            return Not(self._resolve_inner(expr.inner, lenient))
        if isinstance(expr, IsNull):
            return IsNull(self._resolve_inner(expr.inner, lenient), expr.negated)
        if isinstance(expr, InList):
            return InList(
                self._resolve_inner(expr.inner, lenient),
                tuple(self._resolve_inner(o, lenient) for o in expr.options),
                expr.negated,
            )
        if isinstance(expr, Between):
            return Between(
                self._resolve_inner(expr.inner, lenient),
                self._resolve_inner(expr.low, lenient),
                self._resolve_inner(expr.high, lenient),
                expr.negated,
            )
        if isinstance(expr, Like):
            return Like(self._resolve_inner(expr.inner, lenient), self._resolve_inner(expr.pattern, lenient), expr.negated)
        if isinstance(expr, FunctionCall):
            return FunctionCall(expr.name, tuple(self._resolve_inner(a, lenient) for a in expr.args))
        return expr


# --------------------------------------------------------------------------
# Sargable-predicate analysis
# --------------------------------------------------------------------------


def _literal_value(expr: Expr) -> tuple[bool, Any]:
    if isinstance(expr, Literal):
        return True, expr.value
    return False, None


def _split_sargable(
    parts: list[Expr], alias: str
) -> tuple[dict[str, Any], dict[str, dict[str, Any]], dict[str, list], list[Expr]]:
    """Classify conjuncts touching *alias* columns against literals.

    Returns (equalities, ranges, in_lists, leftovers) where equalities maps
    column -> value, ranges maps column -> {low, high, low_inc, high_inc},
    in_lists maps column -> list of values.
    """
    equalities: dict[str, Any] = {}
    ranges: dict[str, dict[str, Any]] = {}
    in_lists: dict[str, list] = {}
    leftovers: list[Expr] = []

    def narrow(column: str, low=None, low_inc=True, high=None, high_inc=True):
        """Intersect new bounds into the column's running range."""
        from repro.db.types import sort_key

        bounds = ranges.setdefault(
            column, {"low": None, "high": None, "low_inc": True, "high_inc": True}
        )
        if low is not None:
            if bounds["low"] is None or sort_key(low) > sort_key(bounds["low"]):
                bounds["low"], bounds["low_inc"] = low, low_inc
            elif sort_key(low) == sort_key(bounds["low"]) and not low_inc:
                bounds["low_inc"] = False
        if high is not None:
            if bounds["high"] is None or sort_key(high) < sort_key(bounds["high"]):
                bounds["high"], bounds["high_inc"] = high, high_inc
            elif sort_key(high) == sort_key(bounds["high"]) and not high_inc:
                bounds["high_inc"] = False

    for part in parts:
        consumed = False
        if isinstance(part, Comparison):
            left, right, op = part.left, part.right, part.op
            if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
                left, right = right, left
                flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
                op = flip.get(op, op)
            if isinstance(left, ColumnRef) and left.table == alias:
                ok, value = _literal_value(right)
                if ok and value is not None:
                    if op == "=":
                        equalities[left.name] = value
                        consumed = True
                    elif op in ("<", "<="):
                        narrow(left.name, high=value, high_inc=(op == "<="))
                        consumed = True
                    elif op in (">", ">="):
                        narrow(left.name, low=value, low_inc=(op == ">="))
                        consumed = True
        elif isinstance(part, Between) and not part.negated:
            if isinstance(part.inner, ColumnRef) and part.inner.table == alias:
                ok_lo, lo = _literal_value(part.low)
                ok_hi, hi = _literal_value(part.high)
                if ok_lo and ok_hi and lo is not None and hi is not None:
                    narrow(part.inner.name, low=lo, high=hi)
                    consumed = True
        elif isinstance(part, Like) and not part.negated:
            # LIKE 'abc%' (prefix pattern, no other wildcards) narrows to a
            # range ['abc', 'abc￿'); the LIKE itself stays as a
            # residual filter so '_' semantics remain exact.
            if isinstance(part.inner, ColumnRef) and part.inner.table == alias:
                ok, pattern = _literal_value(part.pattern)
                if (
                    ok
                    and isinstance(pattern, str)
                    and pattern.endswith("%")
                    and "%" not in pattern[:-1]
                    and "_" not in pattern
                    and len(pattern) > 1
                ):
                    prefix = pattern[:-1]
                    narrow(
                        part.inner.name,
                        low=prefix,
                        high=prefix + "￿",
                        high_inc=False,
                    )
                    # NOT consumed: the LIKE stays as a residual filter.
        elif isinstance(part, InList) and not part.negated:
            if isinstance(part.inner, ColumnRef) and part.inner.table == alias:
                values = []
                ok_all = True
                for option in part.options:
                    ok, value = _literal_value(option)
                    if not ok or value is None:
                        ok_all = False
                        break
                    values.append(value)
                if ok_all and values:
                    in_lists.setdefault(part.inner.name, []).extend(values)
                    consumed = True
        if not consumed:
            leftovers.append(part)
    return equalities, ranges, in_lists, leftovers


def choose_access_path(
    table: Table,
    alias: str,
    where_parts: list[Expr],
    stats: Optional[TableStats] = None,
) -> AccessPath:
    """Pick the best access path for *table* given conjuncts on it.

    Without *stats* the choice is purely rule-based (the historical
    behaviour, bit-for-bit).  With *stats* the rule-based winner is
    re-examined against a simple cost model that can instead pick an
    ``index_and`` intersection of several fully-covered equality indexes,
    or fall back to a sequential scan when every index is unselective.
    """
    equalities, ranges, in_lists, leftovers = _split_sargable(where_parts, alias)

    best: Optional[AccessPath] = None
    best_score: tuple = ()
    eq_candidates: list[AccessPath] = []
    for index_def in table.index_defs():
        cols = index_def.columns
        prefix_len = 0
        while prefix_len < len(cols) and cols[prefix_len] in equalities:
            prefix_len += 1
        full_unique = index_def.unique and prefix_len == len(cols)
        range_col = cols[prefix_len] if prefix_len < len(cols) else None
        has_range = range_col is not None and range_col in ranges
        if prefix_len == 0 and not has_range:
            # Maybe an IN on the first index column.
            if cols[0] in in_lists:
                score = (1, 0, 0, 0)
                if best is None or score > best_score:
                    best = AccessPath(
                        table=table.name,
                        alias=alias,
                        kind="index_in",
                        index=index_def.name,
                        in_values=tuple(in_lists[cols[0]]),
                    )
                    best_score = score
            continue
        # Tie-break equal prefix lengths by whether the equality prefix
        # covers the whole index: a fully-covered (attr, value) index is
        # far more selective than the same-length prefix of a wider one.
        fully_covered = 1 if prefix_len == len(cols) else 0
        if fully_covered and not has_range:
            # Every fully-covered equality probe is an intersection
            # candidate for the cost-based pass below.
            eq_candidates.append(
                AccessPath(
                    table=table.name,
                    alias=alias,
                    kind="index_eq",
                    index=index_def.name,
                    eq_values=tuple(equalities[c] for c in cols),
                )
            )
        score = (
            3 if full_unique else 2,
            prefix_len,
            1 if has_range else 0,
            fully_covered,
        )
        if best is not None and score <= best_score:
            continue
        eq_values = tuple(equalities[c] for c in cols[:prefix_len])
        if has_range:
            bounds = ranges[range_col]
            best = AccessPath(
                table=table.name,
                alias=alias,
                kind="index_range",
                index=index_def.name,
                eq_values=eq_values,
                low=bounds["low"],
                high=bounds["high"],
                low_inclusive=bounds["low_inc"],
                high_inclusive=bounds["high_inc"],
            )
        else:
            best = AccessPath(
                table=table.name,
                alias=alias,
                kind="index_eq",
                index=index_def.name,
                eq_values=eq_values,
            )
        best_score = score

    if stats is not None:
        refined = _cost_refine(table, alias, where_parts, best, eq_candidates, stats)
        if refined is not None:
            return refined

    residual = _combine(where_parts) if best is None else _residual_for(best, where_parts, table)
    if best is None:
        return AccessPath(table=table.name, alias=alias, kind="seq", residual=residual)
    best.residual = residual
    return best


def _estimate_path(path: AccessPath, stats: TableStats) -> float:
    """Modeled candidate-row count for one single-index access path."""
    rows = float(stats.row_count)
    if path.kind == "seq" or path.index is None:
        return rows
    keys = float(stats.index_key_counts.get(path.index, 0))
    per_key = rows / keys if keys else rows
    if path.kind == "index_eq":
        return per_key
    if path.kind == "index_in":
        return per_key * max(len(path.in_values), 1)
    if path.kind == "index_range":
        # A range touches a fraction of the key space; without histograms
        # assume a third, but never better than one equality probe.
        return max(rows / 3.0, per_key)
    return rows


#: An index whose probe still yields more than this fraction of the table
#: is not worth the lookup overhead — fall back to the sequential scan.
_SEQ_FALLBACK_FRACTION = 0.5

#: Intersecting posting lists handles rowids only (no row fetch), so a
#: probe inside an index_and costs roughly half a row-producing probe.
_INTERSECT_PROBE_FACTOR = 0.5


def _cost_refine(
    table: Table,
    alias: str,
    where_parts: list[Expr],
    best: Optional[AccessPath],
    eq_candidates: list[AccessPath],
    stats: TableStats,
) -> Optional[AccessPath]:
    """Cost-based second opinion on the rule-based choice.

    Returns a complete replacement path (residual attached) when the
    model prefers an ``index_and`` intersection or a sequential scan;
    ``None`` keeps the rule-based winner untouched.
    """
    rows = float(stats.row_count)
    # A single-index path fetches and residual-filters every candidate
    # row: probe plus per-row work.
    best_est = _estimate_path(best, stats) if best is not None else rows
    best_cost = 2.0 * best_est

    # Intersecting >= 2 distinct fully-covered equality indexes: the
    # probes stream rowids only (cheap), and row fetch + residual runs
    # on the multiplied-selectivity survivor set.
    distinct = []
    seen: set[str] = set()
    for candidate in eq_candidates:
        if candidate.index not in seen:
            seen.add(candidate.index)  # type: ignore[arg-type]
            distinct.append(candidate)
    if len(distinct) >= 2:
        distinct.sort(key=lambda p: _estimate_path(p, stats))
        estimates = [_estimate_path(p, stats) for p in distinct]
        survivors = rows
        for estimate in estimates:
            survivors *= estimate / rows if rows else 0.0
        and_cost = (
            _INTERSECT_PROBE_FACTOR * sum(estimates) + 2.0 * survivors
        )
        if and_cost < best_cost:
            return AccessPath(
                table=table.name,
                alias=alias,
                kind="index_and",
                subpaths=tuple(distinct),
                # Conservative: re-apply every conjunct to the survivors.
                residual=_combine(where_parts),
            )

    if best is not None and best_est > _SEQ_FALLBACK_FRACTION * rows:
        return AccessPath(
            table=table.name,
            alias=alias,
            kind="seq",
            residual=_combine(where_parts),
        )
    return None


def _residual_for(path: AccessPath, parts: list[Expr], table: Table) -> Optional[Expr]:
    """Keep every conjunct not exactly consumed by the access path.

    Index range bounds and IN lists fully cover their predicates, so any
    conjunct whose effect is entirely captured can be dropped.  To stay
    safe we re-apply range/IN predicates only when they were *not* the ones
    encoded in the path; equality prefixes encoded in the path are exact
    and always droppable.
    """
    index_def = next(d for d in table.index_defs() if d.name == path.index)
    consumed_eq = set(index_def.columns[: len(path.eq_values)])
    keep: list[Expr] = []
    range_col = (
        index_def.columns[len(path.eq_values)]
        if path.kind == "index_range" and len(path.eq_values) < len(index_def.columns)
        else None
    )
    in_col = index_def.columns[0] if path.kind == "index_in" else None
    for part in parts:
        if isinstance(part, Comparison) and part.op == "=":
            left, right = part.left, part.right
            if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
                left, right = right, left
            if (
                isinstance(left, ColumnRef)
                and left.table == path.alias
                and left.name in consumed_eq
                and isinstance(right, Literal)
            ):
                continue
        if range_col is not None:
            if isinstance(part, Comparison) and part.op in ("<", "<=", ">", ">="):
                left, right = part.left, part.right
                if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
                    left, right = right, left
                if (
                    isinstance(left, ColumnRef)
                    and left.table == path.alias
                    and left.name == range_col
                    and isinstance(right, Literal)
                ):
                    continue
            if (
                isinstance(part, Between)
                and not part.negated
                and isinstance(part.inner, ColumnRef)
                and part.inner.table == path.alias
                and part.inner.name == range_col
                and isinstance(part.low, Literal)
                and isinstance(part.high, Literal)
            ):
                continue
        if in_col is not None:
            if (
                isinstance(part, InList)
                and not part.negated
                and isinstance(part.inner, ColumnRef)
                and part.inner.table == path.alias
                and part.inner.name == in_col
                and all(isinstance(o, Literal) for o in part.options)
            ):
                continue
        keep.append(part)
    return _combine(keep)


def _combine(parts: list[Expr]) -> Optional[Expr]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


# --------------------------------------------------------------------------
# SELECT planning
# --------------------------------------------------------------------------


def plan_select(catalog: Catalog, stmt: Select) -> SelectPlan:
    if stmt.table is None:
        raise ProgrammingError("SELECT without FROM is not supported")
    tables: list[tuple[str, str]] = [(stmt.table.effective_alias, stmt.table.name)]
    for join in stmt.joins:
        tables.append((join.table.effective_alias, join.table.name))
    seen_aliases: set[str] = set()
    for alias, table_name in tables:
        catalog.table(table_name)  # raises SchemaError on missing table
        if alias in seen_aliases:
            raise ProgrammingError(f"duplicate table alias {alias!r}")
        seen_aliases.add(alias)

    resolver = _Resolver(catalog, tables)
    where = resolver.resolve(stmt.where) if stmt.where is not None else None
    where_parts = conjuncts(where)

    # Partition WHERE conjuncts by the single alias they touch; multi-alias
    # conjuncts are applied as soon as every referenced alias is joined.
    available = [tables[0][0]]
    base_parts = _parts_for(where_parts, {tables[0][0]})
    consumed = set(id(p) for p in base_parts)

    base_table = catalog.table(tables[0][1])
    base = choose_access_path(
        base_table, tables[0][0], base_parts, stats=_stats_for(catalog, base_table)
    )

    join_steps: list[JoinStep] = []
    for join in stmt.joins:
        alias = join.table.effective_alias
        inner_table = catalog.table(join.table.name)
        condition = resolver.resolve(join.condition) if join.condition is not None else None
        cond_parts = conjuncts(condition)
        # WHERE conjuncts now evaluable (touch only joined aliases + this one)
        newly = [
            p
            for p in where_parts
            if id(p) not in consumed
            and _aliases_of(p) <= set(available) | {alias}
        ]
        for p in newly:
            consumed.add(id(p))
        inner_stats = _stats_for(catalog, inner_table)
        if join.kind == "left":
            # WHERE predicates filter the padded result, not the match
            # (x LEFT JOIN y ... WHERE y.c IS NULL must see the padding).
            step = _plan_join(
                inner_table, alias, cond_parts, set(available), join.kind,
                stats=inner_stats,
            )
            step.post_filter = _combine(newly)
        else:
            step = _plan_join(
                inner_table, alias, cond_parts + newly, set(available), join.kind,
                stats=inner_stats,
            )
        join_steps.append(step)
        available.append(alias)

    leftover = [p for p in where_parts if id(p) not in consumed]
    if leftover:
        # Conjuncts referencing aliases never joined (shouldn't happen) —
        # fold into the last step / base residual.
        extra = _combine(leftover)
        if join_steps:
            join_steps[-1].condition = _combine(
                [c for c in (join_steps[-1].condition, extra) if c is not None]
            )
        else:
            base.residual = _combine(
                [c for c in (base.residual, extra) if c is not None]
            )

    # Projection items
    items: list[ProjectionItem] = []
    star_aliases: list[str] = []
    aggregate_mode = bool(stmt.group_by) or any(i.aggregate for i in stmt.items)
    for item in stmt.items:
        if item.star:
            if aggregate_mode:
                raise ProgrammingError("cannot mix * with aggregates")
            if item.star_table is not None:
                if item.star_table not in seen_aliases:
                    raise ProgrammingError(f"unknown alias {item.star_table!r} in select")
                star_aliases.append(item.star_table)
            else:
                star_aliases.extend(alias for alias, _ in tables)
            continue
        expr = resolver.resolve(item.expr) if item.expr is not None else None
        name = item.alias or (str(expr) if expr is not None else "count")
        if item.expr is not None and isinstance(item.expr, ColumnRef) and item.alias is None:
            name = item.expr.name
        if item.aggregate and item.alias is None:
            inner = item.expr.name if isinstance(item.expr, ColumnRef) else ("*" if item.count_star else "expr")
            name = f"{item.aggregate.lower()}({inner})"
        items.append(
            ProjectionItem(
                expr=expr,
                name=name,
                aggregate=item.aggregate,
                count_star=item.count_star,
            )
        )

    group_by = [resolver.resolve(g) for g in stmt.group_by]
    having = resolver.resolve(stmt.having, lenient=True) if stmt.having is not None else None
    order_by = [OrderItem(_resolve_order(resolver, o.expr, items), o.descending) for o in stmt.order_by]

    layout: dict[str, tuple[str, ...]] = {}
    for alias, table_name in tables:
        cols = catalog.table(table_name).definition.column_names
        layout[alias] = tuple(f"{alias}.{c}" for c in cols)

    output_names: list[str] = []
    for alias in star_aliases:
        table_name = dict(tables)[alias]
        output_names.extend(catalog.table(table_name).definition.column_names)
    output_names.extend(i.name for i in items)

    return SelectPlan(
        base=base,
        joins=join_steps,
        items=items,
        star_aliases=star_aliases,
        group_by=group_by,
        having=having,
        order_by=order_by,
        order_on_output=aggregate_mode,
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
        column_layout=layout,
        output_names=tuple(output_names),
    )


def _resolve_order(resolver: _Resolver, expr: Expr, items: list[ProjectionItem]) -> Expr:
    """Resolve an ORDER BY expression; bare names may match output aliases."""
    if isinstance(expr, ColumnRef) and expr.table is None:
        for item in items:
            if item.name == expr.name and item.expr is not None and item.aggregate is None:
                return item.expr
    return resolver.resolve(expr, lenient=True)


def _aliases_of(expr: Expr) -> set[str]:
    return {c.table for c in expr.columns() if c.table is not None}


def _parts_for(parts: list[Expr], aliases: set[str]) -> list[Expr]:
    return [p for p in parts if _aliases_of(p) <= aliases and _aliases_of(p)]


def _stats_for(catalog: Catalog, table: Table) -> Optional[TableStats]:
    """Live statistics when the database opted into cost-based planning."""
    if not getattr(catalog, "cost_stats", False):
        return None
    return TableStats.from_table(table)


def _plan_join(
    inner: Table,
    alias: str,
    parts: list[Expr],
    outer_aliases: set[str],
    kind: str,
    stats: Optional[TableStats] = None,
) -> JoinStep:
    """Plan one join of *inner* against the already-joined aliases."""
    left_outer = kind == "left"
    # Find equi-join conjuncts: inner.col = <expr over outer aliases>
    equi: list[tuple[str, Expr]] = []  # (inner col, outer expr)
    local_parts: list[Expr] = []      # touch only the inner alias
    residual: list[Expr] = []
    for part in parts:
        placed = False
        if isinstance(part, Comparison) and part.op == "=":
            for left, right in ((part.left, part.right), (part.right, part.left)):
                if (
                    isinstance(left, ColumnRef)
                    and left.table == alias
                    and _aliases_of(right) <= outer_aliases
                    and not (isinstance(right, ColumnRef) and right.table == alias)
                ):
                    # Constant right side belongs to local parts instead.
                    if _aliases_of(right):
                        equi.append((left.name, right))
                        placed = True
                        break
        if placed:
            continue
        refs = _aliases_of(part)
        if refs <= {alias}:
            local_parts.append(part)
        else:
            residual.append(part)

    # Try an index on the inner table covering a prefix of the equi columns
    # (plus local equality literals).
    local_eq, _, _, _ = _split_sargable(local_parts, alias)
    best_index = None
    best_exprs: list[Expr] = []
    best_len = 0
    best_equi_cols: set[str] = set()
    best_local_cols: set[str] = set()
    for index_def in inner.index_defs():
        exprs: list[Expr] = []
        equi_cols: set[str] = set()
        local_cols: set[str] = set()
        for col in index_def.columns:
            matched = next((expr for c, expr in equi if c == col), None)
            if matched is not None:
                exprs.append(matched)
                equi_cols.add(col)
            elif col in local_eq:
                exprs.append(Literal(local_eq[col]))
                local_cols.add(col)
            else:
                break
        # Require at least one outer-driven key, else it's not a join index.
        if exprs and any(_aliases_of(e) for e in exprs) and len(exprs) > best_len:
            best_index = index_def.name
            best_exprs = exprs
            best_len = len(exprs)
            best_equi_cols = equi_cols
            best_local_cols = local_cols

    if best_index is not None:
        # A predicate is dropped only when the index key consumed it from
        # the matching source: equi column vs. local literal.
        rest = [
            Comparison("=", ColumnRef(c, table=alias), e)
            for c, e in equi
            if c not in best_equi_cols
        ]
        local_rest = [
            p
            for p in local_parts
            if not _is_consumed_local_eq(p, alias, best_local_cols)
        ]
        cond = _combine(rest + local_rest + residual)
        access = AccessPath(table=inner.name, alias=alias, kind="index_eq", index=best_index)
        return JoinStep(
            kind="index_nl",
            access=access,
            left_outer=left_outer,
            outer_key_exprs=tuple(best_exprs),
            condition=cond,
        )

    if equi:
        access = choose_access_path(inner, alias, local_parts, stats=stats)
        return JoinStep(
            kind="hash",
            access=access,
            left_outer=left_outer,
            hash_outer=tuple(e for _, e in equi),
            hash_inner=tuple(ColumnRef(c, table=alias) for c, _ in equi),
            condition=_combine(residual),
        )

    access = choose_access_path(inner, alias, local_parts, stats=stats)
    return JoinStep(
        kind="nested",
        access=access,
        left_outer=left_outer,
        condition=_combine(residual),
    )


def _is_consumed_local_eq(part: Expr, alias: str, consumed: set[str]) -> bool:
    if not isinstance(part, Comparison) or part.op != "=":
        return False
    left, right = part.left, part.right
    if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
        left, right = right, left
    return (
        isinstance(left, ColumnRef)
        and left.table == alias
        and left.name in consumed
        and isinstance(right, Literal)
        and right.value is not None
    )


def plan_mutation(catalog: Catalog, table_name: str, where: Optional[Expr]) -> MutationPlan:
    """Plan row selection for UPDATE/DELETE on a single table."""
    table = catalog.table(table_name)
    resolver = _Resolver(catalog, [(table_name, table_name)])
    resolved = resolver.resolve(where) if where is not None else None
    parts = conjuncts(resolved)
    access = choose_access_path(
        table, table_name, parts, stats=_stats_for(catalog, table)
    )
    return MutationPlan(access=access)


# --------------------------------------------------------------------------
# Plan description (EXPLAIN)
# --------------------------------------------------------------------------


def describe_access(path: AccessPath) -> str:
    if path.kind == "seq":
        base = f"SEQ SCAN {path.table} AS {path.alias}"
    elif path.kind == "index_eq":
        base = (
            f"INDEX LOOKUP {path.table} AS {path.alias} "
            f"USING {path.index} ON {path.eq_values!r}"
        )
    elif path.kind == "index_range":
        low = "-inf" if path.low is None else repr(path.low)
        high = "+inf" if path.high is None else repr(path.high)
        base = (
            f"INDEX RANGE SCAN {path.table} AS {path.alias} "
            f"USING {path.index} PREFIX {path.eq_values!r} IN [{low}, {high}]"
        )
    elif path.kind == "index_in":
        base = (
            f"INDEX IN-LIST {path.table} AS {path.alias} "
            f"USING {path.index} VALUES {path.in_values!r}"
        )
    elif path.kind == "index_and":
        probes = " & ".join(
            f"{sub.index} ON {sub.eq_values!r}" for sub in path.subpaths
        )
        base = f"INDEX INTERSECT {path.table} AS {path.alias} USING {probes}"
    else:  # pragma: no cover - exhaustive
        base = f"? {path.kind}"
    if path.residual is not None:
        base += f" FILTER {path.residual}"
    return base


def describe_plan(plan: SelectPlan) -> list[str]:
    """Human-readable physical plan, one operator per line."""
    lines = [describe_access(plan.base)]
    for step in plan.joins:
        label = {
            "index_nl": "INDEX NESTED LOOP JOIN",
            "hash": "HASH JOIN",
            "nested": "NESTED LOOP JOIN",
        }[step.kind]
        if step.left_outer:
            label = "LEFT " + label
        detail = describe_access(step.access)
        if step.kind == "index_nl":
            keys = ", ".join(str(e) for e in step.outer_key_exprs)
            detail += f" KEYS ({keys})"
        elif step.kind == "hash":
            keys = ", ".join(str(e) for e in step.hash_outer)
            detail += f" HASH ({keys})"
        line = f"{label} -> {detail}"
        if step.condition is not None:
            line += f" ON {step.condition}"
        if step.post_filter is not None:
            line += f" POST-FILTER {step.post_filter}"
        lines.append(line)
    if plan.group_by or any(i.aggregate for i in plan.items):
        group = ", ".join(str(g) for g in plan.group_by) or "<all rows>"
        lines.append(f"AGGREGATE BY {group}")
        if plan.having is not None:
            lines.append(f"HAVING {plan.having}")
    if plan.distinct:
        lines.append("DISTINCT")
    if plan.order_by:
        keys = ", ".join(
            f"{o.expr}{' DESC' if o.descending else ''}" for o in plan.order_by
        )
        lines.append(f"SORT BY {keys}")
    if plan.limit is not None or plan.offset:
        lines.append(f"LIMIT {plan.limit} OFFSET {plan.offset or 0}")
    lines.append(f"PROJECT {', '.join(plan.output_names)}")
    return lines
