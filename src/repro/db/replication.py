"""Primary → replica database replication via logical WAL shipping.

The paper's §9: "we have assumed that we would eventually replicate the
MCS over a small number of sites to improve performance and reliability."
This module provides the database-level mechanism: every transaction
committed on the primary is shipped, as its logical WAL records, to a set
of replica databases which apply them in commit order.

Two shipping modes:

* **synchronous** — records applied to every replica before the commit
  hook returns (replicas never lag; primary pays the cost);
* **asynchronous** — records queued and applied by a background thread
  per replica (primary unaffected; replicas exhibit bounded staleness,
  observable via :meth:`Replica.lag` and forceable via ``flush``).

Replicas are for reads; writing to a replica database directly is not
prevented but will diverge it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Optional

from repro import faults as _faults
from repro.db.engine import Database
from repro.db.wal import _apply_record
from repro.obs import trace as _trace
from repro.obs.metrics import OBS, counter as _obs_counter, gauge as _obs_gauge, histogram as _obs_histogram
from repro.resilience.retry import RETRY_ATTEMPTS, RetryPolicy

_REPL_SHIPPED = _obs_counter(
    "mcs_repl_batches_shipped_total",
    "Commit batches published to the replica set",
)
_REPL_APPLIED = _obs_counter(
    "mcs_repl_batches_applied_total",
    "Commit batches applied, per replica",
    labels=("replica",),
)
_REPL_LAG = _obs_gauge(
    "mcs_repl_lag_batches",
    "Commit batches queued or mid-apply, per replica",
    labels=("replica",),
)
_REPL_APPLY_SECONDS = _obs_histogram(
    "mcs_repl_apply_seconds",
    "Time to apply one commit batch on a replica",
    labels=("replica",),
)


class Replica:
    """One replica database plus its apply machinery."""

    def __init__(self, name: str, database: Optional[Database] = None,
                 asynchronous: bool = False,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.name = name
        self.database = database if database is not None else Database()
        self.asynchronous = asynchronous
        # Shipping a batch can fail (see the ``repl.ship`` injection
        # layer); retries preserve commit order because they re-apply the
        # *same* batch in place before the next one is touched.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy(
            max_attempts=6, base_delay_s=0.001, max_delay_s=0.05
        )
        self.applied_batches = 0
        self._pending: "queue.Queue[Optional[list[dict]]]" = queue.Queue()
        self._apply_lock = threading.Lock()
        self._in_flight = 0  # dequeued but not yet applied
        self._thread: Optional[threading.Thread] = None
        if asynchronous:
            self._thread = threading.Thread(target=self._apply_loop, daemon=True)
            self._thread.start()

    # -- applying ------------------------------------------------------------

    def _apply_batch(self, records: list[dict]) -> None:
        start = time.perf_counter() if OBS.enabled else 0.0
        owner = object()
        lock = self.database.locks.schema_lock
        lock.acquire_write(owner, self.database.locks.timeout)
        try:
            for record in records:
                _apply_record(self.database.catalog, record)
            # Invalidate the replica's read caches before readers can see
            # the new rows (mirrors the primary's commit-time bump).
            tables = set()
            for record in records:
                table = record.get("table")
                if table is None:
                    table = (record.get("def") or {}).get("name")
                if table:
                    tables.add(table)
            if tables:
                self.database.generations.bump(tables)
        finally:
            lock.release(owner, True)
        with self._apply_lock:
            self.applied_batches += 1
        _REPL_APPLIED.labels(self.name).inc()
        if OBS.enabled:
            _REPL_APPLY_SECONDS.labels(self.name).observe(
                time.perf_counter() - start
            )

    def _ship(self, records: list[dict], bounded: bool) -> None:
        """Apply one shipped batch, retrying transient shipping faults.

        The injection point sits *before* :meth:`_apply_batch`, so a
        failed shipment never half-applies; a batch either lands whole or
        not at all.  ``bounded`` (the synchronous path) gives up after
        the policy's attempts and propagates to the commit hook; the
        asynchronous path retries until the batch lands — dropping it
        would silently diverge the replica forever.
        """
        from repro.soap.envelope import SoapFault
        from repro.soap.errors import TransportError

        policy = self.retry_policy
        attempt = 0
        with _trace.span("repl.ship", replica=self.name, n=str(len(records))):
            while True:
                attempt += 1
                try:
                    inj = _faults.check("repl.ship", self.name)
                    if inj is not None:
                        inj.fail()
                    self._apply_batch(records)
                    return
                except (TransportError, SoapFault):
                    if bounded and attempt >= policy.max_attempts:
                        RETRY_ATTEMPTS.labels(
                            f"repl:{self.name}", "exhausted"
                        ).inc()
                        raise
                    RETRY_ATTEMPTS.labels(f"repl:{self.name}", "retried").inc()
                    _trace.annotate(
                        f"retry attempt={attempt} replica={self.name}"
                    )
                    time.sleep(policy.backoff(min(attempt, policy.max_attempts)))

    def _apply_loop(self) -> None:
        while True:
            batch = self._pending.get()
            if batch is None:
                return
            with self._apply_lock:
                self._in_flight += 1
            try:
                self._ship(batch, bounded=False)
            finally:
                with self._apply_lock:
                    self._in_flight -= 1
                _REPL_LAG.labels(self.name).set(self.lag())

    def receive(self, records: list[dict]) -> None:
        if self.asynchronous:
            self._pending.put(records)
            _REPL_LAG.labels(self.name).set(self.lag())
        else:
            self._ship(records, bounded=True)

    # -- management --------------------------------------------------------------

    def lag(self) -> int:
        """Number of commit batches queued or mid-apply."""
        with self._apply_lock:
            return self._pending.qsize() + self._in_flight

    def flush(self, timeout: float = 10.0) -> None:
        """Block until the apply queue drains (async replicas)."""
        if not self.asynchronous:
            return
        import time

        deadline = time.monotonic() + timeout
        while self.lag() > 0:
            if time.monotonic() > deadline:
                raise TimeoutError(f"replica {self.name!r} did not catch up")
            time.sleep(0.001)

    def stop(self) -> None:
        if self._thread is not None:
            self._pending.put(None)
            self._thread.join(5)
            self._thread = None


class ReplicationPublisher:
    """Attaches to a primary Database and fans commits out to replicas.

    Replicas added after the primary already holds data must be seeded
    first (see :func:`seed_replica`); the publisher only ships *new*
    commits.
    """

    def __init__(self, primary: Database) -> None:
        self.primary = primary
        self.replicas: dict[str, Replica] = {}
        self._listener = self._on_commit
        primary.add_commit_listener(self._listener)
        self.batches_published = 0

    def _on_commit(self, records: list[dict]) -> None:
        self.batches_published += 1
        _REPL_SHIPPED.inc()
        for replica in self.replicas.values():
            replica.receive(records)

    def add_replica(self, replica: Replica) -> None:
        if replica.name in self.replicas:
            raise ValueError(f"replica {replica.name!r} already attached")
        self.replicas[replica.name] = replica

    def remove_replica(self, name: str) -> Replica:
        return self.replicas.pop(name)

    def flush_all(self, timeout: float = 10.0) -> None:
        for replica in self.replicas.values():
            replica.flush(timeout)

    def close(self) -> None:
        self.primary.remove_commit_listener(self._listener)
        for replica in self.replicas.values():
            replica.stop()
        self.replicas.clear()


def seed_replica(primary: Database, replica: Replica) -> None:
    """Copy the primary's current state into an empty replica.

    Uses the snapshot codec (schema + raw rows) so autoincrement counters
    and indexes come out identical.  The primary should be quiesced (no
    concurrent writers) while seeding; the publisher ships everything
    after.
    """
    from repro.db import wal as walmod
    from repro.db.schema import IndexDef

    source = primary.catalog
    target = replica.database.catalog
    if target.table_names():
        raise ValueError("replica must be empty before seeding")
    for name in source.table_names():
        table = source.table(name)
        target.create_table(
            walmod.table_def_from_dict(walmod.table_def_to_dict(table.definition))
        )
        new_table = target.table(name)
        for index_def in table.index_defs():
            if index_def.name.startswith("__"):
                continue
            new_table.create_index(
                IndexDef(
                    name=index_def.name,
                    table=name,
                    columns=index_def.columns,
                    unique=index_def.unique,
                )
            )
        for rowid, row in table.scan():
            new_table.insert_row_with_id(rowid, row)
