"""Database engine facade: connections, statement execution, durability.

Thread model: a :class:`Database` is shared; each thread uses its own
:class:`Connection`.  Parsed statements are cached per SQL text and shared
(they are immutable); parameter binding produces per-execution copies.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.db import wal as walmod
from repro.db.errors import (
    ProgrammingError,
    SchemaError,
    TransactionError,
)
from repro.db.expr import Expr, bind_parameters, Literal
from repro.db.executor import execute_select, select_rowids
from repro.db.planner import plan_mutation, plan_select
from repro.db.schema import IndexDef, TableDef
from repro.db.sql.ast import (
    BeginTransaction,
    Explain,
    CommitTransaction,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Insert,
    Join,
    OrderItem,
    RollbackTransaction,
    Select,
    SelectItem,
    Statement,
    Update,
)
from repro.db.sql.lexer import TokenType, tokenize
from repro.db.sql.parser import parse_statement
from repro.db.storage import Catalog, ForeignKeyEnforcer
from repro.db.txn import LockManager, TransactionState
from repro.cache.generations import GenerationMap
from repro.obs.metrics import OBS, counter as _obs_counter, histogram as _obs_histogram

_STMT_CACHE = _obs_counter(
    "mcs_db_stmt_cache_total",
    "Parsed-statement cache lookups by outcome",
    labels=("outcome",),
)
_STMT_CACHE_HIT = _STMT_CACHE.labels("hit")
_STMT_CACHE_MISS = _STMT_CACHE.labels("miss")
_PARSE_SECONDS = _obs_histogram(
    "mcs_db_parse_seconds", "SQL text to AST parse time (cache misses only)"
)
_PLAN_SECONDS = _obs_histogram(
    "mcs_db_plan_seconds", "Physical planning time per planned statement"
)
_STATEMENT_SECONDS = _obs_histogram(
    "mcs_db_statement_seconds",
    "End-to-end statement execution time (locks + plan + execute)",
    labels=("kind",),
)
_STATEMENT_KINDS: dict[type, Any] = {}
_STATEMENT_KINDS_GUARD = threading.Lock()


def _statement_timer(stmt: Statement):
    child = _STATEMENT_KINDS.get(type(stmt))
    if child is None:
        # lock-free on hit; the guard only covers the one-time insert
        # per statement class (MCS015)
        with _STATEMENT_KINDS_GUARD:
            child = _STATEMENT_KINDS.get(type(stmt))
            if child is None:
                child = _STATEMENT_SECONDS.labels(type(stmt).__name__.lower())
                _STATEMENT_KINDS[type(stmt)] = child
    return child


# Statement/plan timings are sampled 1-in-8: the catalog layer already
# times every API call exactly, so these histograms only need enough
# observations for a faithful distribution — not one per statement.
# (The tick is racy under threads; sampling tolerates lost updates.)
_TIMER_MASK = 7
_timer_tick = 0


def _sample_tick() -> bool:
    global _timer_tick
    # wp-ok: MCS015 deliberately racy tick; lost updates only shift the sampling phase
    _timer_tick = (_timer_tick + 1) & _TIMER_MASK
    return _timer_tick == 0


class ResultSet:
    """Result of one statement: rows for SELECT, counters for DML."""

    def __init__(
        self,
        columns: tuple[str, ...] = (),
        rows: Optional[list[tuple]] = None,
        rowcount: int = -1,
        lastrowid: Optional[int] = None,
        lastrowids: Optional[list[int]] = None,
    ) -> None:
        self.columns = columns
        self._rows = rows if rows is not None else []
        self.rowcount = rowcount if rowcount >= 0 else len(self._rows)
        self.lastrowid = lastrowid
        # Auto-increment values for every inserted row, in insertion
        # order — the multi-row INSERT / executemany counterpart of
        # ``lastrowid`` (which only reports the final row's value).
        self.lastrowids = lastrowids if lastrowids is not None else []
        self._cursor = 0

    def fetchall(self) -> list[tuple]:
        remaining = self._rows[self._cursor :]
        self._cursor = len(self._rows)
        return remaining

    def fetchone(self) -> Optional[tuple]:
        if self._cursor >= len(self._rows):
            return None
        row = self._rows[self._cursor]
        self._cursor += 1
        return row

    def scalar(self) -> Any:
        """First column of the first row, or None when empty."""
        row = self.fetchone()
        return None if row is None else row[0]

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    def __len__(self) -> int:
        return len(self._rows)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self._rows]


class Database:
    """An embedded relational database.

    Parameters
    ----------
    directory:
        When given, the database is durable: a snapshot plus write-ahead
        log live in this directory and are recovered on open.
    lock_timeout:
        Seconds to wait for a table lock before LockTimeoutError.
    durable_sync:
        fsync the WAL on every commit (slow, crash-safe).
    cost_stats:
        Let the planner consult live table/index cardinalities
        (:class:`repro.db.planner.TableStats`) and consider index
        intersections or cost-based seq-scan fallbacks.  Off by default:
        the rule-based plans stay exactly as they always were.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        lock_timeout: float = 5.0,
        durable_sync: bool = False,
        cost_stats: bool = False,
    ) -> None:
        self.catalog = Catalog()
        self.catalog.cost_stats = cost_stats
        self.locks = LockManager(lock_timeout)
        self.fk = ForeignKeyEnforcer(self.catalog)
        # Per-table commit generations: the invalidation signal for the
        # strict-consistency read caches (repro.cache).  Bumped after a
        # commit is durable, before its write locks are released.
        self.generations = GenerationMap()
        self.directory = directory
        self._stmt_cache: dict[str, Statement] = {}
        self._stmt_cache_guard = threading.Lock()
        self._wal_guard = threading.Lock()
        self._wal: Optional[walmod.WriteAheadLog] = None
        self._commit_listeners: list[Callable[[list[dict]], None]] = []
        if directory is not None:
            walmod.load_snapshot(self.catalog, directory)
            walmod.replay_wal(self.catalog, directory)
            self._wal = walmod.WriteAheadLog(directory, sync=durable_sync)

    # -- connections --------------------------------------------------------

    def connect(self) -> "Connection":
        return Connection(self)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def checkpoint(self) -> None:
        """Write a snapshot and truncate the WAL (quiesces all writers)."""
        if self.directory is None:
            return
        owner = object()
        self.locks.schema_lock.acquire_write(owner, self.locks.timeout)
        try:
            with self._wal_guard:
                walmod.write_snapshot(self.catalog, self.directory)
                if self._wal is not None:
                    self._wal.truncate()
        finally:
            self.locks.schema_lock.release(owner, True)

    # -- shared helpers --------------------------------------------------------

    def parse(self, sql: str) -> Statement:
        stmt = self._stmt_cache.get(sql)
        if stmt is not None:
            _STMT_CACHE_HIT.inc()
            return stmt
        _STMT_CACHE_MISS.inc()
        start = time.perf_counter() if OBS.enabled else 0.0
        stmt = parse_statement(sql)
        if OBS.enabled:
            _PARSE_SECONDS.observe(time.perf_counter() - start)
        with self._stmt_cache_guard:
            if len(self._stmt_cache) > 4096:
                self._stmt_cache.clear()
            self._stmt_cache[sql] = stmt
        return stmt

    def add_commit_listener(self, listener: Callable[[list[dict]], None]) -> None:
        """Register a callable invoked with every committed record batch.

        Listeners receive the logical WAL records (insert/update/delete/
        DDL) after the commit succeeds locally — the hook replication
        (:mod:`repro.db.replication`) builds on.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener: Callable[[list[dict]], None]) -> None:
        self._commit_listeners.remove(listener)

    def wal_commit(self, records: list[dict]) -> None:
        if not records:
            return
        if self._wal is not None:
            with self._wal_guard:
                self._wal.append_commit(records)
        for listener in self._commit_listeners:
            listener(list(records))

    # -- programmatic DDL (used by schema bootstrap code) -----------------------

    def create_table(self, definition: TableDef, if_not_exists: bool = False) -> None:
        owner = object()
        self.locks.schema_lock.acquire_write(owner, self.locks.timeout)
        try:
            if if_not_exists and self.catalog.has_table(definition.name):
                return
            self.catalog.create_table(definition)
            self.wal_commit(
                [{"op": "create_table", "def": walmod.table_def_to_dict(definition)}]
            )
            self.generations.bump((definition.name,))
        finally:
            self.locks.schema_lock.release(owner, True)

    def create_index(self, index_def: IndexDef, if_not_exists: bool = False) -> None:
        owner = object()
        self.locks.schema_lock.acquire_write(owner, self.locks.timeout)
        try:
            table = self.catalog.table(index_def.table)
            if if_not_exists and any(
                d.name == index_def.name for d in table.index_defs()
            ):
                return
            table.create_index(index_def)
            self.wal_commit(
                [
                    {
                        "op": "create_index",
                        "table": index_def.table,
                        "name": index_def.name,
                        "columns": list(index_def.columns),
                        "unique": index_def.unique,
                    }
                ]
            )
            self.generations.bump((index_def.table,))
        finally:
            self.locks.schema_lock.release(owner, True)


def split_statements(sql: str) -> list[str]:
    """Split a script into statements on top-level ``;`` boundaries."""
    tokens = tokenize(sql)
    statements: list[str] = []
    start = 0
    for token in tokens:
        if token.type is TokenType.PUNCT and token.text == ";":
            piece = sql[start : token.position].strip()
            if piece:
                statements.append(piece)
            start = token.position + 1
        elif token.type is TokenType.EOF:
            piece = sql[start : token.position].strip()
            if piece:
                statements.append(piece)
    return statements


class Connection:
    """A single-threaded session against a shared :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self._db = database
        self._txn = TransactionState()
        self._closed = False

    # -- public API ---------------------------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        if self._closed:
            raise ProgrammingError("connection is closed")
        stmt = self._db.parse(sql)
        if not OBS.enabled or not _sample_tick():
            return self._dispatch(stmt, tuple(params))
        start = time.perf_counter()
        try:
            return self._dispatch(stmt, tuple(params))
        finally:
            _statement_timer(stmt).observe(time.perf_counter() - start)

    def executemany(
        self, sql: str, seq_of_params: Sequence[Sequence[Any]]
    ) -> ResultSet:
        """Execute one INSERT for many parameter sets under one lock pass.

        The batched-executor path: locks are acquired once, every row is
        inserted, and the whole call is all-or-nothing (any failure rolls
        back every row of this call).  Only INSERT is supported — batched
        UPDATE/DELETE have no single-pass win in this engine.
        """
        if self._closed:
            raise ProgrammingError("connection is closed")
        stmt = self._db.parse(sql)
        if not isinstance(stmt, Insert):
            raise ProgrammingError("executemany supports INSERT statements only")
        param_sets = [tuple(p) for p in seq_of_params]
        if not param_sets:
            return ResultSet(rowcount=0)
        if not OBS.enabled or not _sample_tick():
            return self._execute_insert_many(stmt, param_sets)
        start = time.perf_counter()
        try:
            return self._execute_insert_many(stmt, param_sets)
        finally:
            _statement_timer(stmt).observe(time.perf_counter() - start)

    def executescript(self, sql: str) -> None:
        for piece in split_statements(sql):
            self.execute(piece)

    def lock_tables(
        self,
        read: Sequence[str] = (),
        write: Sequence[str] = (),
    ) -> None:
        """Eagerly acquire table locks for the whole transaction.

        The ``LOCK TABLES`` analog: a multi-statement transaction that
        will eventually write a table it first reads must take the write
        lock up front, otherwise two such transactions can deadlock on
        the read→write upgrade.  Locks taken here are held (reentrantly
        re-granted to later statements) until COMMIT/ROLLBACK.
        """
        if self._closed:
            raise ProgrammingError("connection is closed")
        if not self._txn.explicit:
            raise TransactionError("lock_tables requires an explicit transaction")
        held = self._with_locks(set(read) - set(write), set(write))
        self._txn.held.extend(held)

    def begin(self) -> None:
        self.execute("BEGIN")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    def close(self) -> None:
        if self._txn.explicit:
            self._rollback_txn()
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._txn.explicit:
            if exc_type is None:
                self.commit()
            else:
                self.rollback()
        self.close()

    @property
    def in_transaction(self) -> bool:
        return self._txn.explicit

    @property
    def transaction_written_tables(self) -> frozenset[str]:
        """Tables this connection's open transaction has written so far.

        Conservative: a table stays listed even if a savepoint rollback
        reverted every write to it (the overshoot only costs shared-cache
        bypasses, never correctness).  Empty outside transactions.
        """
        return frozenset(self._txn.written_tables)

    # -- dispatch ------------------------------------------------------------------

    def _dispatch(self, stmt: Statement, params: tuple) -> ResultSet:
        if isinstance(stmt, Select):
            return self._execute_select(stmt, params)
        if isinstance(stmt, Explain):
            return self._execute_explain(stmt, params)
        if isinstance(stmt, Insert):
            return self._execute_insert(stmt, params)
        if isinstance(stmt, Update):
            return self._execute_update(stmt, params)
        if isinstance(stmt, Delete):
            return self._execute_delete(stmt, params)
        if isinstance(stmt, BeginTransaction):
            return self._begin_txn()
        if isinstance(stmt, CommitTransaction):
            return self._commit_txn()
        if isinstance(stmt, RollbackTransaction):
            return self._rollback_txn()
        if isinstance(stmt, (CreateTable, CreateIndex, DropTable, DropIndex)):
            return self._execute_ddl(stmt)
        raise ProgrammingError(f"unsupported statement {type(stmt).__name__}")

    # -- transactions ------------------------------------------------------------------

    def _begin_txn(self) -> ResultSet:
        if self._txn.explicit:
            raise TransactionError("transaction already in progress")
        self._txn.explicit = True
        return ResultSet(rowcount=0)

    def _commit_txn(self) -> ResultSet:
        if not self._txn.explicit:
            raise TransactionError("COMMIT without BEGIN")
        self._db.wal_commit(self._txn.wal_records)
        # Invalidate read caches for exactly the tables this commit
        # changed (savepoint rollbacks already truncated their records,
        # so fully-reverted work publishes nothing).  Bumping *before*
        # _finish_txn releases the write locks is what makes cache hits
        # strictly consistent: until the locks drop, nobody else could
        # read the new data anyway.
        self._bump_generations()
        self._finish_txn()
        return ResultSet(rowcount=0)

    def _bump_generations(self) -> None:
        tables = {r["table"] for r in self._txn.wal_records if "table" in r}
        if tables:
            self._db.generations.bump(tables)

    def _rollback_txn(self) -> ResultSet:
        if not self._txn.explicit and not self._txn.held:
            raise TransactionError("ROLLBACK without BEGIN")
        self._txn.undo.rollback(self._db.catalog)
        self._finish_txn()
        return ResultSet(rowcount=0)

    def _finish_txn(self) -> None:
        LockManager.release(self._txn, self._txn.held)
        self._txn.held.clear()
        self._txn.undo.clear()
        self._txn.wal_records.clear()
        self._txn.written_tables.clear()
        self._txn.explicit = False

    def savepoint(self) -> tuple[int, int]:
        """Mark a rollback point inside an explicit transaction.

        Returns an opaque token for :meth:`rollback_to_savepoint`.  Locks
        taken after the savepoint are retained until commit/rollback (as
        in most lock-based engines); only data changes are reverted.
        """
        if not self._txn.explicit:
            raise TransactionError("savepoint requires an explicit transaction")
        return (self._txn.undo.mark(), len(self._txn.wal_records))

    def rollback_to_savepoint(self, token: tuple[int, int]) -> None:
        """Revert every data change made since :meth:`savepoint`."""
        if not self._txn.explicit:
            raise TransactionError(
                "rollback_to_savepoint requires an explicit transaction"
            )
        undo_mark, wal_mark = token
        self._txn.undo.rollback_to(self._db.catalog, undo_mark)
        del self._txn.wal_records[wal_mark:]

    # -- lock scaffolding -----------------------------------------------------------------

    def _with_locks(self, read_tables: set[str], write_tables: set[str]):
        """Acquire locks for one statement; returns a finish callback."""
        owner = self._txn
        self._db.locks.schema_lock.acquire_read(owner, self._db.locks.timeout)
        try:
            held = self._db.locks.acquire(owner, read_tables, write_tables)
        except Exception:
            self._db.locks.schema_lock.release(owner, False)
            raise
        held.insert(0, (self._db.locks.schema_lock, False))
        return held

    def _statement_done(self, held: list, success: bool) -> None:
        """Commit or roll back the statement's effects in autocommit mode."""
        if self._txn.explicit:
            if success:
                self._txn.held.extend(held)
            else:
                # Undo only this statement's changes is complex; roll back
                # the whole transaction like MySQL does on statement error
                # inside a txn would not — instead we keep the txn and its
                # locks, and the caller decides.  Statement-local effects
                # were already reverted by the caller before reaching here.
                self._txn.held.extend(held)
            return
        if success:
            try:
                self._db.wal_commit(self._txn.wal_records)
            except Exception:
                # The log refused the commit: the statement never
                # happened.  Revert the in-memory rows before releasing
                # the locks — leaving them would acknowledge unlogged
                # state, and leaving the staged records would hand them
                # to the next statement's commit (double-apply after
                # replay).
                self._txn.undo.rollback_to(self._db.catalog, 0)
                self._txn.wal_records.clear()
                self._txn.undo.clear()
                self._txn.written_tables.clear()
                LockManager.release(self._txn, held)
                raise
            # Autocommit: bump while still holding this statement's
            # write locks (released just below), mirroring _commit_txn.
            self._bump_generations()
        self._txn.wal_records.clear()
        self._txn.undo.clear()
        self._txn.written_tables.clear()
        LockManager.release(self._txn, held)

    # -- SELECT ---------------------------------------------------------------------------

    def _execute_select(self, stmt: Select, params: tuple) -> ResultSet:
        bound = _bind_select(stmt, params)
        read_tables: set[str] = set()
        if bound.table is not None:
            read_tables.add(bound.table.name)
        for join in bound.joins:
            read_tables.add(join.table.name)
        held = self._with_locks(read_tables, set())
        try:
            plan = self._plan_timed(plan_select, bound)
            names, rows = execute_select(self._db.catalog, plan)
            return ResultSet(columns=names, rows=rows)
        finally:
            self._statement_done(held, True)

    def _plan_timed(self, planner, *args):
        if not OBS.enabled or not _sample_tick():
            return planner(self._db.catalog, *args)
        start = time.perf_counter()
        try:
            return planner(self._db.catalog, *args)
        finally:
            _PLAN_SECONDS.observe(time.perf_counter() - start)

    def _execute_explain(self, stmt: Explain, params: tuple) -> ResultSet:
        from repro.db.planner import describe_plan

        assert isinstance(stmt.inner, Select)
        bound = _bind_select(stmt.inner, params)
        read_tables: set[str] = set()
        if bound.table is not None:
            read_tables.add(bound.table.name)
        for join in bound.joins:
            read_tables.add(join.table.name)
        held = self._with_locks(read_tables, set())
        try:
            plan = plan_select(self._db.catalog, bound)
            lines = describe_plan(plan)
            return ResultSet(columns=("plan",), rows=[(line,) for line in lines])
        finally:
            self._statement_done(held, True)

    # -- INSERT ---------------------------------------------------------------------------

    def _execute_insert(self, stmt: Insert, params: tuple) -> ResultSet:
        return self._execute_insert_many(stmt, [params])

    def _execute_insert_many(
        self, stmt: Insert, param_sets: list[tuple]
    ) -> ResultSet:
        """Insert ``stmt.rows`` once per parameter set under one lock pass."""
        table = self._db.catalog.table(stmt.table)  # early schema check
        read_tables = {fk.ref_table for fk in table.definition.foreign_keys}
        held = self._with_locks(read_tables, {stmt.table})
        self._txn.written_tables.add(stmt.table)
        success = False
        lastrowids: list[int] = []
        inserted = 0
        undo_mark = self._txn.undo.mark()
        wal_mark = len(self._txn.wal_records)
        try:
            auto_index = (
                table.definition.column_index(table.definition.auto_column)
                if table.definition.auto_column is not None
                else None
            )
            for params in param_sets:
                for row_exprs in stmt.rows:
                    values: dict[str, Any] = {}
                    for col, expr in zip(stmt.columns, row_exprs):
                        bound_expr = bind_parameters(expr, params)
                        values[col] = bound_expr.eval({})
                    rowid, stored = table.insert(values)
                    self._txn.undo.record_insert(stmt.table, rowid)
                    self._db.fk.check_insert(table, stored)
                    self._txn.wal_records.append(
                        {
                            "op": "insert",
                            "table": stmt.table,
                            "rowid": rowid,
                            "row": walmod.encode_row(stored),
                        }
                    )
                    if auto_index is not None:
                        lastrowids.append(stored[auto_index])
                    inserted += 1
            success = True
            return ResultSet(
                rowcount=inserted,
                lastrowid=lastrowids[-1] if lastrowids else None,
                lastrowids=lastrowids,
            )
        except Exception:
            self._txn.undo.rollback_to(self._db.catalog, undo_mark)
            del self._txn.wal_records[wal_mark:]
            raise
        finally:
            self._statement_done(held, success)

    # -- UPDATE ---------------------------------------------------------------------------

    def _execute_update(self, stmt: Update, params: tuple) -> ResultSet:
        table = self._db.catalog.table(stmt.table)
        read_tables = {fk.ref_table for fk in table.definition.foreign_keys}
        # Children that reference this table must be visible for parent checks.
        for other in self._db.catalog.tables.values():
            for fk in other.definition.foreign_keys:
                if fk.ref_table == stmt.table:
                    read_tables.add(other.name)
        held = self._with_locks(read_tables - {stmt.table}, {stmt.table})
        self._txn.written_tables.add(stmt.table)
        success = False
        count = 0
        undo_mark = self._txn.undo.mark()
        wal_mark = len(self._txn.wal_records)
        try:
            where = (
                bind_parameters(stmt.where, params) if stmt.where is not None else None
            )
            assignments = [
                (col, bind_parameters(expr, params)) for col, expr in stmt.assignments
            ]
            plan = self._plan_timed(plan_mutation, stmt.table, where)
            rowids = select_rowids(self._db.catalog, plan.access)
            names = table.definition.column_names
            qualified = tuple(f"{stmt.table}.{c}" for c in names)
            referenced_cols = {
                c
                for other in self._db.catalog.tables.values()
                for fk in other.definition.foreign_keys
                if fk.ref_table == stmt.table
                for c in fk.ref_columns
            }
            for rowid in rowids:
                row = table.rows[rowid]
                scope = dict(zip(qualified, row))
                scope.update(zip(names, row))
                changes = {col: expr.eval(scope) for col, expr in assignments}
                old, new = table.update(rowid, changes)
                self._txn.undo.record_update(stmt.table, rowid, old)
                self._db.fk.check_insert(table, new)
                if referenced_cols & set(changes):
                    changed_ref = any(
                        old[table.definition.column_index(c)]
                        != new[table.definition.column_index(c)]
                        for c in referenced_cols
                    )
                    if changed_ref:
                        self._db.fk.check_delete(table, old)
                self._txn.wal_records.append(
                    {
                        "op": "update",
                        "table": stmt.table,
                        "rowid": rowid,
                        "row": walmod.encode_row(new),
                    }
                )
                count += 1
            success = True
            return ResultSet(rowcount=count)
        except Exception:
            self._txn.undo.rollback_to(self._db.catalog, undo_mark)
            del self._txn.wal_records[wal_mark:]
            raise
        finally:
            self._statement_done(held, success)

    # -- DELETE ---------------------------------------------------------------------------

    def _execute_delete(self, stmt: Delete, params: tuple) -> ResultSet:
        table = self._db.catalog.table(stmt.table)
        read_tables: set[str] = set()
        for other in self._db.catalog.tables.values():
            for fk in other.definition.foreign_keys:
                if fk.ref_table == stmt.table:
                    read_tables.add(other.name)
        held = self._with_locks(read_tables - {stmt.table}, {stmt.table})
        self._txn.written_tables.add(stmt.table)
        success = False
        count = 0
        undo_mark = self._txn.undo.mark()
        wal_mark = len(self._txn.wal_records)
        try:
            where = (
                bind_parameters(stmt.where, params) if stmt.where is not None else None
            )
            plan = self._plan_timed(plan_mutation, stmt.table, where)
            rowids = select_rowids(self._db.catalog, plan.access)
            for rowid in rowids:
                row = table.rows[rowid]
                self._db.fk.check_delete(table, row)
                table.delete(rowid)
                self._txn.undo.record_delete(stmt.table, rowid, row)
                self._txn.wal_records.append(
                    {"op": "delete", "table": stmt.table, "rowid": rowid}
                )
                count += 1
            success = True
            return ResultSet(rowcount=count)
        except Exception:
            self._txn.undo.rollback_to(self._db.catalog, undo_mark)
            del self._txn.wal_records[wal_mark:]
            raise
        finally:
            self._statement_done(held, success)

    # -- DDL ---------------------------------------------------------------------------

    def _execute_ddl(self, stmt: Statement) -> ResultSet:
        if self._txn.explicit:
            raise TransactionError("DDL is not allowed inside an explicit transaction")
        owner = self._txn
        self._db.locks.schema_lock.acquire_write(owner, self._db.locks.timeout)
        bump_table: Optional[str] = None
        try:
            if isinstance(stmt, CreateTable):
                if stmt.if_not_exists and self._db.catalog.has_table(stmt.name):
                    return ResultSet(rowcount=0)
                definition = TableDef(
                    name=stmt.name,
                    columns=stmt.columns,
                    primary_key=stmt.primary_key,
                    unique=stmt.unique,
                    foreign_keys=stmt.foreign_keys,
                )
                self._db.catalog.create_table(definition)
                self._db.wal_commit(
                    [
                        {
                            "op": "create_table",
                            "def": walmod.table_def_to_dict(definition),
                        }
                    ]
                )
                bump_table = stmt.name
            elif isinstance(stmt, CreateIndex):
                table = self._db.catalog.table(stmt.table)
                if stmt.if_not_exists and any(
                    d.name == stmt.name for d in table.index_defs()
                ):
                    return ResultSet(rowcount=0)
                table.create_index(
                    IndexDef(
                        name=stmt.name,
                        table=stmt.table,
                        columns=stmt.columns,
                        unique=stmt.unique,
                    )
                )
                self._db.wal_commit(
                    [
                        {
                            "op": "create_index",
                            "table": stmt.table,
                            "name": stmt.name,
                            "columns": list(stmt.columns),
                            "unique": stmt.unique,
                        }
                    ]
                )
                bump_table = stmt.table
            elif isinstance(stmt, DropTable):
                if stmt.if_exists and not self._db.catalog.has_table(stmt.name):
                    return ResultSet(rowcount=0)
                self._db.catalog.drop_table(stmt.name)
                self._db.wal_commit([{"op": "drop_table", "table": stmt.name}])
                bump_table = stmt.name
            elif isinstance(stmt, DropIndex):
                table_name = stmt.table
                if table_name is None:
                    for name in self._db.catalog.table_names():
                        if any(
                            d.name == stmt.name
                            for d in self._db.catalog.table(name).index_defs()
                        ):
                            table_name = name
                            break
                if table_name is None:
                    if stmt.if_exists:
                        return ResultSet(rowcount=0)
                    raise SchemaError(f"no index {stmt.name!r}")
                self._db.catalog.table(table_name).drop_index(stmt.name)
                self._db.wal_commit(
                    [{"op": "drop_index", "table": table_name, "name": stmt.name}]
                )
                bump_table = table_name
            if bump_table is not None:
                self._db.generations.bump((bump_table,))
            return ResultSet(rowcount=0)
        finally:
            self._db.locks.schema_lock.release(owner, True)


# --------------------------------------------------------------------------
# Parameter binding for SELECT statements
# --------------------------------------------------------------------------


def _bind_select(stmt: Select, params: tuple) -> Select:
    """Produce a parameter-bound copy of a (cached, shared) Select."""
    items = [
        SelectItem(
            expr=bind_parameters(i.expr, params) if i.expr is not None else None,
            alias=i.alias,
            star=i.star,
            star_table=i.star_table,
            aggregate=i.aggregate,
            count_star=i.count_star,
        )
        for i in stmt.items
    ]
    joins = [
        Join(
            table=j.table,
            kind=j.kind,
            condition=bind_parameters(j.condition, params)
            if j.condition is not None
            else None,
        )
        for j in stmt.joins
    ]
    return Select(
        items=items,
        table=stmt.table,
        joins=joins,
        where=bind_parameters(stmt.where, params) if stmt.where is not None else None,
        group_by=[bind_parameters(g, params) for g in stmt.group_by],
        having=bind_parameters(stmt.having, params) if stmt.having is not None else None,
        order_by=[
            OrderItem(bind_parameters(o.expr, params), o.descending)
            for o in stmt.order_by
        ],
        limit=stmt.limit,
        offset=stmt.offset,
        distinct=stmt.distinct,
    )
