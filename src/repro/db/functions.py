"""Scalar and aggregate SQL functions.

The scalar table backs :class:`repro.db.expr.FunctionCall`; the aggregate
classes back ``GROUP BY`` execution in :mod:`repro.db.executor`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.db.errors import ProgrammingError
from repro.db.types import sort_key


def _lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _substr(value: Any, start: Any, length: Any = None) -> Any:
    if value is None or start is None:
        return None
    text = str(value)
    begin = int(start) - 1  # SQL SUBSTR is 1-based
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _trim(value: Any) -> Any:
    return None if value is None else str(value).strip()


def _concat(*args: Any) -> Any:
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


def _ifnull(value: Any, fallback: Any) -> Any:
    return fallback if value is None else value


def _min2(*args: Any) -> Any:
    vals = [a for a in args if a is not None]
    return min(vals, key=sort_key) if vals else None


def _max2(*args: Any) -> Any:
    vals = [a for a in args if a is not None]
    return max(vals, key=sort_key) if vals else None


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "LOWER": _lower,
    "UPPER": _upper,
    "LENGTH": _length,
    "ABS": _abs,
    "COALESCE": _coalesce,
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "TRIM": _trim,
    "CONCAT": _concat,
    "IFNULL": _ifnull,
    "LEAST": _min2,
    "GREATEST": _max2,
}


class Aggregate:
    """Streaming aggregate state; one instance per (group, aggregate)."""

    def add(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError


class CountAgg(Aggregate):
    """COUNT(expr) — NULLs excluded; COUNT(*) counts every row."""

    def __init__(self, count_star: bool = False) -> None:
        self._count = 0
        self._star = count_star

    def add(self, value: Any) -> None:
        if self._star or value is not None:
            self._count += 1

    def result(self) -> int:
        return self._count


class SumAgg(Aggregate):
    """SUM(expr) — NULLs skipped; empty input yields NULL."""

    def __init__(self) -> None:
        self._sum: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._sum = value if self._sum is None else self._sum + value

    def result(self) -> Any:
        return self._sum


class AvgAgg(Aggregate):
    """AVG(expr) — NULLs skipped; empty input yields NULL."""

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._sum += value
        self._count += 1

    def result(self) -> Optional[float]:
        return None if self._count == 0 else self._sum / self._count


class MinAgg(Aggregate):
    """MIN(expr) under the engine total order; NULLs skipped."""

    def __init__(self) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or sort_key(value) < sort_key(self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


class MaxAgg(Aggregate):
    """MAX(expr) under the engine total order; NULLs skipped."""

    def __init__(self) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or sort_key(value) > sort_key(self._best):
            self._best = value

    def result(self) -> Any:
        return self._best


AGGREGATE_FUNCTIONS: dict[str, Callable[[], Aggregate]] = {
    "COUNT": CountAgg,
    "SUM": SumAgg,
    "AVG": AvgAgg,
    "MIN": MinAgg,
    "MAX": MaxAgg,
}


def make_aggregate(name: str, count_star: bool = False) -> Aggregate:
    upper = name.upper()
    if upper == "COUNT":
        return CountAgg(count_star=count_star)
    factory = AGGREGATE_FUNCTIONS.get(upper)
    if factory is None:
        raise ProgrammingError(f"unknown aggregate function {name!r}")
    return factory()


def is_aggregate(name: str) -> bool:
    return name.upper() in AGGREGATE_FUNCTIONS
