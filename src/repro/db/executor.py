"""Iterator-model execution of physical plans.

Rows flow through the pipeline as *scopes*: dicts mapping qualified column
keys (``alias.col``) to values.  The top of the pipeline projects scopes
into output tuples.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator, Optional

from repro.db.errors import ProgrammingError
from repro.db.expr import Expr
from repro.db.functions import make_aggregate
from repro.db.planner import AccessPath, JoinStep, SelectPlan
from repro.db.storage import Catalog, Table
from repro.db.types import sort_key


# --------------------------------------------------------------------------
# Access paths
# --------------------------------------------------------------------------


def iter_rowids(table: Table, path: AccessPath) -> Iterator[int]:
    """Candidate rowids for an access path (before residual filtering)."""
    if path.kind == "seq":
        yield from list(table.rows.keys())
        return
    if path.kind == "index_and":
        # Intersect the posting sets of every subpath, cheapest first
        # (the planner pre-sorted them); bail as soon as it empties.
        surviving: Optional[set[int]] = None
        for sub in path.subpaths:
            rowids = set(iter_rowids(table, sub))
            surviving = rowids if surviving is None else (surviving & rowids)
            if not surviving:
                break
        yield from sorted(surviving or ())
        return
    assert path.index is not None
    tree = table.indexes[path.index]
    index_cols = next(d.columns for d in table.index_defs() if d.name == path.index)
    if path.kind == "index_eq":
        if len(path.eq_values) == len(index_cols):
            yield from tree.get(path.eq_values)
        else:
            yield from tree.prefix(path.eq_values)
        return
    if path.kind == "index_in":
        for value in path.in_values:
            if len(index_cols) == 1:
                yield from tree.get((value,))
            else:
                yield from tree.prefix((value,))
        return
    if path.kind == "index_range":
        if path.eq_values:
            # Prefix-bounded range: walk the equality prefix and filter the
            # range column from the row itself.
            range_col = index_cols[len(path.eq_values)]
            col_idx = table.definition.column_index(range_col)
            for rowid in tree.prefix(path.eq_values):
                value = table.rows[rowid][col_idx]
                if value is None:
                    continue
                if path.low is not None:
                    if path.low_inclusive:
                        if sort_key(value) < sort_key(path.low):
                            continue
                    elif sort_key(value) <= sort_key(path.low):
                        continue
                if path.high is not None:
                    if path.high_inclusive:
                        if sort_key(value) > sort_key(path.high):
                            continue
                    elif sort_key(value) >= sort_key(path.high):
                        continue
                yield rowid
            return
        low = (path.low,) if path.low is not None else None
        high = (path.high,) if path.high is not None else None
        yield from tree.range(low, high, path.low_inclusive, path.high_inclusive)
        return
    raise ProgrammingError(f"unknown access kind {path.kind!r}")  # pragma: no cover


def _scan_scopes(
    catalog: Catalog, path: AccessPath, layout: dict[str, tuple[str, ...]]
) -> Iterator[dict[str, Any]]:
    table = catalog.table(path.table)
    keys = layout[path.alias]
    residual = path.residual
    for rowid in iter_rowids(table, path):
        scope = dict(zip(keys, table.rows[rowid]))
        if residual is None or residual.eval(scope) is True:
            yield scope


# --------------------------------------------------------------------------
# Joins
# --------------------------------------------------------------------------


def _null_scope(keys: tuple[str, ...]) -> dict[str, Any]:
    return {k: None for k in keys}


def _apply_join(
    catalog: Catalog,
    step: JoinStep,
    outer: Iterator[dict[str, Any]],
    layout: dict[str, tuple[str, ...]],
) -> Iterator[dict[str, Any]]:
    produced = _apply_join_inner(catalog, step, outer, layout)
    if step.post_filter is None:
        return produced
    post = step.post_filter
    return (s for s in produced if post.eval(s) is True)


def _apply_join_inner(
    catalog: Catalog,
    step: JoinStep,
    outer: Iterator[dict[str, Any]],
    layout: dict[str, tuple[str, ...]],
) -> Iterator[dict[str, Any]]:
    table = catalog.table(step.access.table)
    keys = layout[step.access.alias]

    if step.kind == "index_nl":
        assert step.access.index is not None
        tree = table.indexes[step.access.index]
        index_cols = next(
            d.columns for d in table.index_defs() if d.name == step.access.index
        )
        full_key = len(step.outer_key_exprs) == len(index_cols)
        for outer_scope in outer:
            key = tuple(e.eval(outer_scope) for e in step.outer_key_exprs)
            matched = False
            if not any(v is None for v in key):
                rowids = tree.get(key) if full_key else list(tree.prefix(key))
                for rowid in rowids:
                    scope = dict(outer_scope)
                    scope.update(zip(keys, table.rows[rowid]))
                    if step.condition is None or step.condition.eval(scope) is True:
                        matched = True
                        yield scope
            if not matched and step.left_outer:
                scope = dict(outer_scope)
                scope.update(_null_scope(keys))
                yield scope
        return

    if step.kind == "hash":
        # Build side: inner rows passing the local access path.
        build: dict[tuple, list[dict[str, Any]]] = {}
        for inner_scope in _scan_scopes(catalog, step.access, layout):
            key = tuple(sort_key(e.eval(inner_scope)) for e in step.hash_inner)
            build.setdefault(key, []).append(inner_scope)
        for outer_scope in outer:
            raw = tuple(e.eval(outer_scope) for e in step.hash_outer)
            matched = False
            if not any(v is None for v in raw):
                key = tuple(sort_key(v) for v in raw)
                for inner_scope in build.get(key, ()):
                    scope = dict(outer_scope)
                    scope.update(inner_scope)
                    if step.condition is None or step.condition.eval(scope) is True:
                        matched = True
                        yield scope
            if not matched and step.left_outer:
                scope = dict(outer_scope)
                scope.update(_null_scope(keys))
                yield scope
        return

    if step.kind == "nested":
        inner_scopes = list(_scan_scopes(catalog, step.access, layout))
        for outer_scope in outer:
            matched = False
            for inner_scope in inner_scopes:
                scope = dict(outer_scope)
                scope.update(inner_scope)
                if step.condition is None or step.condition.eval(scope) is True:
                    matched = True
                    yield scope
            if not matched and step.left_outer:
                scope = dict(outer_scope)
                scope.update(_null_scope(keys))
                yield scope
        return

    raise ProgrammingError(f"unknown join kind {step.kind!r}")  # pragma: no cover


# --------------------------------------------------------------------------
# SELECT execution
# --------------------------------------------------------------------------


def execute_select(catalog: Catalog, plan: SelectPlan) -> tuple[tuple[str, ...], list[tuple]]:
    """Run a SELECT plan; returns (column names, rows)."""
    scopes: Iterator[dict[str, Any]] = _scan_scopes(catalog, plan.base, plan.column_layout)
    for step in plan.joins:
        scopes = _apply_join(catalog, step, scopes, plan.column_layout)

    aggregate_mode = bool(plan.group_by) or any(i.aggregate for i in plan.items)

    if aggregate_mode:
        rows = _execute_aggregate(plan, scopes)
    else:
        if plan.order_by:
            materialized = list(scopes)
            materialized.sort(
                key=lambda s: tuple(
                    _order_key(o.expr.eval(s), o.descending) for o in plan.order_by
                )
            )
            scopes = iter(materialized)
        elif plan.limit is not None and not plan.distinct:
            # No ordering means any N matching rows are a valid page, so
            # stop pulling from the (lazy) scan as soon as it is full —
            # existence probes like ``... LIMIT 2`` stay O(limit) instead
            # of O(matches).
            scopes = islice(scopes, plan.limit + (plan.offset or 0))
        rows = [_project(plan, scope) for scope in scopes]

    if plan.distinct:
        seen: set[tuple] = set()
        unique_rows: list[tuple] = []
        for row in rows:
            marker = tuple(sort_key(v) for v in row)
            if marker not in seen:
                seen.add(marker)
                unique_rows.append(row)
        rows = unique_rows

    if aggregate_mode and plan.order_by:
        name_to_idx = {name: i for i, name in enumerate(plan.output_names)}
        def agg_sort_key(row: tuple):
            out = []
            mapping = dict(zip(plan.output_names, row))
            for o in plan.order_by:
                out.append(_order_key(o.expr.eval(mapping), o.descending))
            return tuple(out)
        rows.sort(key=agg_sort_key)

    if plan.offset:
        rows = rows[plan.offset :]
    if plan.limit is not None:
        rows = rows[: plan.limit]
    return plan.output_names, rows


class _Desc:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Desc") -> bool:
        return self.key > other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and self.key == other.key


def _order_key(value: Any, descending: bool):
    key = sort_key(value)
    return _Desc(key) if descending else key


def _project(plan: SelectPlan, scope: dict[str, Any]) -> tuple:
    out: list[Any] = []
    for alias in plan.star_aliases:
        out.extend(scope[k] for k in plan.column_layout[alias])
    for item in plan.items:
        assert item.expr is not None
        out.append(item.expr.eval(scope))
    return tuple(out)


def _execute_aggregate(plan: SelectPlan, scopes: Iterator[dict[str, Any]]) -> list[tuple]:
    groups: dict[tuple, dict[str, Any]] = {}
    order: list[tuple] = []
    for scope in scopes:
        key = tuple(sort_key(g.eval(scope)) for g in plan.group_by)
        state = groups.get(key)
        if state is None:
            state = {
                "rep": scope,
                "aggs": [
                    make_aggregate(i.aggregate, i.count_star) if i.aggregate else None
                    for i in plan.items
                ],
            }
            groups[key] = state
            order.append(key)
        for agg, item in zip(state["aggs"], plan.items):
            if agg is None:
                continue
            if item.count_star:
                agg.add(1)
            else:
                assert item.expr is not None
                agg.add(item.expr.eval(scope))

    if not groups and not plan.group_by:
        # Aggregates over an empty input produce one row (COUNT -> 0 etc).
        state = {
            "rep": {},
            "aggs": [
                make_aggregate(i.aggregate, i.count_star) if i.aggregate else None
                for i in plan.items
            ],
        }
        groups[()] = state
        order.append(())

    rows: list[tuple] = []
    for key in order:
        state = groups[key]
        rep = state["rep"]
        out: list[Any] = []
        for agg, item in zip(state["aggs"], plan.items):
            if agg is not None:
                out.append(agg.result())
            else:
                assert item.expr is not None
                out.append(item.expr.eval(rep) if rep else None)
        if plan.having is not None:
            mapping = dict(rep)
            mapping.update(zip(plan.output_names, out))
            if plan.having.eval(mapping) is not True:
                continue
        rows.append(tuple(out))
    return rows


# --------------------------------------------------------------------------
# Mutation row selection
# --------------------------------------------------------------------------


def select_rowids(catalog: Catalog, path: AccessPath) -> list[int]:
    """Rowids matched by a mutation plan's access path (residual applied)."""
    table = catalog.table(path.table)
    names = table.definition.column_names
    qualified = tuple(f"{path.alias}.{c}" for c in names)
    out: list[int] = []
    for rowid in iter_rowids(table, path):
        if path.residual is not None:
            row = table.rows[rowid]
            scope = dict(zip(qualified, row))
            if path.residual.eval(scope) is not True:
                continue
        out.append(rowid)
    return out
