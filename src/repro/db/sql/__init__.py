"""SQL front end: lexer, statement AST and recursive-descent parser."""

from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.sql.parser import parse_statement

__all__ = ["Token", "TokenType", "tokenize", "parse_statement"]
