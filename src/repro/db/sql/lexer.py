"""Tokenizer for the SQL subset.

Token kinds: keywords/identifiers, string/number literals, operators,
punctuation, and ``?`` parameter placeholders.  Strings use single quotes
with ``''`` escaping (MySQL/standard style).  Comments: ``--`` to end of
line and ``/* ... */`` blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.db.errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE", "ON", "PRIMARY",
    "KEY", "NOT", "NULL", "DEFAULT", "AUTOINCREMENT", "REFERENCES", "FOREIGN",
    "AND", "OR", "IN", "IS", "LIKE", "BETWEEN", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "GROUP", "HAVING", "DISTINCT", "AS", "JOIN", "INNER",
    "LEFT", "OUTER", "CROSS", "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
    "TRUE", "FALSE", "IF", "EXISTS", "CONSTRAINT", "EXPLAIN",
}

OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%")
PUNCTUATION = ("(", ")", ",", ".", ";", "?")


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    STRING = "STRING"
    NUMBER = "NUMBER"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexed token with its source offset."""

    type: TokenType
    text: str
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.value}:{self.text}"


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*, always ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SQLSyntaxError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            text, value, consumed = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, text, value, i))
            i += consumed
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            text, value, consumed = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, text, value, i))
            i += consumed
            continue
        if ch.isalpha() or ch == "_" or ch == "`":
            text, consumed, quoted = _read_identifier(sql, i)
            upper = text.upper()
            if not quoted and upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, text, text, i))
            i += consumed
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                canonical = "!=" if op == "<>" else op
                tokens.append(Token(TokenType.OPERATOR, canonical, canonical, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCT, ch, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", None, n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, str, int]:
    out: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            text = sql[start : i + 1]
            return text, "".join(out), i + 1 - start
        out.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, Any, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and sql[i] in "+-":
                i += 1
        else:
            break
    text = sql[start:i]
    try:
        value: Any = float(text) if (seen_dot or seen_exp) else int(text)
    except ValueError as exc:
        raise SQLSyntaxError(f"bad numeric literal {text!r}", start) from exc
    return text, value, i - start


def _read_identifier(sql: str, start: int) -> tuple[str, int, bool]:
    if sql[start] == "`":
        end = sql.find("`", start + 1)
        if end == -1:
            raise SQLSyntaxError("unterminated quoted identifier", start)
        return sql[start + 1 : end], end + 1 - start, True
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    return sql[start:i], i - start, False
