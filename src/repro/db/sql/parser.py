"""Recursive-descent parser for the SQL subset.

Supported statements::

    CREATE TABLE [IF NOT EXISTS] t (col TYPE [NOT NULL] [DEFAULT lit]
        [AUTOINCREMENT] [PRIMARY KEY] [UNIQUE] [REFERENCES t2 (c)], ...,
        [PRIMARY KEY (a, b)], [UNIQUE (a, b)],
        [FOREIGN KEY (a) REFERENCES t2 (c)])
    CREATE [UNIQUE] INDEX [IF NOT EXISTS] i ON t (a, b)
    DROP TABLE [IF EXISTS] t      /  DROP INDEX [IF EXISTS] i [ON t]
    INSERT INTO t (a, b) VALUES (?, ?), (...)
    UPDATE t SET a = expr [, ...] [WHERE expr]
    DELETE FROM t [WHERE expr]
    SELECT [DISTINCT] items FROM t [alias]
        [INNER|LEFT [OUTER]|CROSS JOIN t2 [alias] [ON expr]] ...
        [WHERE expr] [GROUP BY exprs [HAVING expr]]
        [ORDER BY expr [ASC|DESC], ...] [LIMIT n [OFFSET m]]
    BEGIN / COMMIT / ROLLBACK [TRANSACTION]

Expressions support AND/OR/NOT, comparisons, arithmetic, IN lists,
BETWEEN, LIKE, IS [NOT] NULL, scalar and aggregate function calls,
``?`` placeholders, and parentheses.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.db.errors import SQLSyntaxError
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
)
from repro.db.functions import is_aggregate
from repro.db.schema import Column, ForeignKey
from repro.db.sql.ast import (
    BeginTransaction,
    Explain,
    CommitTransaction,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Insert,
    Join,
    OrderItem,
    RollbackTransaction,
    Select,
    SelectItem,
    Statement,
    TableRef,
    Update,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.db.types import ColumnType


def parse_statement(sql: str) -> Statement:
    """Parse a single SQL statement (trailing ``;`` allowed)."""
    return _Parser(tokenize(sql)).parse()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(f"{message}, found {token.text or '<eof>'!r}", token.position)

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {' or '.join(names)}")
        return token

    def _accept_punct(self, text: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == text:
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        token = self._accept_punct(text)
        if token is None:
            raise self._error(f"expected {text!r}")
        return token

    def _accept_operator(self, *texts: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in texts:
            return self._advance()
        return None

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        # Non-reserved use of keywords as identifiers is not supported; keep
        # the error crisp instead.
        raise self._error(f"expected {what}")

    # -- entry -----------------------------------------------------------------

    def parse(self) -> Statement:
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise self._error("expected a SQL statement")
        if token.text == "EXPLAIN":
            self._advance()
            inner_token = self._peek()
            if not inner_token.is_keyword("SELECT"):
                raise self._error("EXPLAIN supports SELECT only")
            statement = Explain(self._parse_select())
            self._accept_punct(";")
            if self._peek().type is not TokenType.EOF:
                raise self._error("unexpected trailing tokens")
            return statement
        handlers = {
            "SELECT": self._parse_select,
            "INSERT": self._parse_insert,
            "UPDATE": self._parse_update,
            "DELETE": self._parse_delete,
            "CREATE": self._parse_create,
            "DROP": self._parse_drop,
            "BEGIN": self._parse_begin,
            "COMMIT": self._parse_commit,
            "ROLLBACK": self._parse_rollback,
        }
        handler = handlers.get(token.text)
        if handler is None:
            raise self._error("unsupported statement")
        statement = handler()
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing tokens")
        return statement

    # -- transactions -------------------------------------------------------------

    def _parse_begin(self) -> Statement:
        self._expect_keyword("BEGIN")
        self._accept_keyword("TRANSACTION")
        return BeginTransaction()

    def _parse_commit(self) -> Statement:
        self._expect_keyword("COMMIT")
        self._accept_keyword("TRANSACTION")
        return CommitTransaction()

    def _parse_rollback(self) -> Statement:
        self._expect_keyword("ROLLBACK")
        self._accept_keyword("TRANSACTION")
        return RollbackTransaction()

    # -- DDL ----------------------------------------------------------------------

    def _parse_create(self) -> Statement:
        self._expect_keyword("CREATE")
        unique = self._accept_keyword("UNIQUE") is not None
        if self._accept_keyword("INDEX"):
            if_not_exists = self._parse_if_not_exists()
            name = self._expect_identifier("index name")
            self._expect_keyword("ON")
            table = self._expect_identifier("table name")
            columns = self._parse_paren_name_list()
            return CreateIndex(name=name, table=table, columns=columns,
                               unique=unique, if_not_exists=if_not_exists)
        if unique:
            raise self._error("expected INDEX after CREATE UNIQUE")
        self._expect_keyword("TABLE")
        if_not_exists = self._parse_if_not_exists()
        name = self._expect_identifier("table name")
        self._expect_punct("(")
        columns: list[Column] = []
        primary_key: tuple[str, ...] = ()
        uniques: list[tuple[str, ...]] = []
        foreign_keys: list[ForeignKey] = []
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                if primary_key:
                    raise self._error("duplicate PRIMARY KEY clause")
                primary_key = self._parse_paren_name_list()
            elif self._accept_keyword("UNIQUE"):
                uniques.append(self._parse_paren_name_list())
            elif self._accept_keyword("FOREIGN"):
                self._expect_keyword("KEY")
                local = self._parse_paren_name_list()
                self._expect_keyword("REFERENCES")
                ref_table = self._expect_identifier("referenced table")
                ref_columns = self._parse_paren_name_list()
                foreign_keys.append(ForeignKey(local, ref_table, ref_columns))
            else:
                column, col_pk, col_unique, col_fk = self._parse_column_def()
                columns.append(column)
                if col_pk:
                    if primary_key:
                        raise self._error("duplicate PRIMARY KEY")
                    primary_key = (column.name,)
                if col_unique:
                    uniques.append((column.name,))
                if col_fk is not None:
                    foreign_keys.append(col_fk)
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        return CreateTable(
            name=name,
            columns=columns,
            primary_key=primary_key,
            unique=uniques,
            foreign_keys=foreign_keys,
            if_not_exists=if_not_exists,
        )

    def _parse_if_not_exists(self) -> bool:
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            return True
        return False

    def _parse_column_def(self) -> tuple[Column, bool, bool, Optional[ForeignKey]]:
        name = self._expect_identifier("column name")
        type_token = self._peek()
        if type_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected column type")
        self._advance()
        ctype = ColumnType.from_name(type_token.text)
        nullable = True
        default: Any = None
        autoincrement = False
        is_pk = False
        is_unique = False
        fk: Optional[ForeignKey] = None
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
            elif self._accept_keyword("NULL"):
                nullable = True
            elif self._accept_keyword("DEFAULT"):
                default = self._parse_literal_value()
            elif self._accept_keyword("AUTOINCREMENT"):
                autoincrement = True
            elif self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                is_pk = True
                nullable = False
            elif self._accept_keyword("UNIQUE"):
                is_unique = True
            elif self._accept_keyword("REFERENCES"):
                ref_table = self._expect_identifier("referenced table")
                ref_columns = self._parse_paren_name_list()
                fk = ForeignKey((name,), ref_table, ref_columns)
            else:
                break
        column = Column(name=name, ctype=ctype, nullable=nullable,
                        default=default, autoincrement=autoincrement)
        return column, is_pk, is_unique, fk

    def _parse_literal_value(self) -> Any:
        token = self._peek()
        if token.type in (TokenType.STRING, TokenType.NUMBER):
            self._advance()
            return token.value
        if token.is_keyword("NULL"):
            self._advance()
            return None
        if token.is_keyword("TRUE"):
            self._advance()
            return True
        if token.is_keyword("FALSE"):
            self._advance()
            return False
        if token.type is TokenType.OPERATOR and token.text == "-":
            self._advance()
            num = self._peek()
            if num.type is not TokenType.NUMBER:
                raise self._error("expected number after '-'")
            self._advance()
            return -num.value
        raise self._error("expected literal value")

    def _parse_paren_name_list(self) -> tuple[str, ...]:
        self._expect_punct("(")
        names = [self._expect_identifier("column name")]
        while self._accept_punct(","):
            names.append(self._expect_identifier("column name"))
        self._expect_punct(")")
        return tuple(names)

    def _parse_drop(self) -> Statement:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            if_exists = self._parse_if_exists()
            return DropTable(self._expect_identifier("table name"), if_exists)
        if self._accept_keyword("INDEX"):
            if_exists = self._parse_if_exists()
            name = self._expect_identifier("index name")
            table = None
            if self._accept_keyword("ON"):
                table = self._expect_identifier("table name")
            return DropIndex(name, table, if_exists)
        raise self._error("expected TABLE or INDEX after DROP")

    def _parse_if_exists(self) -> bool:
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            return True
        return False

    # -- DML ------------------------------------------------------------------------

    def _parse_insert(self) -> Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_identifier("table name")
        columns = self._parse_paren_name_list()
        self._expect_keyword("VALUES")
        rows: list[tuple[Expr, ...]] = []
        while True:
            self._expect_punct("(")
            values = [self._parse_expr()]
            while self._accept_punct(","):
                values.append(self._parse_expr())
            self._expect_punct(")")
            if len(values) != len(columns):
                raise self._error(
                    f"INSERT row has {len(values)} values for {len(columns)} columns"
                )
            rows.append(tuple(values))
            if not self._accept_punct(","):
                break
        return Insert(table=table, columns=columns, rows=rows)

    def _parse_update(self) -> Statement:
        self._expect_keyword("UPDATE")
        table = self._expect_identifier("table name")
        self._expect_keyword("SET")
        assignments: list[tuple[str, Expr]] = []
        while True:
            column = self._expect_identifier("column name")
            if self._accept_operator("=") is None:
                raise self._error("expected '=' in assignment")
            assignments.append((column, self._parse_expr()))
            if not self._accept_punct(","):
                break
        where = self._parse_optional_where()
        return Update(table=table, assignments=assignments, where=where)

    def _parse_delete(self) -> Statement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_identifier("table name")
        where = self._parse_optional_where()
        return Delete(table=table, where=where)

    def _parse_optional_where(self) -> Optional[Expr]:
        if self._accept_keyword("WHERE"):
            return self._parse_expr()
        return None

    # -- SELECT ------------------------------------------------------------------------

    def _parse_select(self) -> Statement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        table: Optional[TableRef] = None
        joins: list[Join] = []
        if self._accept_keyword("FROM"):
            table = self._parse_table_ref()
            while True:
                join = self._parse_join_opt()
                if join is None:
                    break
                joins.append(join)
        where = self._parse_optional_where()
        group_by: list[Expr] = []
        having: Optional[Expr] = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expr())
            while self._accept_punct(","):
                group_by.append(self._parse_expr())
            if self._accept_keyword("HAVING"):
                having = self._parse_expr()
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expr()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append(OrderItem(expr, descending))
                if not self._accept_punct(","):
                    break
        limit = offset = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_int_literal("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_int_literal("OFFSET")
        return Select(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_int_literal(self, clause: str) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and isinstance(token.value, int):
            self._advance()
            return token.value
        raise self._error(f"expected integer after {clause}")

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text == "*":
            self._advance()
            return SelectItem(star=True)
        # alias.* form
        if (
            token.type is TokenType.IDENT
            and self._tokens[self._pos + 1].type is TokenType.PUNCT
            and self._tokens[self._pos + 1].text == "."
            and self._tokens[self._pos + 2].type is TokenType.OPERATOR
            and self._tokens[self._pos + 2].text == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return SelectItem(star=True, star_table=token.text)
        # Aggregate function?
        if (
            token.type is TokenType.IDENT
            and is_aggregate(token.text)
            and self._tokens[self._pos + 1].type is TokenType.PUNCT
            and self._tokens[self._pos + 1].text == "("
        ):
            name = token.text.upper()
            self._advance()
            self._expect_punct("(")
            if (
                name == "COUNT"
                and self._peek().type is TokenType.OPERATOR
                and self._peek().text == "*"
            ):
                self._advance()
                self._expect_punct(")")
                alias = self._parse_opt_alias()
                return SelectItem(expr=None, alias=alias, aggregate="COUNT", count_star=True)
            inner = self._parse_expr()
            self._expect_punct(")")
            alias = self._parse_opt_alias()
            return SelectItem(expr=inner, alias=alias, aggregate=name)
        expr = self._parse_expr()
        alias = self._parse_opt_alias()
        return SelectItem(expr=expr, alias=alias)

    def _parse_opt_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_identifier("alias")
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return token.text
        return None

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return TableRef(name=name, alias=alias)

    def _parse_join_opt(self) -> Optional[Join]:
        if self._accept_punct(","):
            return Join(self._parse_table_ref(), "cross")
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return Join(self._parse_table_ref(), "cross")
        kind = None
        if self._accept_keyword("INNER"):
            kind = "inner"
            self._expect_keyword("JOIN")
        elif self._accept_keyword("LEFT"):
            self._accept_keyword("OUTER")
            kind = "left"
            self._expect_keyword("JOIN")
        elif self._accept_keyword("JOIN"):
            kind = "inner"
        if kind is None:
            return None
        table = self._parse_table_ref()
        condition = None
        if self._accept_keyword("ON"):
            condition = self._parse_expr()
        elif kind != "cross":
            raise self._error("expected ON clause for join")
        return Join(table, kind, condition)

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        parts = [self._parse_and()]
        while self._accept_keyword("OR"):
            parts.append(self._parse_and())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _parse_and(self) -> Expr:
        parts = [self._parse_not()]
        while self._accept_keyword("AND"):
            parts.append(self._parse_not())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _parse_not(self) -> Expr:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in ("=", "!=", "<", "<=", ">", ">="):
            self._advance()
            right = self._parse_additive()
            return Comparison(token.text, left, right)
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return IsNull(left, negated)
        negated = False
        if token.is_keyword("NOT"):
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punct("(")
            options = [self._parse_expr()]
            while self._accept_punct(","):
                options.append(self._parse_expr())
            self._expect_punct(")")
            return InList(left, tuple(options), negated)
        if token.is_keyword("LIKE"):
            self._advance()
            return Like(left, self._parse_additive(), negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._accept_operator("+", "-")
            if token is None:
                return left
            left = Arithmetic(token.text, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return left
            left = Arithmetic(token.text, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        token = self._accept_operator("-")
        if token is not None:
            inner = self._parse_unary()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arithmetic("-", Literal(0), inner)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.STRING or token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.PUNCT and token.text == "?":
            self._advance()
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            name = self._advance().text
            # Function call?
            if self._peek().type is TokenType.PUNCT and self._peek().text == "(":
                self._advance()
                args: list[Expr] = []
                if not (self._peek().type is TokenType.PUNCT and self._peek().text == ")"):
                    args.append(self._parse_expr())
                    while self._accept_punct(","):
                        args.append(self._parse_expr())
                self._expect_punct(")")
                return FunctionCall(name, tuple(args))
            # Qualified column?
            if self._accept_punct("."):
                column = self._expect_identifier("column name")
                return ColumnRef(column, table=name)
            return ColumnRef(name)
        raise self._error("expected expression")
