"""Statement AST produced by the parser and consumed by the planner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.db.expr import Expr
from repro.db.schema import ForeignKey, Column


class Statement:
    """Base class for parsed SQL statements."""


@dataclass
class CreateTable(Statement):
    """CREATE TABLE statement."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...]
    unique: list[tuple[str, ...]]
    foreign_keys: list[ForeignKey]
    if_not_exists: bool = False


@dataclass
class CreateIndex(Statement):
    """CREATE [UNIQUE] INDEX statement."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    if_not_exists: bool = False


@dataclass
class DropTable(Statement):
    """DROP TABLE statement."""

    name: str
    if_exists: bool = False


@dataclass
class DropIndex(Statement):
    """DROP INDEX statement."""

    name: str
    table: Optional[str] = None
    if_exists: bool = False


@dataclass
class Insert(Statement):
    """INSERT INTO ... VALUES statement (possibly multi-row)."""

    table: str
    columns: tuple[str, ...]
    rows: list[tuple[Expr, ...]]


@dataclass
class Update(Statement):
    """UPDATE ... SET ... [WHERE] statement."""

    table: str
    assignments: list[tuple[str, Expr]]
    where: Optional[Expr] = None


@dataclass
class Delete(Statement):
    """DELETE FROM ... [WHERE] statement."""

    table: str
    where: Optional[Expr] = None


@dataclass
class TableRef:
    """FROM-clause table with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass
class Join:
    """A join step applied to the running FROM result."""

    table: TableRef
    kind: str  # "inner", "left", "cross"
    condition: Optional[Expr] = None


@dataclass
class SelectItem:
    """One projection item: expression with optional output alias.

    ``star`` marks ``*`` or ``alias.*``; ``aggregate`` is the aggregate
    function name when the item is e.g. ``COUNT(x)``.
    """

    expr: Optional[Expr] = None
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None
    aggregate: Optional[str] = None
    count_star: bool = False


@dataclass
class OrderItem:
    """One ORDER BY key with direction."""

    expr: Expr
    descending: bool = False


@dataclass
class Select(Statement):
    """SELECT statement with joins, grouping, ordering and limits."""

    items: list[SelectItem]
    table: Optional[TableRef] = None
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass
class Explain(Statement):
    """EXPLAIN <select>: returns the physical plan as text rows."""

    inner: Statement


@dataclass
class BeginTransaction(Statement):
    """BEGIN [TRANSACTION]."""

    pass


@dataclass
class CommitTransaction(Statement):
    """COMMIT [TRANSACTION]."""

    pass


@dataclass
class RollbackTransaction(Statement):
    """ROLLBACK [TRANSACTION]."""

    pass
