"""Row storage: a heap of rows per table plus maintained indexes.

:class:`Table` is the runtime object pairing a :class:`~repro.db.schema.TableDef`
with its rows and B+tree indexes.  All mutation goes through
``insert`` / ``update`` / ``delete`` so constraints and indexes stay
consistent; each mutator returns undo information consumed by
:mod:`repro.db.txn` for rollback.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.db.btree import BPlusTree
from repro.db.errors import IntegrityError, SchemaError
from repro.db.schema import IndexDef, TableDef


class Table:
    """Runtime table: rows keyed by rowid, plus secondary indexes."""

    def __init__(self, definition: TableDef) -> None:
        self.definition = definition
        self.rows: dict[int, tuple] = {}
        self._next_rowid = 1
        self._next_auto = 1
        self.indexes: dict[str, BPlusTree] = {}
        self._index_defs: dict[str, IndexDef] = {}
        self._index_cols: dict[str, tuple[int, ...]] = {}
        # Implicit unique indexes for the primary key and unique constraints.
        if definition.primary_key:
            self._create_index(
                IndexDef(
                    name=f"__pk_{definition.name}",
                    table=definition.name,
                    columns=definition.primary_key,
                    unique=True,
                )
            )
        for pos, constraint in enumerate(definition.unique):
            self._create_index(
                IndexDef(
                    name=f"__uq_{definition.name}_{pos}",
                    table=definition.name,
                    columns=tuple(constraint),
                    unique=True,
                )
            )

    # -- schema-level operations ------------------------------------------------

    @property
    def name(self) -> str:
        return self.definition.name

    def __len__(self) -> int:
        return len(self.rows)

    def create_index(self, index_def: IndexDef) -> None:
        """Create and populate a user index."""
        if index_def.name in self._index_defs:
            raise SchemaError(f"index {index_def.name!r} already exists")
        self._create_index(index_def)

    def _create_index(self, index_def: IndexDef) -> None:
        for col in index_def.columns:
            if not self.definition.has_column(col):
                raise SchemaError(
                    f"index {index_def.name!r}: no column {col!r} in {self.name!r}"
                )
        cols = tuple(self.definition.column_index(c) for c in index_def.columns)
        # Uniqueness is enforced by _check_unique (SQL semantics: NULLs never
        # collide), so the tree itself is always non-unique.
        tree = BPlusTree(unique=False, name=index_def.name)
        for rowid, row in self.rows.items():
            key = tuple(row[i] for i in cols)
            if index_def.unique and not any(v is None for v in key) and tree.get(key):
                raise IntegrityError(
                    f"cannot create unique index {index_def.name!r}: "
                    f"duplicate key {key!r} in existing data"
                )
            tree.insert(key, rowid)
        self._index_defs[index_def.name] = index_def
        self._index_cols[index_def.name] = cols
        self.indexes[index_def.name] = tree

    def drop_index(self, name: str) -> None:
        if name not in self._index_defs:
            raise SchemaError(f"no index {name!r} on table {self.name!r}")
        if name.startswith("__"):
            raise SchemaError(f"cannot drop implicit constraint index {name!r}")
        del self._index_defs[name]
        del self._index_cols[name]
        del self.indexes[name]

    def index_defs(self) -> list[IndexDef]:
        return list(self._index_defs.values())

    def find_index_on(self, columns: tuple[str, ...]) -> Optional[str]:
        """Name of an index whose leading columns equal *columns*, if any."""
        for name, index_def in self._index_defs.items():
            if index_def.columns[: len(columns)] == columns:
                return name
        return None

    # -- row operations -----------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> tuple[int, tuple]:
        """Insert a row from a column->value dict.

        Returns ``(rowid, stored_row)``.  Autoincrement columns are filled
        when NULL.  Unique violations raise before any index is touched.
        """
        row = self.definition.coerce_row(values)
        auto_col = self.definition.auto_column
        if auto_col is not None:
            auto_idx = self.definition.column_index(auto_col)
            if row[auto_idx] is None:
                row[auto_idx] = self._next_auto
                self._next_auto += 1
            else:
                self._next_auto = max(self._next_auto, int(row[auto_idx]) + 1)
        stored = tuple(row)
        self._check_unique(stored, exclude_rowid=None)
        rowid = self._next_rowid
        self._next_rowid += 1
        self.rows[rowid] = stored
        for name, cols in self._index_cols.items():
            self.indexes[name].insert(tuple(stored[i] for i in cols), rowid)
        return rowid, stored

    def insert_row_with_id(self, rowid: int, row: tuple) -> None:
        """Low-level insert used by rollback and recovery (no coercion)."""
        if rowid in self.rows:
            raise IntegrityError(f"rowid {rowid} already present in {self.name!r}")
        self.rows[rowid] = row
        self._next_rowid = max(self._next_rowid, rowid + 1)
        auto_col = self.definition.auto_column
        if auto_col is not None:
            val = row[self.definition.column_index(auto_col)]
            if isinstance(val, int):
                self._next_auto = max(self._next_auto, val + 1)
        for name, cols in self._index_cols.items():
            self.indexes[name].insert(tuple(row[i] for i in cols), rowid)

    def update(self, rowid: int, changes: dict[str, Any]) -> tuple[tuple, tuple]:
        """Apply *changes* to the row; returns ``(old_row, new_row)``."""
        if rowid not in self.rows:
            raise IntegrityError(f"no row {rowid} in table {self.name!r}")
        old = self.rows[rowid]
        new_list = list(old)
        for col_name, value in changes.items():
            col = self.definition.column(col_name)
            coerced = self.definition.coerce_value(col_name, value)
            if coerced is None and not col.nullable:
                raise IntegrityError(
                    f"column {self.name}.{col_name} is NOT NULL but got NULL"
                )
            new_list[self.definition.column_index(col_name)] = coerced
        new = tuple(new_list)
        if new == old:
            return old, new
        self._check_unique(new, exclude_rowid=rowid)
        for name, cols in self._index_cols.items():
            old_key = tuple(old[i] for i in cols)
            new_key = tuple(new[i] for i in cols)
            if old_key != new_key:
                tree = self.indexes[name]
                tree.delete(old_key, rowid)
                tree.insert(new_key, rowid)
        self.rows[rowid] = new
        return old, new

    def delete(self, rowid: int) -> tuple:
        """Delete by rowid; returns the removed row."""
        if rowid not in self.rows:
            raise IntegrityError(f"no row {rowid} in table {self.name!r}")
        row = self.rows.pop(rowid)
        for name, cols in self._index_cols.items():
            self.indexes[name].delete(tuple(row[i] for i in cols), rowid)
        return row

    def _check_unique(self, row: tuple, exclude_rowid: Optional[int]) -> None:
        for name, index_def in self._index_defs.items():
            if not index_def.unique:
                continue
            cols = self._index_cols[name]
            key = tuple(row[i] for i in cols)
            if any(v is None for v in key):
                continue  # NULLs never collide (SQL semantics)
            hits = self.indexes[name].get(key)
            for hit in hits:
                if hit != exclude_rowid:
                    raise IntegrityError(
                        f"unique constraint {name} on {self.name}{index_def.columns} "
                        f"violated by {key!r}"
                    )

    # -- scans -------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """All (rowid, row) pairs in insertion order."""
        yield from self.rows.items()

    def get_row(self, rowid: int) -> tuple:
        return self.rows[rowid]

    def rows_as_dicts(self) -> Iterator[dict[str, Any]]:
        names = self.definition.column_names
        for row in self.rows.values():
            yield dict(zip(names, row))


class Catalog:
    """The set of tables in one database."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        # Opt-in flag set by Database(cost_stats=True): lets the planner
        # consult live cardinalities (see repro.db.planner.TableStats).
        self.cost_stats = False

    def create_table(self, definition: TableDef) -> Table:
        if definition.name in self.tables:
            raise SchemaError(f"table {definition.name!r} already exists")
        for fk in definition.foreign_keys:
            if fk.ref_table != definition.name and fk.ref_table not in self.tables:
                raise SchemaError(
                    f"foreign key references unknown table {fk.ref_table!r}"
                )
        table = Table(definition)
        self.tables[definition.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SchemaError(f"no table {name!r}")
        for other in self.tables.values():
            if other.name == name:
                continue
            for fk in other.definition.foreign_keys:
                if fk.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: referenced by {other.name!r}"
                    )
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> list[str]:
        return sorted(self.tables)


class ForeignKeyEnforcer:
    """Checks FK constraints across tables.

    Kept separate from :class:`Table` because enforcement needs visibility
    into the whole catalog.  The engine calls :meth:`check_insert` /
    :meth:`check_delete` inside its table locks.
    """

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def check_insert(self, table: Table, row: tuple) -> None:
        for fk in table.definition.foreign_keys:
            values = tuple(
                row[table.definition.column_index(c)] for c in fk.columns
            )
            if any(v is None for v in values):
                continue
            parent = self._catalog.table(fk.ref_table)
            if not self._parent_has(parent, fk.ref_columns, values):
                raise IntegrityError(
                    f"foreign key {table.name}{fk.columns} -> "
                    f"{fk.ref_table}{fk.ref_columns}: no parent row {values!r}"
                )

    def check_delete(self, table: Table, row: tuple) -> None:
        for other in self._catalog.tables.values():
            for fk in other.definition.foreign_keys:
                if fk.ref_table != table.name:
                    continue
                parent_values = tuple(
                    row[table.definition.column_index(c)] for c in fk.ref_columns
                )
                if any(v is None for v in parent_values):
                    continue
                if self._child_references(other, fk.columns, parent_values, table, row):
                    raise IntegrityError(
                        f"cannot delete from {table.name}: row {parent_values!r} "
                        f"referenced by {other.name}{fk.columns}"
                    )

    @staticmethod
    def _parent_has(parent: Table, columns: tuple[str, ...], values: tuple) -> bool:
        index_name = parent.find_index_on(columns)
        if index_name is not None and len(parent._index_cols[index_name]) == len(columns):
            return bool(parent.indexes[index_name].get(values))
        idxs = tuple(parent.definition.column_index(c) for c in columns)
        for row in parent.rows.values():
            if tuple(row[i] for i in idxs) == values:
                return True
        return False

    @staticmethod
    def _child_references(
        child: Table,
        columns: tuple[str, ...],
        values: tuple,
        parent: Table,
        parent_row: tuple,
    ) -> bool:
        index_name = child.find_index_on(columns)
        if index_name is not None and len(child._index_cols[index_name]) == len(columns):
            hits = child.indexes[index_name].get(values)
            if child is parent:
                # Self-referencing FK: ignore the row being deleted.
                parent_ids = [rid for rid, r in child.rows.items() if r == parent_row]
                hits = [h for h in hits if h not in parent_ids]
            return bool(hits)
        idxs = tuple(child.definition.column_index(c) for c in columns)
        for rid, row in child.rows.items():
            if child is parent and row == parent_row:
                continue
            if tuple(row[i] for i in idxs) == values:
                return True
        return False
