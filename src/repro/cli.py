"""Command-line interface: run an MCS server and talk to it.

Server::

    mcs serve [--host H] [--port P] [--data-dir DIR] [--granularity G]
              [--shards N]

Client (all commands take ``--host``/``--port``; default localhost:8686)::

    mcs ping
    mcs stats
    mcs define-attribute NAME TYPE [--description TEXT]
    mcs add-file NAME [--collection C] [--data-type T] [--attr k=v ...]
    mcs get-file NAME
    mcs query [--attr k=v ...] [--field k=v ...]
    mcs query "files where run = 7 and site like \\"ligo-%\\" limit 10"
    mcs analyze-attributes
    mcs create-collection NAME [--parent P]
    mcs list-collection NAME
    mcs annotate NAME TEXT
    mcs annotations NAME

Observability (scrape the server's collection endpoints over HTTP)::

    mcs trace REQUEST_ID [--endpoint H:P ...] [--format waterfall|tree|chrome|jsonl]
    mcs profile [--seconds S] [--interval S] [--out FILE]
    mcs slo [--json]

Attribute values given as ``k=v`` are parsed against the attribute's
declared type (ints, floats, dates as YYYY-MM-DD, etc.).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import sys
from typing import Any, Optional, Sequence

DEFAULT_PORT = 8686


def _parse_value(text: str) -> Any:
    """Best-effort typed parse of a command-line attribute value."""
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            pass
    try:
        return _dt.date.fromisoformat(text)
    except ValueError:
        pass
    try:
        return _dt.datetime.fromisoformat(text)
    except ValueError:
        pass
    return text


def _parse_pairs(pairs: Optional[Sequence[str]]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"expected key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        out[key] = _parse_value(value)
    return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (_dt.date, _dt.time, _dt.datetime)):
        return value.isoformat()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    return value


def _emit(value: Any) -> None:
    print(json.dumps(_jsonable(value), indent=2, sort_keys=True))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mcs", description="Metadata Catalog Service command line"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--caller", default="/O=Grid/CN=cli")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry transient transport failures up to N attempts "
             "(reads always; writes via idempotency tokens)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline, propagated to the server",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run an MCS SOAP server")
    serve.add_argument("--data-dir", default=None,
                       help="durable database directory (default: in-memory)")
    serve.add_argument("--granularity", default="none",
                       choices=("none", "service", "object"))
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the catalog across N engines behind one service "
             "(with --data-dir: one shard-NNN subdirectory per engine)",
    )
    serve.add_argument(
        "--async", dest="async_server", action="store_true",
        help="serve on the asyncio front end (event-loop sockets, "
             "pipelined keep-alive, same dispatch pipeline)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="dispatch worker threads (both front ends; default 4)",
    )

    lint = sub.add_parser(
        "lint", help="run the project-specific concurrency/protocol linter"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default: src/repro)")
    lint.add_argument("--select", action="append", metavar="RULE",
                      help="run only these rule ids (repeatable)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", dest="lint_format", help="report format")
    lint.add_argument("--explain", action="store_true",
                      help="list every rule and its invariant, then exit")
    lint.add_argument("--whole-program", action="store_true",
                      help="also run the interprocedural rules (MCS012-MCS016)"
                           " over the project call graph")
    lint.add_argument("--baseline", metavar="FILE",
                      help="suppress findings recorded (and justified) in"
                           " this baseline file")
    lint.add_argument("--write-baseline", metavar="FILE",
                      help="write current findings to FILE as a baseline"
                           " and exit")

    sub.add_parser("ping", help="liveness check")
    stats = sub.add_parser(
        "stats", help="catalog object counts + server metrics snapshot"
    )
    stats.add_argument("--json", action="store_true",
                       help="raw JSON instead of the pretty summary")
    sub.add_parser("list-attributes", help="defined user attributes")

    define = sub.add_parser("define-attribute", help="define a user attribute")
    define.add_argument("name")
    define.add_argument("value_type",
                        choices=("string", "int", "float", "date", "time", "datetime"))
    define.add_argument("--description", default=None)

    add = sub.add_parser("add-file", help="create a logical file")
    add.add_argument("name")
    add.add_argument("--collection", default=None)
    add.add_argument("--data-type", default=None)
    add.add_argument("--version", type=int, default=1)
    add.add_argument("--attr", action="append", metavar="K=V")

    get = sub.add_parser("get-file", help="static + user attributes of a file")
    get.add_argument("name")
    get.add_argument("--version", type=int, default=None)

    delete = sub.add_parser("delete-file", help="delete a logical file")
    delete.add_argument("name")
    delete.add_argument("--version", type=int, default=None)

    query = sub.add_parser("query", help="attribute-based discovery")
    query.add_argument(
        "mql", nargs="?", default=None, metavar="MQL",
        help="an MQL statement (files/collections/views where ..., with "
             "union/intersect/minus, order by, limit); when given, the "
             "--attr/--field flags are rejected",
    )
    query.add_argument("--attr", action="append", metavar="K=V",
                       help="user-attribute equality condition")
    query.add_argument("--field", action="append", metavar="K=V",
                       help="predefined-field equality condition")
    query.add_argument("--limit", type=int, default=None)
    query.add_argument("--offset", type=int, default=None)
    query.add_argument("--order-by", default=None, metavar="FIELD",
                       help="order results by a predefined field")
    query.add_argument("--desc", action="store_true",
                       help="descending order (with --order-by)")
    query.add_argument("--explain", action="store_true",
                       help="show the physical query plan instead of results")

    sub.add_parser(
        "analyze-attributes",
        help="recompute the MQL planner's attribute statistics exactly",
    )

    coll = sub.add_parser("create-collection", help="create a collection")
    coll.add_argument("name")
    coll.add_argument("--parent", default=None)
    coll.add_argument("--description", default=None)

    lsc = sub.add_parser("list-collection", help="files in a collection")
    lsc.add_argument("name")

    ann = sub.add_parser("annotate", help="attach an annotation to a file")
    ann.add_argument("name")
    ann.add_argument("text")

    anns = sub.add_parser("annotations", help="annotations on a file")
    anns.add_argument("name")

    trace = sub.add_parser(
        "trace", help="assemble and render a cross-process trace"
    )
    trace.add_argument("request_id")
    trace.add_argument(
        "--endpoint", action="append", metavar="HOST:PORT",
        help="additional /spans endpoints to scrape (repeatable); "
             "--host/--port is always scraped",
    )
    trace.add_argument(
        "--format", choices=("waterfall", "tree", "chrome", "jsonl"),
        default="waterfall", dest="trace_format",
    )
    trace.add_argument("--out", default=None, metavar="FILE",
                       help="write the rendering to FILE instead of stdout")

    profile = sub.add_parser(
        "profile", help="sample the server's stacks (folded flamegraph lines)"
    )
    profile.add_argument("--seconds", type=float, default=1.0)
    profile.add_argument("--interval", type=float, default=0.005)
    profile.add_argument("--out", default=None, metavar="FILE")

    slo = sub.add_parser("slo", help="per-operation SLO burn-rate status")
    slo.add_argument("--json", action="store_true",
                     help="raw JSON snapshot instead of the table")

    return parser


def _http_get(host: str, port: int, path: str, timeout: float = 30.0) -> bytes:
    import urllib.request

    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=timeout
    ) as response:
        return response.read()


def _scrape_spans(
    endpoints: Sequence[tuple[str, int]], query: str
) -> list[dict[str, Any]]:
    """Merge `/spans` scrapes from every endpoint, de-duplicated by id."""
    spans: list[dict[str, Any]] = []
    seen: set[str] = set()
    for host, port in endpoints:
        try:
            batch = json.loads(_http_get(host, port, f"/spans?{query}"))
        except OSError as exc:
            print(f"warning: {host}:{port} unreachable: {exc}", file=sys.stderr)
            continue
        for span in batch:
            if span["span_id"] not in seen:
                seen.add(span["span_id"])
                spans.append(span)
    return spans


def _trace_cmd(args: argparse.Namespace) -> int:
    from repro.obs import trace as trace_mod
    from urllib.parse import urlencode

    endpoints: list[tuple[str, int]] = [(args.host, args.port)]
    for spec in args.endpoint or ():
        host, _, port = spec.rpartition(":")
        endpoints.append((host or "127.0.0.1", int(port)))

    spans = _scrape_spans(
        endpoints, urlencode({"request_id": args.request_id})
    )
    # A second pass by trace id picks up spans recorded under a different
    # request id (e.g. a server-side subtree that minted its own) and any
    # process that only saw the trace via the TraceParent header.
    trace_ids = {s["trace_id"] for s in spans if s.get("trace_id")}
    for trace_id in sorted(trace_ids):
        for span in _scrape_spans(endpoints, urlencode({"trace_id": trace_id})):
            if span["span_id"] not in {s["span_id"] for s in spans}:
                spans.append(span)
    if not spans:
        print(f"no spans found for request {args.request_id!r}", file=sys.stderr)
        return 1

    if args.trace_format == "waterfall":
        rendering = trace_mod.format_waterfall(spans, title=args.request_id)
    elif args.trace_format == "tree":
        rendering = trace_mod.format_trace(args.request_id, spans)
    elif args.trace_format == "chrome":
        rendering = json.dumps(trace_mod.to_chrome_trace(spans), indent=2)
    else:
        rendering = trace_mod.to_jsonl(spans)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendering + "\n")
        print(f"wrote {len(spans)} spans to {args.out}")
    else:
        print(rendering)
    return 0


def _profile_cmd(args: argparse.Namespace) -> int:
    from urllib.parse import urlencode

    query = urlencode({"seconds": args.seconds, "interval": args.interval})
    report = _http_get(
        args.host, args.port, f"/profile?{query}",
        timeout=max(args.seconds * 2.0, 5.0) + 30.0,
    ).decode("utf-8")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote profile to {args.out}")
    else:
        print(report, end="")
    return 0


def _slo_cmd(args: argparse.Namespace) -> int:
    snapshot = json.loads(_http_get(args.host, args.port, "/slo"))
    if args.json:
        _emit(snapshot)
    else:
        from repro.obs.slo import format_slo

        print(format_slo(snapshot))
    return 0


def _serve(args: argparse.Namespace) -> int:
    from repro.core import MCSService, MetadataCatalog
    from repro.db import Database
    from repro.obs import profiler as _profiler
    from repro.soap import SoapServer

    _profiler.run_from_env()
    db = None
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit("--shards must be at least 1")
        from repro.shard import build_sharded_catalog

        catalog = build_sharded_catalog(
            args.shards,
            directory=args.data_dir,
            durable_sync=args.data_dir is not None,
        )
    else:
        db = Database(directory=args.data_dir) if args.data_dir else None
        catalog = MetadataCatalog(db) if db is not None else None
    service = MCSService(catalog, granularity=args.granularity)
    if args.async_server:
        from repro.aserve import AsyncSoapServer

        server_cls = AsyncSoapServer
    else:
        server_cls = SoapServer
    server = server_cls(
        service.handle,
        host=args.host,
        port=args.port,
        description=service.description(),
        fault_mapper=service.fault_mapper,
        max_workers=args.workers,
    )
    server.start()
    flavor = "asyncio" if args.async_server else "threaded"
    print(f"MCS listening on http://{server.host}:{server.port}/soap "
          f"({flavor} front end, WSDL at /wsdl); Ctrl-C to stop", flush=True)
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if args.shards is not None:
            catalog.checkpoint()
            catalog.close()
        elif db is not None:
            db.checkpoint()
            db.close()
    return 0


def _lint(args: argparse.Namespace) -> int:
    from repro.analysis import main as lint_main

    forwarded: list[str] = list(args.paths)
    for rule in args.select or ():
        forwarded += ["--select", rule]
    forwarded += ["--format", args.lint_format]
    if args.explain:
        forwarded.append("--explain")
    if args.whole_program:
        forwarded.append("--whole-program")
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.write_baseline:
        forwarded += ["--write-baseline", args.write_baseline]
    return lint_main(forwarded)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "lint":
        return _lint(args)
    if args.command in ("trace", "profile", "slo"):
        handler = {
            "trace": _trace_cmd, "profile": _profile_cmd, "slo": _slo_cmd
        }[args.command]
        try:
            return handler(args)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    from repro.core import ClientConfig, MCSClient, ObjectQuery
    from repro.core.errors import MCSError
    from repro.soap.errors import TransportError

    retry_policy = None
    if args.retries is not None:
        from repro.resilience import RetryPolicy

        retry_policy = RetryPolicy(max_attempts=max(args.retries, 1))
    client = MCSClient.connect(
        args.host,
        args.port,
        ClientConfig(
            caller=args.caller,
            retry_policy=retry_policy,
            deadline_s=args.timeout,
        ),
    )
    try:
        if args.command == "ping":
            _emit(client.ping())
        elif args.command == "stats":
            stats = client.stats()
            if args.json:
                _emit(stats)
            else:
                from repro.obs.metrics import format_snapshot

                metrics = stats.pop("metrics", {})
                cache = stats.pop("cache", {})
                print("catalog objects:")
                for key in sorted(stats):
                    print(f"  {key:<20} {stats[key]}")
                if cache:
                    print()
                    state = "on" if cache.get("enabled") else "off"
                    print(f"read cache ({state}):")
                    for name in sorted(k for k in cache if k != "enabled"):
                        c = cache[name]
                        print(f"  {name:<10} hits={c['hits']} misses={c['misses']} "
                              f"bypasses={c['bypasses']} entries={c['entries']} "
                              f"evictions={c['evictions']} "
                              f"hit_ratio={c['hit_ratio']:.3f}")
                if metrics:
                    print()
                    print(format_snapshot(metrics))
        elif args.command == "list-attributes":
            _emit([d.to_dict() for d in client.list_attribute_defs()])
        elif args.command == "define-attribute":
            _emit(client.define_attribute(args.name, args.value_type,
                                          description=args.description))
        elif args.command == "add-file":
            attributes = _parse_pairs(args.attr) or None
            _emit(client.create_logical_file(
                args.name,
                version=args.version,
                data_type=args.data_type,
                collection=args.collection,
                attributes=attributes,
            ))
        elif args.command == "get-file":
            record = client.get_logical_file(args.name, version=args.version)
            record["user_attributes"] = client.get_attributes(
                "file", args.name, version=args.version
            )
            _emit(record)
        elif args.command == "delete-file":
            _emit(client.delete_logical_file(args.name, version=args.version))
        elif args.command == "query" and args.mql is not None:
            if args.attr or args.field or args.order_by:
                raise SystemExit(
                    "an MQL statement already carries its conditions and "
                    "modifiers; drop --attr/--field/--order-by"
                )
            if args.explain:
                for line in client.explain_mql(args.mql):
                    print(line)
            else:
                _emit(client.query_mql(args.mql))
        elif args.command == "analyze-attributes":
            _emit(client.analyze_attributes())
        elif args.command == "query":
            query = ObjectQuery().limit(args.limit).offset(args.offset)
            if args.order_by:
                query.order_by(args.order_by, descending=args.desc)
            for key, value in _parse_pairs(args.attr).items():
                query.where(key, "=", value)
            for key, value in _parse_pairs(args.field).items():
                query.where_field(key, "=", value)
            if args.explain:
                _emit(client.explain_query(query))
            else:
                _emit(client.query(query))
        elif args.command == "create-collection":
            _emit(client.create_collection(args.name, parent=args.parent,
                                           description=args.description))
        elif args.command == "list-collection":
            _emit(client.list_collection(args.name))
        elif args.command == "annotate":
            _emit(client.annotate("file", args.name, args.text))
        elif args.command == "annotations":
            _emit(client.get_annotations("file", args.name))
        else:  # pragma: no cover - argparse enforces choices
            raise SystemExit(f"unknown command {args.command!r}")
    except (MCSError, TransportError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        code = main()
    except BrokenPipeError:
        # Output piped into e.g. `head` that exited early; conventional
        # SIGPIPE exit, with stdout redirected so the interpreter's
        # shutdown flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141
    sys.exit(code)
