"""Client behaviour across transports (direct, loopback codec, HTTP)."""

import datetime as dt

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.core.errors import DuplicateObjectError, ObjectNotFoundError
from repro.soap import SoapServer
from repro.soap.transport import LoopbackCodecTransport


@pytest.fixture(scope="module")
def http_setup():
    service = MCSService()
    server = SoapServer(service.handle, fault_mapper=service.fault_mapper).start()
    yield service, server
    server.stop()


def make_clients(http_setup):
    service, server = http_setup
    return {
        "direct": MCSClient.in_process(service, caller="t"),
        "codec": MCSClient(LoopbackCodecTransport(service.handle), caller="t"),
        "http": MCSClient.connect(*server.endpoint, caller="t"),
    }


class TestTransportParity:
    """The same operations must behave identically over every transport."""

    def test_full_lifecycle_per_transport(self, http_setup):
        for label, client in make_clients(http_setup).items():
            fname = f"file-{label}"
            aname = f"attr_{label}"
            client.define_attribute(aname, "int")
            client.create_logical_file(fname, attributes={aname: 7})
            got = client.get_logical_file(fname)
            assert got["name"] == fname
            assert client.get_attributes("file", fname) == {aname: 7}
            assert client.query_files_by_attributes({aname: 7}) == [fname]
            assert client.query_files_by_attributes({aname: 8}) == []
            client.delete_logical_file(fname)
            with pytest.raises(ObjectNotFoundError):
                client.get_logical_file(fname)

    def test_datetime_values_cross_http(self, http_setup):
        service, server = http_setup
        client = MCSClient.connect(*server.endpoint, caller="t")
        client.define_attribute("when", "datetime")
        stamp = dt.datetime(2003, 11, 15, 12, 0, 0)
        client.create_logical_file("dated", attributes={"when": stamp})
        assert client.get_attributes("file", "dated")["when"] == stamp
        created = client.get_logical_file("dated")["created"]
        assert isinstance(created, dt.datetime)
        client.close()

    def test_typed_errors_cross_http(self, http_setup):
        service, server = http_setup
        client = MCSClient.connect(*server.endpoint, caller="t")
        client.create_logical_file("dup-test")
        with pytest.raises(DuplicateObjectError):
            client.create_logical_file("dup-test")
        client.close()

    def test_query_object_cross_http(self, http_setup):
        service, server = http_setup
        client = MCSClient.connect(*server.endpoint, caller="t")
        client.define_attribute("band", "float")
        client.create_logical_file("q1", attributes={"band": 10.0})
        client.create_logical_file("q2", attributes={"band": 99.0})
        q = ObjectQuery().where("band", "between", (5.0, 20.0))
        assert client.query(q) == ["q1"]
        client.close()

    def test_ping(self, http_setup):
        for client in make_clients(http_setup).values():
            assert client.ping() == "pong"

    def test_stats_shape(self, http_setup):
        service, server = http_setup
        client = MCSClient.in_process(service, caller="t")
        stats = client.stats()
        assert set(stats) >= {"files", "collections", "views", "attributes"}
