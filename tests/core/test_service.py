"""Tests for MCSService policy enforcement (auth, ACLs, audit, CAS)."""

import pytest

from repro.core import MCSClient, MCSService, MetadataCatalog, ObjectType
from repro.core.errors import (
    NotAuthenticatedError,
    ObjectNotFoundError,
    PermissionDeniedError,
)
from repro.core.service import (
    assertion_from_dict,
    assertion_to_dict,
    canonical_payload,
    certificate_from_dict,
    certificate_to_dict,
    token_from_dict,
    token_to_dict,
)
from repro.security import (
    CertificateAuthority,
    CommunityAuthorizationService,
    DistinguishedName,
    GSIContext,
    Permission,
)
from repro.security.gsi import create_proxy
from repro.soap.envelope import SoapFault

ALICE = "/O=Grid/OU=ISI/CN=Alice"
BOB = "/O=Grid/OU=ISI/CN=Bob"


class TestOpenMode:
    def test_caller_recorded_as_creator(self):
        service = MCSService()
        client = MCSClient.in_process(service, caller=ALICE)
        client.create_logical_file("f1")
        assert client.get_logical_file("f1")["creator"] == ALICE

    def test_anonymous_default(self):
        service = MCSService()
        client = MCSClient.in_process(service)
        client.create_logical_file("f1")
        assert client.get_logical_file("f1")["creator"] == "anonymous"

    def test_unknown_method_faults(self):
        service = MCSService()
        with pytest.raises(SoapFault):
            service.handle("no_such_op", {})

    def test_typed_errors_cross_dispatch(self):
        service = MCSService()
        client = MCSClient.in_process(service)
        with pytest.raises(ObjectNotFoundError):
            client.get_logical_file("missing")


class TestServiceGranularity:
    def make(self):
        service = MCSService(granularity="service")
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, ALICE, Permission.all()
        )
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, BOB, Permission.READ
        )
        return service

    def test_writer_allowed(self):
        client = MCSClient.in_process(self.make(), caller=ALICE)
        client.create_logical_file("f1")

    def test_reader_cannot_write(self):
        service = self.make()
        MCSClient.in_process(service, caller=ALICE).create_logical_file("f1")
        bob = MCSClient.in_process(service, caller=BOB)
        assert bob.get_logical_file("f1")["name"] == "f1"
        with pytest.raises(PermissionDeniedError):
            bob.create_logical_file("f2")

    def test_stranger_cannot_read(self):
        service = self.make()
        MCSClient.in_process(service, caller=ALICE).create_logical_file("f1")
        stranger = MCSClient.in_process(service, caller="/O=G/CN=Eve")
        with pytest.raises(PermissionDeniedError):
            stranger.get_logical_file("f1")


class TestObjectGranularity:
    def make(self):
        service = MCSService(granularity="object")
        cat = service.catalog
        cat.set_permissions(ObjectType.SERVICE, None, ALICE, Permission.all())
        return service, cat

    def test_per_file_grant(self):
        service, cat = self.make()
        alice = MCSClient.in_process(service, caller=ALICE)
        alice.create_logical_file("f1")
        bob = MCSClient.in_process(service, caller=BOB)
        with pytest.raises(PermissionDeniedError):
            bob.get_logical_file("f1")
        cat.set_permissions(ObjectType.FILE, "f1", BOB, Permission.READ)
        assert bob.get_logical_file("f1")["name"] == "f1"

    def test_collection_permissions_union_up_the_chain(self):
        service, cat = self.make()
        alice = MCSClient.in_process(service, caller=ALICE)
        alice.create_collection("top")
        alice.create_collection("sub", parent="top")
        alice.create_logical_file("f1", collection="sub")
        bob = MCSClient.in_process(service, caller=BOB)
        with pytest.raises(PermissionDeniedError):
            bob.get_logical_file("f1")
        # Grant on the *grandparent* collection: union rule must apply.
        cat.set_permissions(ObjectType.COLLECTION, "top", BOB, Permission.READ)
        assert bob.get_logical_file("f1")["name"] == "f1"

    def test_write_needs_write_not_read(self):
        service, cat = self.make()
        alice = MCSClient.in_process(service, caller=ALICE)
        alice.create_logical_file("f1")
        cat.set_permissions(ObjectType.FILE, "f1", BOB, Permission.READ)
        bob = MCSClient.in_process(service, caller=BOB)
        with pytest.raises(PermissionDeniedError):
            bob.modify_logical_file("f1", data_type="xml")

    def test_annotate_permission(self):
        service, cat = self.make()
        alice = MCSClient.in_process(service, caller=ALICE)
        alice.create_logical_file("f1")
        bob = MCSClient.in_process(service, caller=BOB)
        with pytest.raises(PermissionDeniedError):
            bob.annotate("file", "f1", "hello")
        cat.set_permissions(ObjectType.FILE, "f1", BOB, Permission.ANNOTATE)
        bob.annotate("file", "f1", "hello")


class TestGSIAuthentication:
    @pytest.fixture(scope="class")
    def grid(self):
        ca = CertificateAuthority(key_bits=256)
        alice_cred = ca.issue_credential(
            DistinguishedName.parse(ALICE), key_bits=256
        )
        proxy = create_proxy(alice_cred, key_bits=256)
        server_cred = ca.issue_credential(
            DistinguishedName.make("MCS Server"), key_bits=256
        )
        server_ctx = GSIContext(server_cred, trust_anchors=[ca.certificate])
        return ca, proxy, server_ctx

    def test_authenticated_identity_used(self, grid):
        ca, proxy, server_ctx = grid
        service = MCSService(gsi_context=server_ctx, granularity="service")
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, ALICE, Permission.all()
        )
        client = MCSClient.in_process(service)
        client._gsi = GSIContext(proxy)
        client.create_logical_file("f1")
        # Creator is the *authenticated* identity (proxy stripped), not a
        # caller-supplied string.
        assert client.get_logical_file("f1")["creator"] == ALICE

    def test_unauthenticated_rejected_when_required(self, grid):
        ca, proxy, server_ctx = grid
        service = MCSService(gsi_context=server_ctx, granularity="service")
        client = MCSClient.in_process(service, caller=ALICE)  # no token
        with pytest.raises(NotAuthenticatedError):
            client.create_logical_file("f1")

    def test_forged_caller_ignored(self, grid):
        ca, proxy, server_ctx = grid
        service = MCSService(gsi_context=server_ctx, granularity="service")
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, ALICE, Permission.all()
        )
        client = MCSClient.in_process(service, caller="/O=G/CN=Forged")
        client._gsi = GSIContext(proxy)
        client.create_logical_file("f1")
        assert client.get_logical_file("f1")["creator"] == ALICE


class TestCASIntegration:
    def test_assertion_grants_access(self):
        ca = CertificateAuthority(key_bits=256)
        cas = CommunityAuthorizationService("ligo", ca, key_bits=256)
        alice_dn = DistinguishedName.parse(ALICE)
        cas.add_member(alice_dn, "scientists")
        cas.grant("scientists", "ligo-*", Permission.READ, Permission.WRITE)
        service = MCSService(granularity="object", trusted_cas=(cas.credential,))
        # Bootstrap: an admin creates the file.
        admin = MCSClient.in_process(service, caller="/O=G/CN=Admin")
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, "/O=G/CN=Admin", Permission.all()
        )
        admin.create_logical_file("ligo-f1")
        # Alice has no ACL entry but presents a CAS assertion.
        assertion = cas.issue_assertion(alice_dn)
        alice = MCSClient.in_process(service, caller=ALICE)
        with pytest.raises(PermissionDeniedError):
            alice.get_logical_file("ligo-f1")
        alice._cas = assertion_to_dict(assertion)
        assert alice.get_logical_file("ligo-f1")["name"] == "ligo-f1"

    def test_tampered_assertion_rejected(self):
        ca = CertificateAuthority(key_bits=256)
        cas = CommunityAuthorizationService("ligo", ca, key_bits=256)
        alice_dn = DistinguishedName.parse(ALICE)
        cas.add_member(alice_dn)
        cas.grant("members", "*", Permission.READ)
        assertion = cas.issue_assertion(alice_dn)
        data = assertion_to_dict(assertion)
        data["rules"][0]["pattern"] = "**"  # tamper
        service = MCSService(granularity="object", trusted_cas=(cas.credential,))
        client = MCSClient.in_process(service, caller=ALICE)
        client._cas = data
        with pytest.raises((PermissionDeniedError, SoapFault)):
            client.ping()


class TestAuditPolicy:
    def test_audit_rows_written_when_enabled(self):
        service = MCSService()
        client = MCSClient.in_process(service, caller=ALICE)
        client.create_logical_file("f1", audit_enabled=True)
        client.get_logical_file("f1")
        client.modify_logical_file("f1", data_type="xml")
        log = service.catalog.audit_log(ObjectType.FILE, "f1")
        assert [r.action for r in log] == ["create", "read", "modify"]
        assert all(r.actor == ALICE for r in log)

    def test_no_audit_by_default(self):
        service = MCSService()
        client = MCSClient.in_process(service, caller=ALICE)
        client.create_logical_file("f1")
        client.get_logical_file("f1")
        assert service.catalog.audit_log(ObjectType.FILE, "f1") == []


class TestSerialization:
    def test_certificate_round_trip(self):
        ca = CertificateAuthority(key_bits=256)
        cert = ca.certificate
        restored = certificate_from_dict(certificate_to_dict(cert))
        assert restored == cert

    def test_token_round_trip(self):
        ca = CertificateAuthority(key_bits=256)
        cred = ca.issue_credential(DistinguishedName.make("X"), key_bits=256)
        ctx = GSIContext(cred)
        token = ctx.sign_request(b"payload")
        restored = token_from_dict(token_to_dict(token))
        assert restored.signature == token.signature
        assert restored.chain == token.chain

    def test_assertion_round_trip(self):
        ca = CertificateAuthority(key_bits=256)
        cas = CommunityAuthorizationService("c", ca, key_bits=256)
        dn = DistinguishedName.make("A")
        cas.add_member(dn)
        cas.grant("members", "x/*", Permission.READ)
        assertion = cas.issue_assertion(dn)
        restored = assertion_from_dict(assertion_to_dict(assertion))
        assert restored.tbs_bytes() == assertion.tbs_bytes()
        assert restored.signature == assertion.signature

    def test_canonical_payload_excludes_credentials(self):
        a = canonical_payload("m", {"x": 1, "auth": {"t": 1}, "cas": {"c": 2}})
        b = canonical_payload("m", {"x": 1})
        assert a == b

    def test_canonical_payload_order_independent(self):
        assert canonical_payload("m", {"a": 1, "b": 2}) == canonical_payload(
            "m", {"b": 2, "a": 1}
        )
