"""Stateful property test: bulk operations vs the same single-op sequence.

Two identical catalogs run side by side.  One receives bulk operations
(`bulk_create_files` / `bulk_set_attributes`), the other the equivalent
sequence of single operations; after every step the two must be
observationally indistinguishable (file counts, attribute queries,
per-file attributes).

Mid-batch fault semantics are exercised deliberately: batches are salted
with duplicate names and unknown attributes so that

* ``atomic=True`` failures leave the bulk catalog byte-identical to a
  catalog that applied nothing, and
* ``atomic=False`` failures skip exactly the failing items while the
  survivors match single-op application.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import (
    MetadataCatalog,
    ObjectType,
)

STR_VALUES = ("x", "y", "z")
INT_VALUES = (1, 2, 3)


def _make_catalog() -> MetadataCatalog:
    catalog = MetadataCatalog()
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    return catalog


class BulkEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.bulk_cat = _make_catalog()
        self.single_cat = _make_catalog()
        self.names: list[str] = []
        self._counter = 0

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"file-{self._counter:04d}"

    # -- rules ----------------------------------------------------------------

    @rule(
        n=st.integers(min_value=1, max_value=6),
        poison=st.booleans(),
        atomic=st.booleans(),
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
    )
    def bulk_create(self, n, poison, atomic, s, i):
        entries = [
            {
                "name": self._fresh_name(),
                "attributes": {"a_str": s, "a_int": i},
            }
            for _ in range(n)
        ]
        if poison and self.names:
            # A mid-batch duplicate: fails under both bulk and single.
            entries.insert(
                len(entries) // 2,
                {"name": self.names[0], "attributes": {"a_str": s}},
            )
        bulk_error = None
        try:
            outcomes = self.bulk_cat.bulk_create_files(entries, atomic=atomic)
        except Exception as exc:  # noqa: BLE001 - equivalence oracle below
            bulk_error = exc
            outcomes = None

        if atomic:
            if bulk_error is not None:
                # All-or-nothing: the single-op catalog applies nothing,
                # and at least one entry must fail there too.
                failed = 0
                probe = _make_catalog()
                for entry in entries:
                    try:
                        probe.create_file(
                            entry["name"], attributes=entry.get("attributes")
                        )
                    except Exception:  # noqa: BLE001
                        failed += 1
                # In-batch duplicates fail in the probe too; pre-existing
                # duplicates only fail against real state — either way the
                # bulk failure must be explainable by some failing item.
                assert poison or failed, "atomic bulk failed but no item can fail"
                return
            for entry in entries:
                self.single_cat.create_file(
                    entry["name"], attributes=entry.get("attributes")
                )
                self.names.append(entry["name"])
            return

        # Non-atomic: item outcomes must match single-op application.
        assert bulk_error is None, f"non-atomic bulk raised {bulk_error!r}"
        assert outcomes is not None and len(outcomes) == len(entries)
        for (ok, _value), entry in zip(outcomes, entries):
            single_ok = True
            try:
                self.single_cat.create_file(
                    entry["name"], attributes=entry.get("attributes")
                )
            except Exception:  # noqa: BLE001
                single_ok = False
            assert ok == single_ok, (
                f"bulk item ok={ok} but single-op ok={single_ok} "
                f"for {entry['name']!r}"
            )
            if ok:
                self.names.append(entry["name"])

    @rule(
        n=st.integers(min_value=1, max_value=4),
        poison=st.booleans(),
        atomic=st.booleans(),
        attr=st.sampled_from(("a_str", "a_int")),
    )
    def bulk_set_attributes(self, n, poison, atomic, attr):
        if not self.names:
            return
        targets = [self.names[k % len(self.names)] for k in range(n)]
        values = STR_VALUES if attr == "a_str" else INT_VALUES
        items = [
            {"name": name, "attributes": {attr: values[k % len(values)]}}
            for k, name in enumerate(targets)
        ]
        if poison:
            items.insert(
                len(items) // 2,
                {"name": "no-such-file", "attributes": {attr: values[0]}},
            )
        bulk_error = None
        try:
            outcomes = self.bulk_cat.bulk_set_attributes(items, atomic=atomic)
        except Exception as exc:  # noqa: BLE001
            bulk_error = exc
            outcomes = None

        if atomic:
            if bulk_error is not None:
                assert poison, "atomic bulk_set_attributes failed unpoisoned"
                return  # nothing applied on either side
            for item in items:
                self.single_cat.set_attributes(
                    ObjectType.FILE, item["name"], item["attributes"]
                )
            return

        assert bulk_error is None
        assert outcomes is not None and len(outcomes) == len(items)
        for (ok, _value), item in zip(outcomes, items):
            single_ok = True
            try:
                self.single_cat.set_attributes(
                    ObjectType.FILE, item["name"], item["attributes"]
                )
            except Exception:  # noqa: BLE001
                single_ok = False
            assert ok == single_ok

    @rule()
    def delete_one(self, ):
        if not self.names:
            return
        name = self.names.pop(0)
        self.bulk_cat.delete_file(name)
        self.single_cat.delete_file(name)

    @rule(s=st.sampled_from(STR_VALUES))
    def bulk_query_matches_single(self, s):
        from repro.core.query import AttributeCondition, ObjectQuery

        query = ObjectQuery(
            object_type=ObjectType.FILE,
            conditions=[AttributeCondition("a_str", "=", s)],
        )
        outcomes = self.bulk_cat.bulk_query([query])
        assert len(outcomes) == 1 and outcomes[0][0]
        assert sorted(outcomes[0][1]) == sorted(self.bulk_cat.query(query))

    # -- invariants ------------------------------------------------------------

    @invariant()
    def same_file_count(self):
        assert (
            self.bulk_cat.stats()["files"] == self.single_cat.stats()["files"]
        )

    @invariant()
    def same_query_results(self):
        for s in STR_VALUES:
            got = sorted(self.bulk_cat.query_files_by_attributes({"a_str": s}))
            want = sorted(
                self.single_cat.query_files_by_attributes({"a_str": s})
            )
            assert got == want, f"a_str={s}: bulk {got} != single {want}"

    @invariant()
    def same_per_file_attributes(self):
        for name in self.names:
            assert self.bulk_cat.get_attributes(
                ObjectType.FILE, name
            ) == self.single_cat.get_attributes(ObjectType.FILE, name)


TestBulkEquivalence = BulkEquivalenceMachine.TestCase
TestBulkEquivalence.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
