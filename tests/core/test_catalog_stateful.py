"""Stateful property test: MetadataCatalog vs an in-memory model.

Hypothesis drives random catalog operations (files, collections,
attributes, deletion) and cross-checks every query against a trivially
correct Python model.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import (
    DuplicateObjectError,
    MetadataCatalog,
    ObjectNotFoundError,
    ObjectType,
)

ATTRS = ("a_str", "a_int")
VALUES = {"a_str": ("x", "y", "z"), "a_int": (1, 2, 3)}


class CatalogMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.catalog = MetadataCatalog()
        self.catalog.define_attribute("a_str", "string")
        self.catalog.define_attribute("a_int", "int")
        self.model: dict[str, dict] = {}  # name -> {"attrs": {...}, "coll": str|None}
        self.collections: set[str] = set()
        self._counter = 0

    files = Bundle("files")

    # -- rules ----------------------------------------------------------------

    @rule(target=files,
          s=st.sampled_from(VALUES["a_str"]),
          i=st.sampled_from(VALUES["a_int"]))
    def create_file(self, s, i):
        self._counter += 1
        name = f"file-{self._counter:04d}"
        self.catalog.create_file(name, attributes={"a_str": s, "a_int": i})
        self.model[name] = {"attrs": {"a_str": s, "a_int": i}, "coll": None}
        return name

    @rule(name=files)
    def duplicate_create_rejected(self, name):
        if name not in self.model:
            return
        try:
            self.catalog.create_file(name)
            raise AssertionError("duplicate create must fail")
        except DuplicateObjectError:
            pass

    @rule(name=consumes(files))
    def delete_file(self, name):
        if name in self.model:
            self.catalog.delete_file(name)
            del self.model[name]
        else:
            try:
                self.catalog.delete_file(name)
                raise AssertionError("deleting a missing file must fail")
            except ObjectNotFoundError:
                pass

    @rule(name=files,
          attr=st.sampled_from(ATTRS))
    def update_attribute(self, name, attr):
        if name not in self.model:
            return
        value = VALUES[attr][(hash(name) + 1) % len(VALUES[attr])]
        self.catalog.set_attributes(ObjectType.FILE, name, {attr: value})
        self.model[name]["attrs"][attr] = value

    @rule(name=files)
    def remove_attribute(self, name):
        if name not in self.model or "a_str" not in self.model[name]["attrs"]:
            return
        self.catalog.remove_attribute(ObjectType.FILE, name, "a_str")
        del self.model[name]["attrs"]["a_str"]

    @rule(suffix=st.integers(min_value=0, max_value=3))
    def create_collection(self, suffix):
        name = f"coll-{suffix}"
        if name in self.collections:
            return
        self.catalog.create_collection(name)
        self.collections.add(name)

    @rule(name=files, suffix=st.integers(min_value=0, max_value=3))
    def move_to_collection(self, name, suffix):
        coll = f"coll-{suffix}"
        if name not in self.model or coll not in self.collections:
            return
        self.catalog.move_file_to_collection(name, coll)
        self.model[name]["coll"] = coll

    # -- invariants ------------------------------------------------------------------

    @invariant()
    def file_count_matches(self):
        assert self.catalog.stats()["files"] == len(self.model)

    @invariant()
    def attribute_queries_match(self):
        for s in VALUES["a_str"]:
            got = sorted(self.catalog.query_files_by_attributes({"a_str": s}))
            want = sorted(
                name for name, rec in self.model.items()
                if rec["attrs"].get("a_str") == s
            )
            assert got == want, f"a_str={s}: {got} != {want}"

    @invariant()
    def conjunctive_queries_match(self):
        got = sorted(
            self.catalog.query_files_by_attributes({"a_str": "x", "a_int": 1})
        )
        want = sorted(
            name for name, rec in self.model.items()
            if rec["attrs"].get("a_str") == "x" and rec["attrs"].get("a_int") == 1
        )
        assert got == want

    @invariant()
    def per_file_attributes_match(self):
        for name, rec in self.model.items():
            assert self.catalog.get_attributes(ObjectType.FILE, name) == rec["attrs"]

    @invariant()
    def collection_membership_matches(self):
        for coll in self.collections:
            got = self.catalog.list_collection(coll)
            want = sorted(
                name for name, rec in self.model.items() if rec["coll"] == coll
            )
            assert got == want


TestCatalogStateful = CatalogMachine.TestCase
TestCatalogStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
