"""Tests for the attribute-query model and its SQL translation."""

import datetime as dt

import pytest

from repro.core import MetadataCatalog, ObjectQuery, ObjectType
from repro.core.errors import QueryError
from repro.core.query import AttributeCondition


@pytest.fixture
def cat():
    cat = MetadataCatalog()
    cat.define_attribute("experiment", "string")
    cat.define_attribute("run", "int")
    cat.define_attribute("freq", "float")
    cat.define_attribute("taken", "date")
    cat.create_collection("c1")
    cat.create_collection("c2")
    cat.create_file(
        "f1", data_type="binary", collection="c1",
        attributes={"experiment": "pulsar", "run": 1, "freq": 60.0,
                    "taken": dt.date(2003, 1, 1)},
    )
    cat.create_file(
        "f2", data_type="xml", collection="c1",
        attributes={"experiment": "pulsar", "run": 2, "freq": 120.0,
                    "taken": dt.date(2003, 6, 1)},
    )
    cat.create_file(
        "f3", data_type="binary", collection="c2",
        attributes={"experiment": "burst", "run": 1, "freq": 60.0,
                    "taken": dt.date(2003, 1, 15)},
    )
    return cat


class TestUserAttributeQueries:
    def test_single_equality(self, cat):
        q = ObjectQuery().where("experiment", "=", "pulsar")
        assert sorted(cat.query(q)) == ["f1", "f2"]

    def test_conjunction(self, cat):
        q = ObjectQuery().where("experiment", "=", "pulsar").where("run", "=", 1)
        assert cat.query(q) == ["f1"]

    def test_no_matches(self, cat):
        q = ObjectQuery().where("experiment", "=", "none")
        assert cat.query(q) == []

    def test_range_ops(self, cat):
        assert sorted(cat.query(ObjectQuery().where("freq", ">", 100.0))) == ["f2"]
        assert sorted(cat.query(ObjectQuery().where("freq", "<=", 60.0))) == ["f1", "f3"]
        assert sorted(cat.query(ObjectQuery().where("run", "!=", 1))) == ["f2"]

    def test_between(self, cat):
        q = ObjectQuery().where("taken", "between",
                                (dt.date(2003, 1, 1), dt.date(2003, 2, 1)))
        assert sorted(cat.query(q)) == ["f1", "f3"]

    def test_like(self, cat):
        q = ObjectQuery().where("experiment", "like", "pul%")
        assert sorted(cat.query(q)) == ["f1", "f2"]

    def test_ten_attribute_conjunction(self, cat):
        # mimic the paper's complex query on many attributes
        for i in range(7):
            cat.define_attribute(f"x{i}", "int")
        cat.create_file("big", attributes={f"x{i}": i for i in range(7)})
        q = ObjectQuery()
        for i in range(7):
            q.where(f"x{i}", "=", i)
        assert cat.query(q) == ["big"]


class TestPredefinedQueries:
    def test_simple_static_query(self, cat):
        q = ObjectQuery().where_field("data_type", "=", "binary")
        assert sorted(cat.query(q)) == ["f1", "f3"]

    def test_name_lookup(self, cat):
        q = ObjectQuery().where_field("name", "=", "f2")
        assert cat.query(q) == ["f2"]

    def test_mixed_static_and_user(self, cat):
        q = (
            ObjectQuery()
            .where("experiment", "=", "pulsar")
            .where_field("data_type", "=", "binary")
        )
        assert cat.query(q) == ["f1"]

    def test_collection_scope(self, cat):
        q = ObjectQuery(collection="c1").where("run", "=", 1)
        assert cat.query(q) == ["f1"]

    def test_valid_only(self, cat):
        cat.invalidate_file("f1")
        q = ObjectQuery(valid_only=True).where("experiment", "=", "pulsar")
        assert cat.query(q) == ["f2"]

    def test_limit(self, cat):
        q = ObjectQuery().limit(1).where("experiment", "=", "pulsar")
        assert len(cat.query(q)) == 1

    def test_unknown_predefined_field(self, cat):
        q = ObjectQuery().where_field("bogus", "=", 1)
        with pytest.raises(QueryError):
            cat.query(q)


class TestCollectionQueries:
    def test_query_collections_by_attribute(self, cat):
        cat.define_attribute("project", "string")
        cat.set_attributes(ObjectType.COLLECTION, "c1", {"project": "ligo"})
        q = ObjectQuery(object_type=ObjectType.COLLECTION).where("project", "=", "ligo")
        assert cat.query(q) == ["c1"]

    def test_collection_filter_rejected_for_collections(self, cat):
        q = ObjectQuery(object_type=ObjectType.COLLECTION, collection="c1")
        q.where_field("name", "=", "x")
        with pytest.raises(QueryError):
            cat.query(q)


class TestConditionValidation:
    def test_bad_operator(self):
        with pytest.raises(QueryError):
            AttributeCondition("a", "~~", 1)

    def test_between_needs_pair(self):
        with pytest.raises(QueryError):
            AttributeCondition("a", "between", 5)

    def test_attribute_scope_checked(self, cat):
        cat.define_attribute("viewattr", "string", object_types=(ObjectType.VIEW,))
        q = ObjectQuery().where("viewattr", "=", "x")
        with pytest.raises(QueryError):
            cat.query(q)
