"""Tests for MetadataCatalog storage operations."""

import datetime as dt

import pytest

from repro.core import (
    CycleError,
    DuplicateObjectError,
    InvalidAttributeError,
    MetadataCatalog,
    ObjectInUseError,
    ObjectNotFoundError,
    ObjectType,
)
from repro.core.model import AttributeType, ExternalCatalog, UserInfo
from repro.security.acl import Permission


@pytest.fixture
def cat():
    return MetadataCatalog()


class TestFiles:
    def test_create_and_get(self, cat):
        cat.create_file("f1", data_type="binary", creator="alice")
        file = cat.get_file("f1")
        assert file.data_type == "binary"
        assert file.creator == "alice"
        assert file.valid is True
        assert file.version == 1
        assert file.created is not None

    def test_duplicate_rejected(self, cat):
        cat.create_file("f1")
        with pytest.raises(DuplicateObjectError):
            cat.create_file("f1")

    def test_versions_coexist(self, cat):
        cat.create_file("f1", version=1)
        cat.create_file("f1", version=2, data_type="v2")
        assert cat.get_file("f1", 2).data_type == "v2"
        assert cat.list_versions("f1") == [1, 2]

    def test_ambiguous_version_requires_explicit(self, cat):
        cat.create_file("f1", version=1)
        cat.create_file("f1", version=2)
        with pytest.raises(InvalidAttributeError):
            cat.get_file("f1")

    def test_missing_file(self, cat):
        with pytest.raises(ObjectNotFoundError):
            cat.get_file("nope")
        assert not cat.file_exists("nope")

    def test_update_static_fields(self, cat):
        cat.create_file("f1")
        cat.update_file("f1", modifier="bob", data_type="xml", master_copy="gsiftp://x/y")
        file = cat.get_file("f1")
        assert file.data_type == "xml"
        assert file.master_copy == "gsiftp://x/y"
        assert file.last_modifier == "bob"

    def test_update_disallowed_field(self, cat):
        cat.create_file("f1")
        with pytest.raises(InvalidAttributeError):
            cat.update_file("f1", creator="other")

    def test_invalidate(self, cat):
        cat.create_file("f1")
        cat.invalidate_file("f1")
        assert cat.get_file("f1").valid is False

    def test_delete_cleans_dependents(self, cat):
        cat.define_attribute("a", "string")
        cat.create_file("f1", attributes={"a": "x"})
        cat.annotate(ObjectType.FILE, "f1", "note", "alice")
        cat.add_transformation("f1", "created by sim")
        cat.delete_file("f1")
        assert not cat.file_exists("f1")
        assert cat.stats()["attribute_values"] == 0

    def test_container_fields(self, cat):
        cat.create_file("f1", container_id="c-42", container_service="http://cont")
        file = cat.get_file("f1")
        assert file.container_id == "c-42"
        assert file.container_service == "http://cont"


class TestCollections:
    def test_file_in_at_most_one_collection(self, cat):
        cat.create_collection("c1")
        cat.create_collection("c2")
        cat.create_file("f1", collection="c1")
        assert cat.list_collection("c1") == ["f1"]
        cat.move_file_to_collection("f1", "c2")
        assert cat.list_collection("c1") == []
        assert cat.list_collection("c2") == ["f1"]

    def test_hierarchy(self, cat):
        cat.create_collection("root")
        cat.create_collection("mid", parent="root")
        cat.create_collection("leaf", parent="mid")
        assert cat.collection_chain("leaf") == ["leaf", "mid", "root"]
        assert cat.list_subcollections("root") == ["mid"]

    def test_cycle_rejected(self, cat):
        cat.create_collection("a")
        cat.create_collection("b", parent="a")
        with pytest.raises(CycleError):
            cat.set_collection_parent("a", "b")
        with pytest.raises(CycleError):
            cat.set_collection_parent("a", "a")

    def test_reparent_ok(self, cat):
        cat.create_collection("a")
        cat.create_collection("b")
        cat.create_collection("c", parent="a")
        cat.set_collection_parent("c", "b")
        assert cat.collection_chain("c") == ["c", "b"]

    def test_delete_nonempty_rejected(self, cat):
        cat.create_collection("c1")
        cat.create_file("f1", collection="c1")
        with pytest.raises(ObjectInUseError):
            cat.delete_collection("c1")
        cat.delete_file("f1")
        cat.delete_collection("c1")

    def test_delete_with_subcollection_rejected(self, cat):
        cat.create_collection("c1")
        cat.create_collection("c2", parent="c1")
        with pytest.raises(ObjectInUseError):
            cat.delete_collection("c1")

    def test_file_collection_chain(self, cat):
        cat.create_collection("top")
        cat.create_collection("sub", parent="top")
        cat.create_file("f1", collection="sub")
        assert cat.file_collection_chain("f1") == ["sub", "top"]
        cat.create_file("f2")
        assert cat.file_collection_chain("f2") == []

    def test_duplicate_collection(self, cat):
        cat.create_collection("c1")
        with pytest.raises(DuplicateObjectError):
            cat.create_collection("c1")


class TestViews:
    def test_members(self, cat):
        cat.create_collection("c1")
        cat.create_file("f1")
        cat.create_view("v1")
        cat.create_view("v2")
        cat.add_to_view("v1", files=["f1"], collections=["c1"], views=["v2"])
        members = cat.list_view("v1")
        assert {(m.member_type, m.name) for m in members} == {
            (ObjectType.FILE, "f1"),
            (ObjectType.COLLECTION, "c1"),
            (ObjectType.VIEW, "v2"),
        }

    def test_readding_member_is_noop(self, cat):
        cat.create_file("f1")
        cat.create_view("v1")
        cat.add_to_view("v1", files=["f1"])
        cat.add_to_view("v1", files=["f1"])
        assert len(cat.list_view("v1")) == 1

    def test_view_cycle_rejected(self, cat):
        cat.create_view("v1")
        cat.create_view("v2")
        cat.create_view("v3")
        cat.add_to_view("v1", views=["v2"])
        cat.add_to_view("v2", views=["v3"])
        with pytest.raises(CycleError):
            cat.add_to_view("v3", views=["v1"])
        with pytest.raises(CycleError):
            cat.add_to_view("v1", views=["v1"])

    def test_files_may_be_in_many_views(self, cat):
        cat.create_file("f1")
        cat.create_view("v1")
        cat.create_view("v2")
        cat.add_to_view("v1", files=["f1"])
        cat.add_to_view("v2", files=["f1"])
        assert len(cat.list_view("v1")) == 1
        assert len(cat.list_view("v2")) == 1

    def test_remove_member(self, cat):
        cat.create_file("f1")
        cat.create_view("v1")
        cat.add_to_view("v1", files=["f1"])
        cat.remove_from_view("v1", files=["f1"])
        assert cat.list_view("v1") == []

    def test_delete_view_in_use_rejected(self, cat):
        cat.create_view("v1")
        cat.create_view("v2")
        cat.add_to_view("v1", views=["v2"])
        with pytest.raises(ObjectInUseError):
            cat.delete_view("v2")
        cat.remove_from_view("v1", views=["v2"])
        cat.delete_view("v2")


class TestAttributes:
    def test_define_and_set(self, cat):
        cat.define_attribute("freq", "float", description="band center")
        cat.create_file("f1", attributes={"freq": 60.0})
        assert cat.get_attributes(ObjectType.FILE, "f1") == {"freq": 60.0}

    def test_all_types_round_trip(self, cat):
        values = {
            "s": ("string", "text"),
            "i": ("int", 42),
            "f": ("float", 2.5),
            "d": ("date", dt.date(2003, 11, 15)),
            "t": ("time", dt.time(10, 30)),
            "ts": ("datetime", dt.datetime(2003, 11, 15, 10, 30)),
        }
        for name, (vtype, _) in values.items():
            cat.define_attribute(name, vtype)
        cat.create_file("f1", attributes={k: v for k, (_, v) in values.items()})
        got = cat.get_attributes(ObjectType.FILE, "f1")
        assert got == {k: v for k, (_, v) in values.items()}

    def test_undefined_attribute_rejected(self, cat):
        with pytest.raises(InvalidAttributeError):
            cat.create_file("f1", attributes={"nope": 1})

    def test_wrong_type_rejected(self, cat):
        cat.define_attribute("i", "int")
        with pytest.raises(InvalidAttributeError):
            cat.create_file("f1", attributes={"i": "not an int"})

    def test_int_coerced_to_float_attr(self, cat):
        cat.define_attribute("f", "float")
        cat.create_file("f1", attributes={"f": 3})
        assert cat.get_attributes(ObjectType.FILE, "f1")["f"] == 3.0

    def test_set_replaces(self, cat):
        cat.define_attribute("a", "string")
        cat.create_file("f1", attributes={"a": "old"})
        cat.set_attributes(ObjectType.FILE, "f1", {"a": "new"})
        assert cat.get_attributes(ObjectType.FILE, "f1") == {"a": "new"}

    def test_remove_attribute(self, cat):
        cat.define_attribute("a", "string")
        cat.create_file("f1", attributes={"a": "x"})
        cat.remove_attribute(ObjectType.FILE, "f1", "a")
        assert cat.get_attributes(ObjectType.FILE, "f1") == {}

    def test_object_type_restriction(self, cat):
        cat.define_attribute("file_only", "string", object_types=(ObjectType.FILE,))
        cat.create_collection("c1")
        with pytest.raises(InvalidAttributeError):
            cat.set_attributes(ObjectType.COLLECTION, "c1", {"file_only": "x"})

    def test_collection_attributes(self, cat):
        cat.define_attribute("project", "string")
        cat.create_collection("c1", attributes={"project": "esg"})
        assert cat.get_attributes(ObjectType.COLLECTION, "c1") == {"project": "esg"}

    def test_duplicate_definition(self, cat):
        cat.define_attribute("a", "string")
        with pytest.raises(DuplicateObjectError):
            cat.define_attribute("a", "int")

    def test_list_attribute_defs(self, cat):
        cat.define_attribute("b", "int")
        cat.define_attribute("a", "string")
        assert [d.name for d in cat.list_attribute_defs()] == ["a", "b"]
        assert cat.get_attribute_def("b").value_type is AttributeType.INT


class TestAnnotationsProvenance:
    def test_annotations_ordered(self, cat):
        cat.create_file("f1")
        cat.annotate(ObjectType.FILE, "f1", "first", "alice")
        cat.annotate(ObjectType.FILE, "f1", "second", "bob")
        notes = cat.annotations(ObjectType.FILE, "f1")
        assert [n.text for n in notes] == ["first", "second"]
        assert notes[0].creator == "alice"

    def test_annotations_on_views_and_collections(self, cat):
        cat.create_collection("c1")
        cat.create_view("v1")
        cat.annotate(ObjectType.COLLECTION, "c1", "note-c", "x")
        cat.annotate(ObjectType.VIEW, "v1", "note-v", "x")
        assert cat.annotations(ObjectType.COLLECTION, "c1")[0].text == "note-c"
        assert cat.annotations(ObjectType.VIEW, "v1")[0].text == "note-v"

    def test_transformations(self, cat):
        cat.create_file("f1")
        cat.add_transformation("f1", "raw capture")
        cat.add_transformation("f1", "calibrated")
        assert [t.description for t in cat.transformations("f1")] == [
            "raw capture",
            "calibrated",
        ]


class TestUsersCatalogsAcl:
    def test_user_round_trip(self, cat):
        cat.register_user(UserInfo("/O=G/CN=A", institution="ISI", email="a@isi.edu"))
        user = cat.get_user("/O=G/CN=A")
        assert user.institution == "ISI"
        with pytest.raises(DuplicateObjectError):
            cat.register_user(UserInfo("/O=G/CN=A"))

    def test_external_catalogs(self, cat):
        cat.register_external_catalog(
            ExternalCatalog("rls-isi", "replica", "rls.isi.edu", 39281)
        )
        catalogs = cat.list_external_catalogs()
        assert catalogs[0].catalog_type == "replica"

    def test_acl_storage(self, cat):
        cat.create_file("f1")
        cat.set_permissions(ObjectType.FILE, "f1", "/O=G/CN=A", Permission.READ)
        acl = cat.get_acl(ObjectType.FILE, "f1")
        assert acl.allows("/O=G/CN=A", Permission.READ)
        assert not acl.allows("/O=G/CN=B", Permission.READ)

    def test_acl_replace(self, cat):
        cat.create_file("f1")
        cat.set_permissions(ObjectType.FILE, "f1", "u", Permission.READ)
        cat.set_permissions(
            ObjectType.FILE, "f1", "u", Permission.READ | Permission.WRITE
        )
        acl = cat.get_acl(ObjectType.FILE, "f1")
        assert acl.allows("u", Permission.WRITE)

    def test_public_acl(self, cat):
        cat.create_file("f1")
        cat.set_permissions(ObjectType.FILE, "f1", "*", Permission.READ)
        acl = cat.get_acl(ObjectType.FILE, "f1")
        assert acl.allows("anyone", Permission.READ)

    def test_service_level_acl(self, cat):
        cat.set_permissions(ObjectType.SERVICE, None, "u", Permission.WRITE)
        acl = cat.get_acl(ObjectType.SERVICE, None)
        assert acl.allows("u", Permission.WRITE)


class TestAudit:
    def test_audit_records(self, cat):
        cat.create_file("f1", audit_enabled=True)
        file = cat.get_file("f1")
        cat.record_audit(ObjectType.FILE, file.id, "read", "", "alice")
        cat.record_audit(ObjectType.FILE, file.id, "modify", "dt=x", "bob")
        log = cat.audit_log(ObjectType.FILE, "f1")
        assert [(r.action, r.actor) for r in log] == [
            ("read", "alice"),
            ("modify", "bob"),
        ]
