"""Coverage for the remaining MCSService/MCSClient operation surface."""

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery, ObjectType
from repro.core.errors import (
    ObjectNotFoundError,
    PermissionDeniedError,
    QueryError,
)
from repro.security import Permission
from repro.soap.envelope import SoapFault


@pytest.fixture
def client():
    return MCSClient.in_process(MCSService(), caller="/O=G/CN=T")


class TestVersionsAndMoves:
    def test_list_versions_via_client(self, client):
        client.create_logical_file("v", version=1)
        client.create_logical_file("v", version=3)
        assert client.list_versions("v") == [1, 3]

    def test_move_file_between_collections(self, client):
        client.create_collection("c1")
        client.create_collection("c2")
        client.create_logical_file("f", collection="c1")
        client.move_file_to_collection("f", "c2")
        assert client.list_collection("c1") == []
        assert client.list_collection("c2") == ["f"]

    def test_move_to_none_detaches(self, client):
        client.create_collection("c1")
        client.create_logical_file("f", collection="c1")
        client.move_file_to_collection("f", None)
        assert client.list_collection("c1") == []

    def test_set_collection_parent_via_client(self, client):
        client.create_collection("top")
        client.create_collection("sub")
        client.set_collection_parent("sub", "top")
        assert client.list_subcollections("top") == ["sub"]

    def test_remove_attribute_via_client(self, client):
        client.define_attribute("a", "int")
        client.create_logical_file("f", attributes={"a": 1})
        client.remove_attribute("file", "f", "a")
        assert client.get_attributes("file", "f") == {}


class TestUsersAndCatalogs:
    def test_user_round_trip(self, client):
        client.register_user("/O=G/CN=U", institution="ISI", email="u@isi.edu")
        user = client.get_user("/O=G/CN=U")
        assert user["institution"] == "ISI"

    def test_external_catalog_round_trip(self, client):
        client.register_external_catalog("rls", "replica", "rls.isi.edu", 39281,
                                         description="prod RLS")
        catalogs = client.list_external_catalogs()
        assert catalogs[0]["host"] == "rls.isi.edu"


class TestPermissionOps:
    def test_set_and_get_permissions_via_client(self, client):
        client.create_logical_file("f")
        client.set_permissions("file", "f", "/O=G/CN=R", ["READ", "ANNOTATE"])
        perms = client.get_permissions("file", "f")
        assert sorted(perms["/O=G/CN=R"]) == ["ANNOTATE", "READ"]

    def test_public_permissions_reported(self, client):
        client.create_logical_file("f")
        client.set_permissions("file", "f", "*", ["READ"])
        assert client.get_permissions("file", "f")["*"] == ["READ"]

    def test_object_granularity_on_views(self):
        service = MCSService(granularity="object")
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, "/O=G/CN=A", Permission.all()
        )
        alice = MCSClient.in_process(service, caller="/O=G/CN=A")
        alice.create_view("v1")
        bob = MCSClient.in_process(service, caller="/O=G/CN=B")
        with pytest.raises(PermissionDeniedError):
            bob.list_view("v1")
        service.catalog.set_permissions(
            ObjectType.VIEW, "v1", "/O=G/CN=B", Permission.READ
        )
        assert bob.list_view("v1") == []


class TestQueryEdgeCases:
    def test_malformed_query_dict(self, client):
        service = client._transport._handler.__self__
        with pytest.raises(SoapFault) as excinfo:
            service.handle("query", {"query": {"conditions": [{"bad": 1}]}})
        assert excinfo.value.code == "MCS.Query"

    def test_unknown_object_type_in_ops(self, client):
        service = client._transport._handler.__self__
        with pytest.raises((SoapFault, ValueError)):
            service.handle(
                "get_attributes", {"object_type": "galaxy", "name": "x"}
            )

    def test_explain_via_client(self, client):
        client.define_attribute("k", "int")
        client.create_logical_file("f", attributes={"k": 1})
        plan = client.explain_query(ObjectQuery().where("k", "=", 1))
        assert any("attribute_value" in line for line in plan)

    def test_empty_conditions_query_all(self, client):
        client.create_logical_file("f1")
        client.create_logical_file("f2")
        assert sorted(client.query(ObjectQuery())) == ["f1", "f2"]

    def test_missing_required_argument_faults(self, client):
        service = client._transport._handler.__self__
        with pytest.raises(SoapFault) as excinfo:
            service.handle("get_logical_file", {})
        assert excinfo.value.code == "MCS.BadRequest"


class TestAuditDefault:
    def test_audit_default_records_everything(self):
        service = MCSService(audit_default=True)
        client = MCSClient.in_process(service, caller="/O=G/CN=A")
        client.create_logical_file("f1")  # audit_enabled False, but default on
        client.get_logical_file("f1")
        log = service.catalog.audit_log(ObjectType.FILE, "f1")
        assert [r.action for r in log] == ["create", "read"]
