"""Client/service bulk operation surface across transports.

The stateful equivalence machinery lives in test_bulk_stateful.py; these
are the direct unit tests for the bulk API surface: pipelined
``client.bulk()`` contexts, the explicit ``bulk_*`` methods with their
atomicity contract, and parity between the in-process and HTTP paths.
"""

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.core.errors import DuplicateObjectError, ObjectNotFoundError
from repro.core.query import AttributeCondition
from repro.soap import SoapServer


@pytest.fixture()
def service() -> MCSService:
    svc = MCSService()
    svc.catalog.define_attribute("kind", "string")
    return svc


@pytest.fixture()
def client(service):
    c = MCSClient.in_process(service, caller="tester")
    yield c
    c.close()


class TestPipelinedBulk:
    def test_mixed_batch_isolates_faults(self, service, client):
        client.create_logical_file("dup")
        with client.bulk() as batch:
            ok1 = batch.call("create_logical_file", name="f1")
            bad = batch.call("create_logical_file", name="dup")
            ok2 = batch.call("create_logical_file", name="f2")
        assert ok1.ok and ok2.ok
        assert not bad.ok
        assert isinstance(bad.error, DuplicateObjectError)
        with pytest.raises(DuplicateObjectError):
            bad.unwrap()
        # Items after the faulted one still ran.
        assert service.catalog.stats()["files"] == 3

    def test_handles_raise_before_flush(self, client):
        batch = client.bulk()
        handle = batch.call("create_logical_file", name="pending")
        with pytest.raises(RuntimeError):
            handle.ok  # noqa: B018 - the property access is the test
        batch.flush()
        assert handle.ok

    def test_empty_flush_is_noop(self, client):
        assert client.bulk().flush() == []

    def test_exception_in_context_skips_flush(self, service, client):
        with pytest.raises(ValueError):
            with client.bulk() as batch:
                batch.call("create_logical_file", name="never-sent")
                raise ValueError("abort")
        assert service.catalog.stats()["files"] == 0

    def test_results_arrive_in_order(self, client):
        for name in ("a", "b"):
            client.create_logical_file(name)
        with client.bulk() as batch:
            handles = [
                batch.call("get_logical_file", name=name)
                for name in ("a", "b")
            ]
        assert [h.result["name"] for h in handles] == ["a", "b"]


class TestExplicitBulkMethods:
    def test_bulk_create_reports_ids(self, service, client):
        response = client.bulk_create_files(
            [{"name": f"f{i}", "attributes": {"kind": "x"}} for i in range(4)]
        )
        assert response["ok"] == 4
        ids = [item["result"]["id"] for item in response["items"]]
        assert len(set(ids)) == 4
        assert sorted(client.query_files_by_attributes({"kind": "x"})) == [
            f"f{i}" for i in range(4)
        ]

    def test_atomic_failure_applies_nothing(self, service, client):
        client.create_logical_file("dup")
        with pytest.raises(DuplicateObjectError):
            client.bulk_create_files(
                [{"name": "fresh"}, {"name": "dup"}], atomic=True
            )
        assert service.catalog.stats()["files"] == 1  # only "dup" itself

    def test_non_atomic_keeps_survivors(self, service, client):
        client.create_logical_file("dup")
        response = client.bulk_create_files(
            [{"name": "fresh-1"}, {"name": "dup"}, {"name": "fresh-2"}],
            atomic=False,
        )
        assert [item["ok"] for item in response["items"]] == [
            True,
            False,
            True,
        ]
        assert response["ok"] == 2
        assert service.catalog.stats()["files"] == 3

    def test_bulk_set_attributes_non_atomic(self, service, client):
        client.create_logical_file("f1")
        client.create_logical_file("f2")
        response = client.bulk_set_attributes(
            [
                {"name": "f1", "attributes": {"kind": "a"}},
                {"name": "ghost", "attributes": {"kind": "a"}},
                {"name": "f2", "attributes": {"kind": "a"}},
            ],
            atomic=False,
        )
        assert [item["ok"] for item in response["items"]] == [
            True,
            False,
            True,
        ]
        assert sorted(client.query_files_by_attributes({"kind": "a"})) == [
            "f1",
            "f2",
        ]

    def test_bulk_set_attributes_atomic_failure(self, service, client):
        client.create_logical_file("f1")
        with pytest.raises(ObjectNotFoundError):
            client.bulk_set_attributes(
                [
                    {"name": "f1", "attributes": {"kind": "a"}},
                    {"name": "ghost", "attributes": {"kind": "a"}},
                ],
                atomic=True,
            )
        assert client.query_files_by_attributes({"kind": "a"}) == []

    def test_bulk_query_mixes_results_and_faults(self, service, client):
        client.create_logical_file("f1", attributes={"kind": "q"})
        good = ObjectQuery(conditions=[AttributeCondition("kind", "=", "q")])
        response = client.bulk_query(
            [good, {"object_type": "no-such-type"}]
        )
        items = response["items"]
        assert response["ok"] == 1
        assert items[0]["ok"] and items[0]["result"] == ["f1"]
        assert not items[1]["ok"]


class TestHttpParity:
    def test_bulk_surface_over_http(self, service):
        server = SoapServer(
            service.handle, fault_mapper=service.fault_mapper
        ).start()
        client = MCSClient.connect(*server.endpoint, caller="tester")
        try:
            response = client.bulk_create_files(
                [{"name": f"h{i}", "attributes": {"kind": "h"}}
                 for i in range(3)]
            )
            assert response["ok"] == 3
            with client.bulk() as batch:
                hit = batch.call("get_logical_file", name="h0")
                miss = batch.call("get_logical_file", name="nope")
            assert hit.result["name"] == "h0"
            assert isinstance(miss.error, ObjectNotFoundError)
            assert sorted(
                client.query_files_by_attributes({"kind": "h"})
            ) == ["h0", "h1", "h2"]
        finally:
            client.close()
            server.stop()
