"""Tests for the unified client query surface and the shared fault table.

Covers the fluent ``ObjectQuery`` builder (``limit``/``offset``/
``order_by``) end to end — catalog SQL, SOAP envelope, client — plus the
deprecated query shims and the typed ``AttributeDef`` wire round-trip.
"""

import datetime as dt

import pytest

from repro.core import (
    MCSClient,
    MCSService,
    MetadataCatalog,
    ObjectQuery,
    ObjectType,
)
from repro.core.errors import (
    DuplicateObjectError,
    ObjectNotFoundError,
    QueryError,
    exception_from_fault,
    fault_code_for,
)
from repro.core.model import AttributeDef, AttributeType
from repro.security.errors import AuthorizationError, CertificateError


@pytest.fixture
def cat():
    cat = MetadataCatalog()
    cat.define_attribute("exp", "string")
    for i in range(6):
        cat.create_file(f"f{i}", data_type="binary" if i % 2 else "xml",
                        attributes={"exp": "pulsar"})
    return cat


@pytest.fixture
def client(cat):
    return MCSClient.in_process(MCSService(cat), caller="t")


class TestFluentQuery:
    def test_order_by_and_pagination_in_catalog(self, cat):
        q = (
            ObjectQuery()
            .where("exp", "=", "pulsar")
            .order_by("name")
            .limit(2)
            .offset(1)
        )
        assert cat.query(q) == ["f1", "f2"]

    def test_order_by_descending(self, cat):
        q = ObjectQuery().where("exp", "=", "pulsar").order_by(
            "name", descending=True
        ).limit(2)
        assert cat.query(q) == ["f5", "f4"]

    def test_offset_without_limit(self, cat):
        q = ObjectQuery().where("exp", "=", "pulsar").order_by("name").offset(4)
        assert cat.query(q) == ["f4", "f5"]

    def test_negative_limit_rejected_eagerly(self):
        with pytest.raises(QueryError):
            ObjectQuery().limit(-1)
        with pytest.raises(QueryError):
            ObjectQuery().offset(-3)

    def test_unknown_order_field_rejected_eagerly(self):
        with pytest.raises(QueryError):
            ObjectQuery().order_by("bogus")

    def test_none_clears_pagination(self, cat):
        q = ObjectQuery().where("exp", "=", "pulsar").limit(2).limit(None)
        assert len(cat.query(q)) == 6

    def test_pagination_round_trips_the_wire(self, client):
        q = (
            ObjectQuery()
            .where("exp", "=", "pulsar")
            .order_by("name", descending=True)
            .limit(3)
            .offset(2)
        )
        assert client.query(q) == ["f3", "f2", "f1"]

    def test_pagination_windows_tile_the_result(self, client):
        base = ObjectQuery().where("exp", "=", "pulsar").order_by("name")
        pages = [
            client.query(
                ObjectQuery()
                .where("exp", "=", "pulsar")
                .order_by("name")
                .limit(2)
                .offset(k)
            )
            for k in (0, 2, 4)
        ]
        assert [n for page in pages for n in page] == client.query(base)


class TestDeprecatedShims:
    def test_query_files_by_attributes_warns_and_matches(self, client):
        with pytest.warns(DeprecationWarning, match="query_files_by_attributes"):
            legacy = client.query_files_by_attributes({"exp": "pulsar"})
        assert legacy == client.query(ObjectQuery().where("exp", "=", "pulsar"))

    def test_simple_query_warns_and_matches(self, client):
        with pytest.warns(DeprecationWarning, match="simple_query"):
            legacy = client.simple_query("data_type", "xml")
        assert legacy == client.query(
            ObjectQuery().where_field("data_type", "=", "xml")
        )


class TestTypedAttributeDefs:
    def test_client_returns_dataclasses(self, client):
        defs = client.list_attribute_defs()
        assert all(isinstance(d, AttributeDef) for d in defs)
        by_name = {d.name: d for d in defs}
        assert by_name["exp"].value_type is AttributeType.STRING
        assert ObjectType.FILE in by_name["exp"].object_types

    def test_to_dict_round_trip(self):
        definition = AttributeDef(
            id=7,
            name="taken",
            value_type=AttributeType.DATE,
            object_types=frozenset({ObjectType.FILE}),
            description="acquisition date",
            creator="alice",
            created=dt.datetime(2003, 11, 15, 12, 0, 0),
        )
        assert AttributeDef.from_dict(definition.to_dict()) == definition

    def test_from_dict_accepts_iso_strings(self):
        rebuilt = AttributeDef.from_dict(
            {
                "id": 1,
                "name": "x",
                "value_type": "int",
                "object_types": ["file"],
                "created": "2003-11-15T12:00:00",
            }
        )
        assert rebuilt.created == dt.datetime(2003, 11, 15, 12, 0, 0)


class TestFaultTable:
    def test_fault_code_for_mcs_errors(self):
        assert fault_code_for(ObjectNotFoundError("x")) == "MCS.NotFound"
        assert fault_code_for(DuplicateObjectError("x")) == "MCS.Duplicate"

    def test_security_errors_collapse_to_permission_denied(self):
        assert fault_code_for(AuthorizationError("x")) == "MCS.PermissionDenied"
        assert fault_code_for(CertificateError("x")) == "MCS.PermissionDenied"

    def test_foreign_exceptions_unmapped(self):
        assert fault_code_for(ValueError("x")) is None
        assert fault_code_for(TypeError("x")) is None

    def test_exception_from_fault_round_trip(self):
        exc = exception_from_fault("MCS.NotFound", "gone")
        assert isinstance(exc, ObjectNotFoundError)
        assert str(exc) == "gone"
        assert exception_from_fault("Server", "boom") is None
        # Unknown MCS.* codes degrade to the base error, never to None.
        unknown = exception_from_fault("MCS.Futuristic", "m")
        assert type(unknown).__name__ == "MCSError"

    def test_single_call_raises_typed_error(self, client):
        with pytest.raises(ObjectNotFoundError):
            client.get_logical_file("nope")

    def test_bulk_item_raises_same_typed_error(self, client):
        with client.bulk() as batch:
            handle = batch.call("get_logical_file", name="nope")
        assert isinstance(handle.error, ObjectNotFoundError)
        with pytest.raises(ObjectNotFoundError):
            handle.unwrap()
