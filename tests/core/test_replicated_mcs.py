"""Tests for the replicated MCS deployment (§9)."""

import pytest

from repro.core.replicated import ReplicatedMCS


class TestSynchronousCluster:
    @pytest.fixture
    def cluster(self):
        cluster = ReplicatedMCS(replicas=2, synchronous=True)
        yield cluster
        cluster.close()

    def test_writes_visible_on_every_replica(self, cluster):
        writer = cluster.write_client(caller="w")
        writer.define_attribute("k", "int")
        writer.create_logical_file("f1", attributes={"k": 1})
        for index in range(cluster.replica_count):
            reader = cluster.replica_client(index, caller="r")
            assert reader.get_logical_file("f1")["name"] == "f1"
            assert reader.query_files_by_attributes({"k": 1}) == ["f1"]

    def test_strict_consistency_no_lag(self, cluster):
        writer = cluster.write_client()
        writer.define_attribute("k", "int")
        for i in range(10):
            writer.create_logical_file(f"f{i}", attributes={"k": i})
        assert cluster.lag() == [0, 0]

    def test_read_clients_round_robin(self, cluster):
        a = cluster.read_client()
        b = cluster.read_client()
        c = cluster.read_client()
        # With 2 replicas, the 1st and 3rd read client share a service.
        assert a._transport._handler.__self__ is c._transport._handler.__self__
        assert a._transport._handler.__self__ is not b._transport._handler.__self__

    def test_deletes_replicate(self, cluster):
        writer = cluster.write_client()
        writer.create_logical_file("gone")
        writer.delete_logical_file("gone")
        reader = cluster.read_client()
        from repro.core.errors import ObjectNotFoundError

        with pytest.raises(ObjectNotFoundError):
            reader.get_logical_file("gone")

    def test_full_catalog_surface_replicates(self, cluster):
        writer = cluster.write_client(caller="alice")
        writer.define_attribute("x", "string")
        writer.create_collection("c1")
        writer.create_logical_file("f1", collection="c1", attributes={"x": "v"})
        writer.create_view("v1")
        writer.add_to_view("v1", files=["f1"])
        writer.annotate("file", "f1", "note")
        writer.add_transformation("f1", "step 1")
        reader = cluster.read_client(caller="bob")
        assert reader.list_collection("c1") == ["f1"]
        assert [m["name"] for m in reader.list_view("v1")] == ["f1"]
        assert reader.get_annotations("file", "f1")[0]["text"] == "note"
        assert reader.get_transformations("f1")[0]["description"] == "step 1"


class TestAsynchronousCluster:
    def test_eventual_consistency(self):
        cluster = ReplicatedMCS(replicas=1, synchronous=False)
        try:
            writer = cluster.write_client()
            writer.define_attribute("k", "int")
            for i in range(20):
                writer.create_logical_file(f"f{i}", attributes={"k": i})
            cluster.flush()
            reader = cluster.read_client()
            assert reader.stats()["files"] == 20
        finally:
            cluster.close()


class TestFailover:
    def test_promote_replica(self):
        cluster = ReplicatedMCS(replicas=2, synchronous=True)
        try:
            writer = cluster.write_client()
            writer.define_attribute("k", "int")
            writer.create_logical_file("f1", attributes={"k": 1})
            promoted = cluster.promote(0)
            assert cluster.replica_count == 1
            # Promoted copy holds the data and accepts writes.
            new_writer = promoted.write_client()
            assert new_writer.get_logical_file("f1")["name"] == "f1"
            new_writer.create_logical_file("f2", attributes={"k": 2})
            assert new_writer.query_files_by_attributes({"k": 2}) == ["f2"]
            # Old cluster unaffected by writes to the promoted copy.
            reader = cluster.read_client()
            from repro.core.errors import ObjectNotFoundError

            with pytest.raises(ObjectNotFoundError):
                reader.get_logical_file("f2")
        finally:
            cluster.close()

    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ReplicatedMCS(replicas=0)
