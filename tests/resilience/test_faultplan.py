"""The fault-injection engine itself: grammar, matching, determinism.

The chaos lane's guarantees are only as good as the engine's, so the
spec grammar, the first-match-wins rule order, the ``times``/``after``
budgets and the seeded-replay determinism each get pinned here.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.soap.envelope import SoapFault
from repro.soap.errors import TransportError


class TestParseGrammar:
    def test_full_example_from_the_docstring(self):
        plan = FaultPlan.parse("seed=7;soap.http:*=error@0.05;repl.ship=latency,ms=2")
        assert plan.seed == 7
        assert len(plan.rules) == 2
        first, second = plan.rules
        assert (first.layer, first.op, first.kind, first.rate) == (
            "soap.http", "*", "error", 0.05,
        )
        assert (second.layer, second.op, second.kind) == ("repl.ship", "*", "latency")
        assert second.latency_ms == 2.0

    def test_all_options(self):
        plan = FaultPlan.parse(
            "soap.server:delete_*=fault@0.5,code=Server.Busy,times=3,after=2"
        )
        rule = plan.rules[0]
        assert rule.op == "delete_*"
        assert rule.code == "Server.Busy"
        assert rule.times == 3
        assert rule.after == 2

    def test_empty_clauses_ignored(self):
        plan = FaultPlan.parse(";;seed=1;")
        assert plan.seed == 1 and plan.rules == []

    @pytest.mark.parametrize("spec", [
        "soap.http",                    # no '='
        "soap.http=explode",            # unknown kind
        "soap.http=error@1.5",          # rate out of range
        "soap.http=error,bogus=1",      # unknown option
        "soap.http=error,times=-1",     # negative budget
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)


class TestMatchingAndBudgets:
    def test_first_matching_rule_wins(self):
        plan = FaultPlan([
            FaultRule("soap.*", op="query", kind="latency"),
            FaultRule("soap.*", kind="error"),
        ])
        assert plan.decide("soap.http", "query").kind == "latency"
        assert plan.decide("soap.http", "ping").kind == "error"
        assert plan.decide("repl.ship", "r0") is None

    def test_after_skips_then_times_caps(self):
        plan = FaultPlan([FaultRule("l", kind="error", after=2, times=2)])
        kinds = [plan.decide("l", "op") for _ in range(6)]
        assert [k.kind if k else None for k in kinds] == [
            None, None, "error", "error", None, None,
        ]
        assert plan.injected == 2

    def test_rate_is_deterministic_and_replayable(self):
        spec = "seed=42;l=error@0.3"
        plan = FaultPlan.parse(spec)
        first = [plan.decide("l", "op") is not None for _ in range(50)]
        # A fresh parse with the same seed replays the same decisions.
        replay = FaultPlan.parse(spec)
        second = [replay.decide("l", "op") is not None for _ in range(50)]
        assert first == second
        assert 0 < sum(first) < 50  # actually probabilistic, not all-or-nothing

    def test_reset_rewinds_counters_and_rng(self):
        plan = FaultPlan.parse("seed=9;l=error@0.5,times=5")
        before = [plan.decide("l", "op") is not None for _ in range(20)]
        assert plan.injected == 5
        plan.reset()
        assert plan.injected == 0
        assert [plan.decide("l", "op") is not None for _ in range(20)] == before

    def test_different_seeds_give_different_sequences(self):
        def sequence(seed):
            plan = FaultPlan.parse(f"seed={seed};l=error@0.5")
            return tuple(plan.decide("l", "o") is not None for _ in range(40))

        assert sequence(1) != sequence(2)


class TestInjectionEffects:
    def test_error_kind_raises_transport_error(self):
        with pytest.raises(TransportError, match="injected error at l:op"):
            FaultPlan([FaultRule("l")]).decide("l", "op").pre()

    def test_fault_kind_raises_soap_fault_with_code(self):
        inj = FaultPlan([FaultRule("l", kind="fault", code="Server.Busy")]).decide(
            "l", "op"
        )
        with pytest.raises(SoapFault) as excinfo:
            inj.pre()
        assert excinfo.value.code == "Server.Busy"

    def test_lost_reply_is_a_post_effect(self):
        """pre() must NOT raise for lost_reply — the op runs first."""
        inj = FaultPlan([FaultRule("l", kind="lost_reply")]).decide("l", "op")
        inj.pre()  # no exception; the site drops the reply after the call

    def test_fail_degrades_every_failing_kind_to_an_exception(self):
        for kind in ("error", "torn", "lost_reply"):
            inj = FaultPlan([FaultRule("l", kind=kind)]).decide("l", "op")
            with pytest.raises(TransportError):
                inj.fail()

    def test_tear_truncates_but_never_empties(self):
        inj = FaultPlan([FaultRule("l", kind="torn")]).decide("l", "op")
        assert inj.tear(b"0123456789") == b"01234"
        assert inj.tear(b"x") == b"x"


class TestActivation:
    def test_check_is_none_when_inactive(self, no_faults):
        assert faults.check("soap.http", "query") is None

    def test_active_context_restores_previous_plan(self, no_faults):
        outer = FaultPlan([FaultRule("a")])
        inner = FaultPlan([FaultRule("b")])
        with faults.active(outer):
            assert faults.check("a", "x") is not None
            with faults.active(inner):
                assert faults.check("a", "x") is None
                assert faults.check("b", "x") is not None
            assert faults.get_active() is outer
        assert faults.get_active() is None

    def test_install_from_env(self, no_faults):
        plan = faults.install_from_env({"REPRO_FAULTS": "seed=3;l=error"})
        try:
            assert plan is not None and plan.seed == 3
            assert faults.get_active() is plan
        finally:
            faults.uninstall()
        assert faults.install_from_env({}) is None

    def test_fault_plan_fixture_deactivates_on_teardown(self, fault_plan):
        fault_plan("l=error")
        assert faults.check("l", "x") is not None
        # teardown asserted implicitly by test_check_is_none_when_inactive
