"""Property tests for RetryPolicy: the backoff ladder and retry gating.

The resilient transport schedules sleeps straight off
:meth:`RetryPolicy.backoff`, so the chaos lane's determinism rests on the
three properties proven here: bounded by ``max_delay_s``, monotone
non-decreasing in attempt, and a pure function of ``(policy, attempt)``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import RetryPolicy

policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=10),
    base_delay_s=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    multiplier=st.floats(min_value=1.5, max_value=4.0, allow_nan=False),
    max_delay_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**16),
)
attempts = st.integers(min_value=1, max_value=12)


class TestBackoffProperties:
    @settings(max_examples=100, deadline=None)
    @given(policy=policies, attempt=attempts)
    def test_bounded_and_non_negative(self, policy, attempt):
        delay = policy.backoff(attempt)
        assert 0.0 <= delay <= policy.max_delay_s

    @settings(max_examples=100, deadline=None)
    @given(policy=policies, attempt=st.integers(min_value=1, max_value=11))
    def test_monotone_non_decreasing(self, policy, attempt):
        assert policy.backoff(attempt) <= policy.backoff(attempt + 1)

    @settings(max_examples=100, deadline=None)
    @given(policy=policies, attempt=attempts)
    def test_deterministic_under_seed(self, policy, attempt):
        """Same (policy, attempt) → same delay; equal policies agree."""
        twin = RetryPolicy(**{
            field: getattr(policy, field)
            for field in policy.__dataclass_fields__
        })
        assert policy.backoff(attempt) == policy.backoff(attempt)
        assert twin.backoff(attempt) == policy.backoff(attempt)

    def test_jitter_zero_is_pure_exponential(self):
        policy = RetryPolicy(base_delay_s=0.01, multiplier=2.0, jitter=0.0,
                             max_delay_s=100.0)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(4) == pytest.approx(0.08)

    def test_different_seeds_change_jittered_delays(self):
        a = RetryPolicy(seed=1, jitter=0.5, multiplier=2.0, max_delay_s=100.0)
        b = RetryPolicy(seed=2, jitter=0.5, multiplier=2.0, max_delay_s=100.0)
        assert any(a.backoff(i) != b.backoff(i) for i in range(1, 6))

    def test_attempt_counts_from_one(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestConstructorValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -0.1},
        {"max_delay_s": -1.0},
        {"jitter": -0.1},
        {"jitter": 1.5},
        # jitter swing would break monotonicity: multiplier < 1 + jitter
        {"multiplier": 1.0, "jitter": 0.1},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCanRetry:
    @settings(max_examples=60, deadline=None)
    @given(
        retry_reads=st.booleans(),
        retry_writes=st.booleans(),
        has_token=st.booleans(),
    )
    def test_never_retries_tokenless_writes(self, retry_reads, retry_writes,
                                            has_token):
        """The idempotency invariant: a write without a server-deduplicated
        token is never retried, whatever the policy flags say."""
        policy = RetryPolicy(retry_reads=retry_reads, retry_writes=retry_writes)
        allowed = policy.can_retry(idempotent=False, has_token=has_token)
        if not has_token:
            assert allowed is False
        else:
            assert allowed is retry_writes

    @settings(max_examples=60, deadline=None)
    @given(retry_reads=st.booleans(), has_token=st.booleans())
    def test_reads_follow_retry_reads_flag(self, retry_reads, has_token):
        policy = RetryPolicy(retry_reads=retry_reads)
        assert policy.can_retry(idempotent=True, has_token=has_token) is retry_reads
