"""End-to-end write deduplication over a real SOAP server.

The canonical duplicate-write hazard: the server executes a write but
the reply is lost, the client retries, and without deduplication the
write lands twice.  Here a ``lost_reply`` fault is injected into the
HTTP transport and the server's idempotency cache must collapse the
retry into a replay of the original response.
"""

from __future__ import annotations

import pytest

from repro.core import ClientConfig, MCSClient, MCSService
from repro.faults import FaultPlan, FaultRule
from repro.resilience import RetryPolicy
from repro.soap.envelope import SoapFault, build_request, parse_response_full
from repro.soap.errors import TransportError
from repro.soap.server import _IDEM_REPLAYS, SoapServer
from repro.soap.transport import HttpTransport


@pytest.fixture()
def service():
    service = MCSService()
    service.catalog.define_attribute("tag", "string")
    return service


@pytest.fixture()
def server(service):
    with SoapServer(service.handle, fault_mapper=service.fault_mapper) as srv:
        yield srv


def counting_handler(counts):
    """An echo service that tallies how many times each method *executed*."""

    def handler(method, args):
        counts[method] = counts.get(method, 0) + 1
        return {"method": method, "args": args}

    return handler


class TestLostReplyDeduplication:
    def test_write_applies_exactly_once(self, service, server, fault_plan):
        fault_plan(FaultPlan([
            FaultRule("soap.http", op="create_logical_file",
                      kind="lost_reply", times=1),
        ]))
        replays_before = _IDEM_REPLAYS.value
        client = MCSClient.connect(*server.endpoint, ClientConfig(
            caller="/O=Grid/CN=chaos",
            retry_policy=RetryPolicy(base_delay_s=0.001, jitter=0.0),
        ))
        try:
            # The first attempt executes server-side but the reply is
            # dropped; the retry carries the same token and must succeed
            # without a second application.
            client.create_logical_file("f1", attributes={"tag": "x"})
        finally:
            client.close()
        assert service.catalog.list_versions("f1") == [1]
        assert _IDEM_REPLAYS.value == replays_before + 1

    def test_tokenless_client_sees_the_hazard(self, service, server, fault_plan):
        """The control: without the resilient wrapper there is no token
        and no retry — the client sees the lost reply as a hard error
        even though the write landed, which is exactly why bare writes
        must never be blindly retried."""
        fault_plan(FaultPlan([
            FaultRule("soap.http", op="create_logical_file",
                      kind="lost_reply", times=1),
        ]))
        client = MCSClient.connect(*server.endpoint, caller="/O=Grid/CN=chaos")
        try:
            with pytest.raises(TransportError):
                client.create_logical_file("f2", attributes={"tag": "x"})
        finally:
            client.close()
        # ...and the write *did* land server-side: the hazard is real.
        assert service.catalog.list_versions("f2") == [1]


class TestHeaderEchoAndReplay:
    def test_server_echoes_the_idempotency_key(self):
        counts = {}
        with SoapServer(counting_handler(counts)) as srv:
            transport = HttpTransport(*srv.endpoint)
            try:
                payload = build_request(
                    "ping", {}, "rid-1", {"IdempotencyKey": "tok-123"}
                )
                result, headers = parse_response_full(
                    transport._post(payload, "ping")
                )
                assert result["method"] == "ping"
                assert headers["IdempotencyKey"] == "tok-123"
            finally:
                transport.close()

    def test_replay_returns_identical_bytes_without_rerunning(self):
        counts = {}
        with SoapServer(counting_handler(counts)) as srv:
            transport = HttpTransport(*srv.endpoint)
            try:
                payload = build_request(
                    "touch", {"n": 1}, "rid-2", {"IdempotencyKey": "tok-replay"}
                )
                first = transport._post(payload, "touch")
                second = transport._post(payload, "touch")
            finally:
                transport.close()
        assert first == second  # replayed bytes, byte-for-byte
        assert counts["touch"] == 1  # the handler ran exactly once

    def test_requests_without_a_token_are_never_deduplicated(self):
        counts = {}
        with SoapServer(counting_handler(counts)) as srv:
            transport = HttpTransport(*srv.endpoint)
            try:
                payload = build_request("touch", {"n": 1}, "rid-3", None)
                transport._post(payload, "touch")
                transport._post(payload, "touch")
            finally:
                transport.close()
        assert counts["touch"] == 2

    def test_failed_requests_are_not_cached(self):
        """Only 200 responses are cached: a transient fault must not
        become sticky for the token's lifetime."""
        attempts = {"n": 0}

        def flaky(method, args):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise SoapFault("Server.Unavailable", "warming up")
            return "ready"

        with SoapServer(flaky) as srv:
            transport = HttpTransport(*srv.endpoint)
            try:
                payload = build_request(
                    "warm", {}, "rid-4", {"IdempotencyKey": "tok-f"}
                )
                with pytest.raises(SoapFault):
                    parse_response_full(transport._post(payload, "warm"))
                result, _ = parse_response_full(transport._post(payload, "warm"))
                assert result == "ready"  # retried for real, not replayed
            finally:
                transport.close()


class TestIdempotencyCacheEviction:
    def test_lru_eviction_bounds_the_cache(self):
        counts = {}
        with SoapServer(
            counting_handler(counts), idempotency_cache_size=2
        ) as srv:
            transport = HttpTransport(*srv.endpoint)
            try:
                for token in ("t1", "t2", "t3"):
                    payload = build_request(
                        "ping", {}, token, {"IdempotencyKey": token}
                    )
                    transport._post(payload, "ping")
                assert len(srv._dispatcher._idem_cache) == 2
                assert "t1" not in srv._dispatcher._idem_cache  # oldest evicted
                assert {"t2", "t3"} <= set(srv._dispatcher._idem_cache)
            finally:
                transport.close()
