"""ResilientTransport: the retry loop, token minting, deadlines, breaker.

All tests use a scripted in-memory inner transport and a recorded
``sleep`` — no wall-clock waits, no server.
"""

from __future__ import annotations

import pytest

from repro.resilience import CircuitBreaker, ResilientTransport, RetryPolicy
from repro.resilience import context as rctx
from repro.soap.envelope import SoapFault
from repro.soap.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EncodingError,
    TransportError,
)


class ScriptedTransport:
    """Raises the scripted exceptions in order, then succeeds forever.

    Records every attempt plus the ambient idempotency key it arrived
    with — which is exactly what the real wire transports forward.
    """

    def __init__(self, failures=()):
        self.failures = list(failures)
        self.calls = []
        self.keys = []

    def call(self, method, args):
        self.calls.append((method, args))
        self.keys.append(rctx.current_idempotency_key())
        if self.failures:
            raise self.failures.pop(0)
        return {"ok": method}

    def call_bulk(self, operations):
        self.calls.append(("__bulk__", list(operations)))
        self.keys.append(rctx.current_idempotency_key())
        if self.failures:
            raise self.failures.pop(0)
        return []

    def close(self):
        self.calls.append(("close", None))


def wrap(inner, **kwargs):
    sleeps = []
    kwargs.setdefault("policy", RetryPolicy(max_attempts=4, base_delay_s=0.001,
                                            max_delay_s=0.01, jitter=0.0))
    transport = ResilientTransport(inner, sleep=sleeps.append, **kwargs)
    return transport, sleeps


class TestRetryLoop:
    def test_flaky_read_recovers(self):
        inner = ScriptedTransport([TransportError("net"), TransportError("net")])
        transport, sleeps = wrap(inner, is_idempotent=lambda m: True)
        assert transport.call("query", {}) == {"ok": "query"}
        assert len(inner.calls) == 3
        assert len(sleeps) == 2
        assert sleeps[0] <= sleeps[1]  # the policy's monotone ladder

    def test_exhausted_reraises_the_last_error(self):
        inner = ScriptedTransport([TransportError(f"n{i}") for i in range(9)])
        transport, _ = wrap(inner, is_idempotent=lambda m: True)
        with pytest.raises(TransportError, match="n3"):
            transport.call("query", {})
        assert len(inner.calls) == 4  # max_attempts

    def test_torn_response_retries_like_transport_error(self):
        inner = ScriptedTransport([EncodingError("truncated envelope")])
        transport, _ = wrap(inner, is_idempotent=lambda m: True)
        assert transport.call("query", {}) == {"ok": "query"}

    def test_retryable_fault_code_retries(self):
        inner = ScriptedTransport([SoapFault("Server.Unavailable", "injected")])
        transport, _ = wrap(inner, is_idempotent=lambda m: True)
        assert transport.call("query", {}) == {"ok": "query"}

    def test_application_fault_is_not_retried(self):
        inner = ScriptedTransport([SoapFault("MCS.NoSuchObject", "nope")])
        transport, _ = wrap(inner, is_idempotent=lambda m: True)
        with pytest.raises(SoapFault, match="nope"):
            transport.call("query", {})
        assert len(inner.calls) == 1


class TestIdempotencyTokens:
    def test_write_mints_one_token_reused_across_retries(self):
        inner = ScriptedTransport([TransportError("a"), TransportError("b")])
        transport, _ = wrap(inner)  # default: every method is a write
        transport.call("create_logical_file", {"name": "f"})
        assert len(inner.keys) == 3
        assert inner.keys[0] is not None
        assert len(set(inner.keys)) == 1  # same token on every attempt

    def test_distinct_logical_calls_get_distinct_tokens(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner)
        transport.call("create_logical_file", {"name": "a"})
        transport.call("create_logical_file", {"name": "b"})
        assert inner.keys[0] != inner.keys[1]

    def test_reads_carry_no_token(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner, is_idempotent=lambda m: True)
        transport.call("query", {})
        assert inner.keys == [None]

    def test_retry_writes_false_means_single_attempt_no_token(self):
        inner = ScriptedTransport([TransportError("net")])
        transport, _ = wrap(
            inner,
            policy=RetryPolicy(max_attempts=4, retry_writes=False, jitter=0.0),
        )
        with pytest.raises(TransportError):
            transport.call("create_logical_file", {"name": "f"})
        assert len(inner.calls) == 1
        assert inner.keys == [None]

    def test_bulk_of_reads_is_idempotent_mixed_is_not(self):
        reads = {"query", "stats"}
        inner = ScriptedTransport()
        transport, _ = wrap(inner, is_idempotent=lambda m: m in reads)
        transport.call_bulk([("query", {}), ("stats", {})])
        transport.call_bulk([("query", {}), ("delete_logical_file", {})])
        assert inner.keys[0] is None       # all-read bulk: no token
        assert inner.keys[1] is not None   # any write in the batch: token

    def test_ambient_key_restored_after_the_call(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner)
        transport.call("create_logical_file", {"name": "f"})
        assert rctx.current_idempotency_key() is None


class TestDeadlines:
    def test_expired_budget_raises_before_touching_the_endpoint(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner, deadline_s=-1.0, is_idempotent=lambda m: True)
        with pytest.raises(DeadlineExceeded):
            transport.call("query", {})
        assert inner.calls == []

    def test_no_retry_when_backoff_would_overrun_the_deadline(self):
        inner = ScriptedTransport([TransportError("net")])
        transport, _ = wrap(
            inner,
            policy=RetryPolicy(max_attempts=4, base_delay_s=30.0,
                               max_delay_s=60.0, jitter=0.0),
            deadline_s=5.0,
            is_idempotent=lambda m: True,
        )
        with pytest.raises(DeadlineExceeded):
            transport.call("query", {})
        assert len(inner.calls) == 1

    def test_ambient_deadline_tightens_the_configured_one(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner, deadline_s=60.0, is_idempotent=lambda m: True)
        with rctx.deadline(-1.0):  # ambient budget already spent
            with pytest.raises(DeadlineExceeded):
                transport.call("query", {})
        assert inner.calls == []

    def test_server_side_deadline_fault_maps_to_deadline_exceeded(self):
        """A ``Server.DeadlineExceeded`` fault is the server enforcing *our*
        budget; it surfaces as DeadlineExceeded, unretried, breaker intact."""
        breaker = CircuitBreaker("ep", failure_threshold=1, reset_timeout_s=999.0)
        inner = ScriptedTransport(
            [SoapFault("Server.DeadlineExceeded", "deadline expired")]
        )
        transport, sleeps = wrap(
            inner, breaker=breaker, is_idempotent=lambda m: True
        )
        with pytest.raises(DeadlineExceeded, match="deadline expired"):
            transport.call("query", {})
        assert len(inner.calls) == 1
        assert sleeps == []
        assert breaker.state == "closed"  # the server answered: healthy

    def test_deadline_exceeded_is_never_retried(self):
        """DeadlineExceeded subclasses TransportError, but the loop raises
        it past the retry machinery — a spent budget can't recover."""
        inner = ScriptedTransport([TransportError("x")] * 3)
        transport, sleeps = wrap(
            inner, deadline_s=-1.0, is_idempotent=lambda m: True
        )
        with pytest.raises(DeadlineExceeded):
            transport.call("query", {})
        assert sleeps == []


class TestBreakerIntegration:
    def test_failures_trip_the_breaker_and_reject_fast(self):
        breaker = CircuitBreaker("ep", failure_threshold=2, reset_timeout_s=999.0)
        inner = ScriptedTransport([TransportError("a"), TransportError("b")])
        transport, _ = wrap(
            inner,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
            breaker=breaker,
            is_idempotent=lambda m: True,
        )
        with pytest.raises(TransportError):
            transport.call("query", {})
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            transport.call("query", {})
        assert len(inner.calls) == 2  # the rejection never reached the inner

    def test_application_fault_counts_as_breaker_success(self):
        breaker = CircuitBreaker("ep", failure_threshold=1)
        inner = ScriptedTransport([SoapFault("MCS.NoSuchObject", "nope")])
        transport, _ = wrap(inner, breaker=breaker, is_idempotent=lambda m: True)
        with pytest.raises(SoapFault):
            transport.call("query", {})
        assert breaker.state == "closed"

    def test_half_open_probe_recovery_closes_the_breaker(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "ep", failure_threshold=1, reset_timeout_s=1.0,
            clock=lambda: clock[0],
        )
        inner = ScriptedTransport([TransportError("down")])
        transport, _ = wrap(
            inner,
            policy=RetryPolicy(max_attempts=1),
            breaker=breaker,
            is_idempotent=lambda m: True,
        )
        with pytest.raises(TransportError):
            transport.call("query", {})
        assert breaker.state == "open"
        clock[0] = 2.0  # reset timeout elapses; next call is the probe
        assert transport.call("query", {}) == {"ok": "query"}
        assert breaker.state == "closed"


class TestProtocolPlumbing:
    def test_close_passes_through(self):
        inner = ScriptedTransport()
        transport, _ = wrap(inner)
        transport.close()
        assert inner.calls == [("close", None)]

    def test_success_path_is_transparent(self):
        inner = ScriptedTransport()
        transport, sleeps = wrap(inner, is_idempotent=lambda m: True)
        assert transport.call("ping", {"a": 1}) == {"ok": "ping"}
        assert inner.calls == [("ping", {"a": 1})]
        assert sleeps == []
