"""Circuit-breaker state machine: unit transitions plus a stateful model.

The clock is injected everywhere so the reset timeout is driven by hand —
no sleeping — and the stateful test mirrors the implementation with a
trivial reference model to check every reachable transition.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make(threshold=3, reset=10.0, probes=1):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "test", failure_threshold=threshold, reset_timeout_s=reset,
        half_open_probes=probes, clock=clock,
    )
    return breaker, clock


class TestTransitions:
    def test_starts_closed_and_admits(self):
        breaker, _ = make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_open_after_consecutive_failures(self):
        breaker, _ = make(threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 2

    def test_open_rejects_until_reset_timeout(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = make(threshold=1)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_probe_failure_reopens_and_restarts_clock(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)  # clock restarted at re-open: still rejecting
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()

    def test_half_open_admits_only_the_probe_quota(self):
        breaker, clock = make(threshold=1, probes=2)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert breaker.probes_in_flight == 2
        assert not breaker.allow()  # quota spent; rejected
        before = breaker.rejections
        assert not breaker.allow()
        assert breaker.rejections == before + 1

    def test_state_property_reflects_timeout_expiry_without_allow(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN  # read-only view; allow() transitions

    def test_straggler_failure_while_open_is_ignored(self):
        breaker, clock = make(threshold=1, reset=10.0)
        breaker.record_failure()
        clock.advance(5.0)
        breaker.record_failure()  # a call admitted before the trip, landing late
        clock.advance(5.0)
        assert breaker.allow()  # reset clock was NOT restarted by the straggler

    def test_reset_forces_closed(self):
        breaker, _ = make(threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_constructor_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class BreakerModel(RuleBasedStateMachine):
    """Drive the breaker against a reference state machine.

    The model tracks (state, streak, probes, opened_at) with the same
    transition rules the docstring promises; every rule cross-checks the
    real breaker's observable state.
    """

    THRESHOLD = 3
    RESET = 10.0
    PROBES = 2

    def __init__(self) -> None:
        super().__init__()
        self.clock = FakeClock()
        self.breaker = CircuitBreaker(
            "model", failure_threshold=self.THRESHOLD,
            reset_timeout_s=self.RESET, half_open_probes=self.PROBES,
            clock=self.clock,
        )
        self.state = CLOSED
        self.streak = 0
        self.probes = 0
        self.opened_at = 0.0
        self.admitted = 0  # calls admitted but not yet resolved

    def _expired(self) -> bool:
        return self.clock.now - self.opened_at >= self.RESET

    @rule()
    def allow(self):
        admitted = self.breaker.allow()
        if self.state == OPEN and self._expired():
            self.state = HALF_OPEN
            self.probes = 0
        if self.state == CLOSED:
            expected = True
        elif self.state == OPEN:
            expected = False
        else:  # HALF_OPEN
            expected = self.probes < self.PROBES
            if expected:
                self.probes += 1
        assert admitted is expected
        if admitted:
            self.admitted += 1

    @rule()
    def succeed(self):
        if self.admitted == 0:
            return
        self.admitted -= 1
        self.breaker.record_success()
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.probes = 0
        self.streak = 0 if self.state == CLOSED else self.streak

    @rule()
    def fail(self):
        if self.admitted == 0:
            return
        self.admitted -= 1
        self.breaker.record_failure()
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.opened_at = self.clock.now
        elif self.state == CLOSED:
            self.streak += 1
            if self.streak >= self.THRESHOLD:
                self.state = OPEN
                self.opened_at = self.clock.now

    @rule()
    def tick(self):
        self.clock.advance(3.0)

    @invariant()
    def states_agree(self):
        expected = self.state
        if expected == OPEN and self._expired():
            expected = HALF_OPEN  # the property reports expiry eagerly
        assert self.breaker.state == expected


TestBreakerModel = BreakerModel.TestCase
TestBreakerModel.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
