"""Fault-injection fixtures for the resilience unit suite."""

from repro.faults.pytest_plugin import fault_plan, no_faults  # noqa: F401
