"""Chaos: 2PC coordinator/participant kills with crash-restart recovery.

Cross-shard writes (file moves between collections on different shards,
atomic multi-shard bulks) run a two-phase commit over durable shard
directories.  This lane kills the protocol at each step with seeded
fault plans, then reopens the catalog over the same directories and
asserts the recovery invariants:

* a kill *before* the decision is a presumed abort — the write never
  happened, no prepare records survive restart;
* a kill *after* the decision is replayed on restart — the write lands
  exactly once, with every attribute intact;
* a same-shard move never engages 2PC, so even a kill-everything plan
  cannot touch it.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, active
from repro.core import ObjectType
from repro.shard import build_sharded_catalog
from repro.shard.twopc import ShardOp
from repro.soap.errors import TransportError

pytestmark = pytest.mark.chaos

COLLECTIONS = tuple(f"col{i}" for i in range(6))
ATTRS = {"owner": "chaos", "size": 42}


def open_catalog(directory, shards):
    catalog = build_sharded_catalog(
        shards, directory=str(directory), durable_sync=True
    )
    return catalog


def prepare(catalog):
    catalog.define_attribute("owner", "string")
    catalog.define_attribute("size", "int")
    for name in COLLECTIONS:
        catalog.create_collection(name)
    return catalog


def cross_shard_pair(catalog):
    """A (name, collection) whose move is guaranteed to cross shards."""
    for i in range(64):
        name = f"mv-{i:02d}"
        home = catalog.map.shard_for_file(name, None)
        for coll in COLLECTIONS:
            if catalog.map.shard_for_file(name, coll) != home:
                return name, coll
    raise AssertionError("no cross-shard (name, collection) pair found")


@pytest.mark.parametrize("shards", (2, 4))
def test_coordinator_killed_before_decision_presumed_abort(
    tmp_path, no_faults, shards
):
    catalog = prepare(open_catalog(tmp_path, shards))
    name, coll = cross_shard_pair(catalog)
    catalog.create_file(name, attributes=ATTRS)

    plan = FaultPlan.parse("seed=11;shard.2pc:decide=error@1.0")
    with active(plan):
        with pytest.raises(TransportError):
            catalog.move_file_to_collection(name, coll)

    # No decision was logged: the move never happened.
    assert name not in catalog.list_collection(coll)
    assert catalog.get_attributes(ObjectType.FILE, name) == ATTRS
    catalog.close()

    reopened = open_catalog(tmp_path, shards)
    try:
        assert reopened.recovery_stats == {"replayed": 0, "discarded": 0}
        assert reopened.coordinator.pending() == {}
        assert name not in reopened.list_collection(coll)
        assert reopened.get_attributes(ObjectType.FILE, name) == ATTRS
    finally:
        reopened.close()


@pytest.mark.parametrize("shards", (2, 4))
def test_participant_killed_mid_prepare_aborts_cleanly(
    tmp_path, no_faults, shards
):
    catalog = prepare(open_catalog(tmp_path, shards))
    name, coll = cross_shard_pair(catalog)
    catalog.create_file(name, attributes=ATTRS)
    source = catalog.map.shard_for_file(name, None)
    target = catalog.map.shard_for_file(name, coll)
    # Kill the *second* prepare: the first participant has already
    # durably prepared, so abort must clean its record up.
    later = max(source, target)

    plan = FaultPlan.parse(f"seed=12;shard.2pc:prepare:{later}=error@1.0")
    with active(plan):
        with pytest.raises(TransportError):
            catalog.move_file_to_collection(name, coll)
    assert catalog.coordinator.pending() == {}
    assert catalog.get_attributes(ObjectType.FILE, name) == ATTRS
    catalog.close()

    reopened = open_catalog(tmp_path, shards)
    try:
        assert reopened.recovery_stats == {"replayed": 0, "discarded": 0}
        assert name not in reopened.list_collection(coll)
        assert reopened.file_exists(name)
    finally:
        reopened.close()


@pytest.mark.parametrize("shards", (2, 4))
def test_participant_killed_after_decision_is_replayed_on_restart(
    tmp_path, no_faults, shards
):
    catalog = prepare(open_catalog(tmp_path, shards))
    name, coll = cross_shard_pair(catalog)
    catalog.create_file(name, attributes=ATTRS)
    source = catalog.map.shard_for_file(name, None)
    target = catalog.map.shard_for_file(name, coll)
    # Participants apply in index order; killing the larger index leaves
    # exactly one prepared-but-unapplied shard behind the commit decision.
    later = max(source, target)

    plan = FaultPlan.parse(f"seed=13;shard.2pc:apply:{later}=error@1.0")
    with active(plan):
        with pytest.raises(TransportError):
            catalog.move_file_to_collection(name, coll)
    catalog.close()

    reopened = open_catalog(tmp_path, shards)
    try:
        # The commit decision survived, so recovery finishes the move.
        assert reopened.recovery_stats == {"replayed": 1, "discarded": 0}
        assert reopened.coordinator.pending() == {}
        assert name in reopened.list_collection(coll)
        assert reopened.get_attributes(ObjectType.FILE, name) == ATTRS
        # Exactly one copy: the source shard's delete was applied too.
        assert sum(
            1 for shard in reopened.shards if shard.file_exists(name)
        ) == 1
    finally:
        reopened.close()


@pytest.mark.parametrize("shards", (2, 4))
def test_orphaned_prepare_without_decision_is_discarded(
    tmp_path, no_faults, shards
):
    """A prepare record that never reached a decision (crash between the
    participant insert and the coordinator log append) is thrown away."""
    catalog = prepare(open_catalog(tmp_path, shards))
    catalog.create_file("orphan-src", attributes=ATTRS)
    catalog.coordinator._write_prepare(
        0,
        "txn-never-decided",
        [ShardOp("create_file", {"name": "orphan-new"})],
    )
    assert catalog.coordinator.pending() == {0: ["txn-never-decided"]}
    catalog.close()

    reopened = open_catalog(tmp_path, shards)
    try:
        assert reopened.recovery_stats == {"replayed": 0, "discarded": 1}
        assert reopened.coordinator.pending() == {}
        assert not reopened.file_exists("orphan-new")
        assert reopened.file_exists("orphan-src")
    finally:
        reopened.close()


@pytest.mark.parametrize("shards", (2, 4))
def test_atomic_cross_shard_bulk_killed_at_decision_commits_nothing(
    tmp_path, no_faults, shards
):
    catalog = prepare(open_catalog(tmp_path, shards))
    # Enough fresh names to guarantee the batch spans shards.
    entries = [
        {"name": f"blk-{i:02d}", "attributes": {"owner": "chaos"}}
        for i in range(8)
    ]
    homes = {catalog.map.shard_for_file(e["name"], None) for e in entries}
    assert len(homes) > 1, "batch routed to one shard; widen the name set"

    plan = FaultPlan.parse("seed=14;shard.2pc:decide=error@1.0")
    with active(plan):
        with pytest.raises(TransportError):
            catalog.bulk_create_files(entries, atomic=True)
    for entry in entries:
        assert not catalog.file_exists(entry["name"])
    catalog.close()

    reopened = open_catalog(tmp_path, shards)
    try:
        assert reopened.recovery_stats == {"replayed": 0, "discarded": 0}
        for entry in entries:
            assert not reopened.file_exists(entry["name"])
    finally:
        reopened.close()


def test_same_shard_move_never_engages_2pc(tmp_path, no_faults):
    """With one shard every move is local: a kill-everything 2PC plan
    cannot touch it because the protocol never runs."""
    catalog = prepare(open_catalog(tmp_path, 1))
    catalog.create_file("local", attributes=ATTRS)

    plan = FaultPlan.parse("seed=15;shard.2pc:*=error@1.0")
    with active(plan):
        catalog.move_file_to_collection("local", "col0")
    try:
        assert "local" in catalog.list_collection("col0")
        assert catalog.get_attributes(ObjectType.FILE, "local") == ATTRS
        assert catalog.coordinator.pending() == {}
    finally:
        catalog.close()
