"""Chaos x observability: a chaos run must be explainable from its trace.

The contract under test: every fault the plan injects is stamped onto
some span as a ``fault <id> kind=<kind>`` annotation, and the assembled
trace of the whole run has no orphan spans — so an operator reading the
waterfall of a rough ride sees *exactly* which calls were hit, where the
retries happened, and nothing is missing from the story.
"""

from __future__ import annotations

import pytest

from repro.core import ObjectQuery
from repro.core.catalog import MetadataCatalog
from repro.core.client import ClientConfig, MCSClient
from repro.core.service import MCSService
from repro.db import Database
from repro.db.replication import Replica, ReplicationPublisher
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode
from repro.obs import trace
from repro.resilience import RetryPolicy
from repro.soap.server import SoapServer

pytestmark = pytest.mark.chaos

FLAT_RETRIES = RetryPolicy(
    max_attempts=8, base_delay_s=0.0, max_delay_s=0.0, jitter=0.0
)


def fault_ids_annotated(spans) -> set[str]:
    """Every fault id stamped onto any span (``fault <id> kind=...``)."""
    ids = set()
    for s in spans:
        for note in s["annotations"]:
            if note.startswith("fault "):
                ids.add(note.split()[1])
    return ids


def test_every_injected_fault_is_visible_in_the_assembled_trace(
    no_faults, fault_plan
):
    original_ring = trace.span_ring_capacity()
    trace.set_span_ring_size(8192)  # the run must not evict its own story
    trace.clear_spans()

    primary = Database()
    publisher = ReplicationPublisher(primary)
    replica = Replica("tr-replica", retry_policy=FLAT_RETRIES)
    publisher.add_replica(replica)
    service = MCSService(MetadataCatalog(primary))
    server = SoapServer(
        service.handle,
        description=service.description(),
        fault_mapper=service.fault_mapper,
    )
    server.start()

    members = {}
    for catalog_id in ("isi", "cern"):
        member = LocalMCS(catalog_id)
        member.client.define_attribute("experiment", "string")
        member.client.create_logical_file(
            f"{catalog_id}-f1", attributes={"experiment": "pulsar"}
        )
        members[catalog_id] = member
    fed = FederatedMCS(
        MCSIndexNode(), members,
        retry_policy=FLAT_RETRIES, sleep=lambda s: None,
    )
    fed.refresh_all()

    plan = fault_plan(
        "seed=23"
        ";soap.http:*=error@0.2"
        ";repl.ship:tr-replica=error@0.4"
        ";fed.query:*=error@0.3"
    )
    client = MCSClient.connect(
        server.host, server.port,
        ClientConfig(caller="chaos", retry_policy=FLAT_RETRIES),
    )
    try:
        with trace.span("chaos-run") as root:
            for i in range(10):
                client.create_logical_file(f"chaos-{i}")  # ships synchronously
            pulsar = ObjectQuery().where("experiment", "=", "pulsar")
            for _ in range(5):
                assert set(fed.query(pulsar)) == {"isi", "cern"}

        assert plan.injected > 0, "the plan never fired; the run proved nothing"

        spans = trace.recent_spans(trace_id=root.trace_id)
        annotated = fault_ids_annotated(spans)
        for fid in plan.events:
            assert fid in annotated, (
                f"injected fault {fid} left no span annotation; "
                f"annotated={sorted(annotated)}"
            )
        # Retried transport faults also left their retry breadcrumbs.
        assert any(
            note.startswith("retry attempt=")
            for s in spans for note in s["annotations"]
        )
        # The run assembles into one complete tree: nothing orphaned, a
        # single root, every hop reachable from it.
        tree = trace.assemble_trace(spans)
        assert tree["orphans"] == []
        assert [s["name"] for s in tree["roots"]] == ["chaos-run"]
        names = {s["name"] for s in spans}
        assert {"client.call", "soap.server", "repl.ship", "fed.subquery"} <= names
    finally:
        client.close()
        server.stop()
        publisher.close()
        trace.set_span_ring_size(original_ring)
        trace.clear_spans()
