"""Chaos: secondary-index maintenance under injected WAL-append faults.

Every attribute write maintains three things in one engine transaction:
the EAV row, the ``av_*`` secondary index entries and the incremental
``attribute_stats`` row.  A ``db.wal:append`` fault fails the commit
*after* the in-memory work is staged — the catalog must roll all three
back together, and the write-ahead log must never see a torn triple.

The test drives a seeded workload against a durable catalog at a 30%
WAL-fault rate, mirrors every *successful* operation into a fault-free
in-memory oracle, then crash-reopens the directory (WAL replay) and
asserts all three MQL execution strategies agree with the oracle —
before and after an exact ``analyze_attributes()`` repair, which must
be a no-op for answers.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MetadataCatalog, ObjectType
from repro.db import Database
from repro.faults import FaultPlan, active
from repro.soap.errors import TransportError

pytestmark = pytest.mark.chaos

STR_VALUES = ("x", "y", "z")
INT_VALUES = (1, 2, 3)

STATEMENTS = (
    "files order by name",
    "files where a_int = 1",
    "files where a_int = 2 and a_str = \"y\"",
    "files where a_str like \"x%\" or a_int between 2 and 3 order by name",
    "(files where a_int = 1) union (files where a_str = \"z\") order by name",
    "(files where a_int != 3) minus (files where a_str = \"y\")",
)


def _prepare(catalog):
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    return catalog


def _chaos_workload(rng, durable, oracle):
    """Seeded op mix; an op reaches the oracle only if the durable
    catalog acknowledged it (WAL-failed commits roll back completely)."""
    names: list[str] = []
    for step in range(120):
        action = rng.randrange(6)
        if action <= 1 or not names:
            name = f"c-{step:03d}"
            attrs = {
                "a_str": rng.choice(STR_VALUES),
                "a_int": rng.choice(INT_VALUES),
            }
            try:
                durable.create_file(name, attributes=attrs)
            except TransportError:
                continue
            oracle.create_file(name, attributes=attrs)
            names.append(name)
        elif action == 2:
            name = rng.choice(names)
            attrs = {"a_int": rng.choice(INT_VALUES)}
            try:
                durable.set_attributes(ObjectType.FILE, name, attrs)
            except TransportError:
                continue
            oracle.set_attributes(ObjectType.FILE, name, attrs)
        elif action == 3:
            name = rng.choice(names)
            attr = rng.choice(("a_str", "a_int"))
            try:
                durable.remove_attribute(ObjectType.FILE, name, attr)
            except TransportError:
                continue
            oracle.remove_attribute(ObjectType.FILE, name, attr)
        elif action == 4:
            name = rng.choice(names)
            try:
                durable.delete_file(name)
            except TransportError:
                continue
            oracle.delete_file(name)
            names.remove(name)
        else:
            # Poisoned non-atomic bulk: the middle item's savepoint rolls
            # back, neighbours commit — unless the WAL fails the whole
            # batch at commit, in which case nothing may survive.
            items = [
                {"name": rng.choice(names),
                 "attributes": {"a_str": rng.choice(STR_VALUES)}},
                {"name": "missing", "attributes": {"a_str": "x"}},
                {"name": rng.choice(names),
                 "attributes": {"a_int": rng.choice(INT_VALUES)}},
            ]
            try:
                outcomes = durable.bulk_set_attributes(items, atomic=False)
            except TransportError:
                continue
            mirror = oracle.bulk_set_attributes(items, atomic=False)
            assert [ok for ok, _ in outcomes] == [ok for ok, _ in mirror]
    assert names, "chaos workload created no files"


@pytest.mark.parametrize("seed", (5, 41))
def test_index_maintenance_converges_after_wal_faults(tmp_path, no_faults, seed):
    durable = _prepare(
        MetadataCatalog(Database(directory=str(tmp_path), durable_sync=True))
    )
    oracle = _prepare(MetadataCatalog())
    oracle.mql_strategy = "scan"

    plan = FaultPlan.parse(f"seed={seed};db.wal:append=error@0.3")
    with active(plan):
        _chaos_workload(random.Random(seed), durable, oracle)
    del durable  # crash: no close, no checkpoint — recovery is WAL-only

    reopened = MetadataCatalog(Database(directory=str(tmp_path)))
    try:
        expected = {s: oracle.query_mql(s) for s in STATEMENTS}
        for statement in STATEMENTS:
            for strategy in ("index", "join", "scan"):
                reopened.mql_strategy = strategy
                assert reopened.query_mql(statement) == expected[statement], (
                    f"{strategy} diverges after WAL-fault replay "
                    f"for {statement!r}"
                )
        # The incremental statistics survived the same WAL discipline;
        # an exact recompute must not change a single answer.
        reopened.analyze_attributes()
        reopened.mql_strategy = "index"
        for statement in STATEMENTS:
            assert reopened.query_mql(statement) == expected[statement]
    finally:
        reopened.db.close()
        oracle.db.close()
