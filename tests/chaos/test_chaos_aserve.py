"""Chaos: the asyncio front end under the 5% transport-fault plan.

Substitutes :class:`AsyncSoapServer` into the bulk-chaos acceptance run,
for both client flavors: the resilient sync client (threaded transport,
asyncio server) and the resilient async client (coroutine transport,
asyncio server).  In both pairings the seeded plan must fire, no
transport error may escape, and the catalog must converge to the
fault-free end state.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import faults
from repro.aserve import AsyncSoapServer
from repro.core import (
    AsyncMCSClient,
    ClientConfig,
    MCSClient,
    MCSService,
    ObjectQuery,
)
from repro.faults import FaultPlan
from repro.resilience import CircuitBreaker, RetryPolicy

pytestmark = pytest.mark.chaos

#: Same mix as the threaded acceptance run in test_chaos_bulk.py.
PLAN_SPEC = (
    "seed=2003;"
    "soap.http:*=error@0.02;"
    "soap.http:*=fault@0.01,code=Server.Unavailable;"
    "soap.http:*=torn@0.01;"
    "soap.http:*=lost_reply@0.01"
)

RESILIENT = ClientConfig(
    caller="/O=Grid/CN=chaos-aserve",
    retry_policy=RetryPolicy(
        max_attempts=8, base_delay_s=0.001, max_delay_s=0.01, jitter=0.0
    ),
    # Generous threshold: the lane tests convergence, not tripping.
    breaker=CircuitBreaker("chaos-aserve", failure_threshold=1000),
)


def fresh_service() -> MCSService:
    service = MCSService()
    service.catalog.define_attribute("round", "int")
    service.catalog.define_attribute("state", "string")
    return service


def run_workload(client: MCSClient, rounds: int = 6, batch: int = 8) -> None:
    """Deterministic bulk churn: create batches, tag them, delete half."""
    for r in range(rounds):
        names = [f"chaos-{r}-{i}" for i in range(batch)]
        client.bulk_create_files(
            [{"name": name, "attributes": {"round": r}} for name in names]
        )
        client.bulk_set_attributes(
            [
                {"object_type": "file", "name": name,
                 "attributes": {"state": "tagged"}}
                for name in names[::2]
            ]
        )
        with client.bulk() as deletes:
            for name in names[1::2]:
                deletes.call("delete_logical_file", name=name)


async def run_workload_async(
    client: AsyncMCSClient, rounds: int = 6, batch: int = 8
) -> None:
    """The same churn, awaited."""
    for r in range(rounds):
        names = [f"chaos-{r}-{i}" for i in range(batch)]
        await client.bulk_create_files(
            [{"name": name, "attributes": {"round": r}} for name in names]
        )
        await client.bulk_set_attributes(
            [
                {"object_type": "file", "name": name,
                 "attributes": {"state": "tagged"}}
                for name in names[::2]
            ]
        )
        async with client.bulk() as deletes:
            for name in names[1::2]:
                deletes.call("delete_logical_file", name=name)


def snapshot(service: MCSService) -> list[tuple]:
    """(name, attributes) for every surviving file, in name order."""
    client = MCSClient.in_process(service, caller="/O=Grid/CN=snap")
    names = sorted(client.query(ObjectQuery().where("round", ">=", 0)))
    return [(n, client.get_attributes("file", n)) for n in names]


def baseline_snapshot() -> list[tuple]:
    service = fresh_service()
    with AsyncSoapServer(
        service.handle, fault_mapper=service.fault_mapper
    ) as srv:
        client = MCSClient.connect(
            *srv.endpoint, ClientConfig(caller="/O=Grid/CN=chaos-aserve")
        )
        try:
            run_workload(client)
        finally:
            client.close()
    baseline = snapshot(service)
    assert baseline, "baseline workload produced no files"
    return baseline


def test_sync_client_converges_through_the_async_front_end(no_faults):
    baseline = baseline_snapshot()

    chaos_service = fresh_service()
    plan = FaultPlan.parse(PLAN_SPEC)
    with AsyncSoapServer(
        chaos_service.handle, fault_mapper=chaos_service.fault_mapper
    ) as srv:
        client = MCSClient.connect(*srv.endpoint, RESILIENT)
        try:
            with faults.active(plan):
                run_workload(client)
        finally:
            client.close()

    assert plan.injected > 0, "the 5% plan never fired; the run proved nothing"
    assert snapshot(chaos_service) == baseline


def test_async_client_converges_through_the_async_front_end(no_faults):
    baseline = baseline_snapshot()

    chaos_service = fresh_service()
    plan = FaultPlan.parse(PLAN_SPEC)

    async def main() -> None:
        async with AsyncMCSClient.connect(*srv.endpoint, RESILIENT) as client:
            await run_workload_async(client)

    with AsyncSoapServer(
        chaos_service.handle, fault_mapper=chaos_service.fault_mapper
    ) as srv:
        with faults.active(plan):
            asyncio.run(main())

    assert plan.injected > 0, "the 5% plan never fired; the run proved nothing"
    assert snapshot(chaos_service) == baseline
