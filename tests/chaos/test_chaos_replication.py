"""Chaos: WAL shipping under injected shipment faults.

The replication contract under fire: a replica whose shipments keep
failing must still converge to the primary's exact state — batches land
whole, in commit order, exactly once — because the ship loop retries the
*same* batch in place until it applies.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.db import Database
from repro.db.replication import Replica, ReplicationPublisher
from repro.faults import FaultPlan
from repro.resilience import RetryPolicy
from repro.soap.errors import TransportError

pytestmark = pytest.mark.chaos


def table_rows(database: Database) -> list[tuple]:
    return database.connect().execute(
        "SELECT id, v FROM t ORDER BY id"
    ).fetchall()


def run_commits(primary: Database, n: int = 30) -> None:
    conn = primary.connect()
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
    for i in range(n):
        if i % 5 == 4:
            conn.execute(f"UPDATE t SET v = 'u{i}' WHERE id = {i - 2}")
        else:
            conn.execute(f"INSERT INTO t (id, v) VALUES ({i}, 'v{i}')")


def test_async_replica_converges_despite_shipping_faults(no_faults):
    primary = Database()
    publisher = ReplicationPublisher(primary)
    replica = Replica(
        "r-chaos", asynchronous=True,
        retry_policy=RetryPolicy(max_attempts=6, base_delay_s=0.0005,
                                 max_delay_s=0.005, jitter=0.0),
    )
    publisher.add_replica(replica)
    plan = FaultPlan.parse("seed=11;repl.ship:r-chaos=error@0.3")
    try:
        with faults.active(plan):
            run_commits(primary)
            publisher.flush_all(timeout=10.0)
        assert plan.injected > 0, "no shipment ever failed; nothing proven"
        assert table_rows(replica.database) == table_rows(primary)
        # Exactly-once: every published batch applied once, none twice.
        assert replica.applied_batches == publisher.batches_published
    finally:
        publisher.close()


def test_sync_replica_surfaces_exhausted_retries_to_the_commit(no_faults):
    """The bounded (synchronous) path gives up after the policy's budget
    and propagates — a silent half-replicated commit would be worse."""
    primary = Database()
    publisher = ReplicationPublisher(primary)
    replica = Replica(
        "r-sync",
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                 max_delay_s=0.0, jitter=0.0),
    )
    publisher.add_replica(replica)
    plan = FaultPlan.parse("repl.ship:r-sync=error")  # rate 1.0: always fails
    try:
        conn = primary.connect()
        with faults.active(plan):
            with pytest.raises(TransportError):
                conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        # Nothing half-applied on the replica: the injection point sits
        # before the batch touches any row.
        assert replica.applied_batches == 0
        assert replica.database.catalog.table_names() == []
    finally:
        publisher.close()


def test_replica_applies_in_commit_order_under_faults(no_faults):
    """Interleaved dependent statements: order violations would surface
    as apply errors or wrong final values."""
    primary = Database()
    publisher = ReplicationPublisher(primary)
    replica = Replica("r-order", asynchronous=True)
    publisher.add_replica(replica)
    plan = FaultPlan.parse("seed=5;repl.ship:r-order=error@0.4")
    try:
        conn = primary.connect()
        with faults.active(plan):
            conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
            conn.execute("INSERT INTO t (id, v) VALUES (1, 'a')")
            for i in range(20):
                conn.execute(f"UPDATE t SET v = 'step{i}' WHERE id = 1")
            publisher.flush_all(timeout=10.0)
        assert table_rows(replica.database) == [(1, "step19")]
    finally:
        publisher.close()
