"""Fault-injection fixtures for the chaos lane.

Each module here carries ``pytestmark = pytest.mark.chaos`` (run the
lane alone with ``-m chaos``).  Plans are seeded and deterministic, so
the lane is reproducible: a failure's seed is in the test source, not in
the weather.
"""

from repro.faults.pytest_plugin import fault_plan, no_faults  # noqa: F401
