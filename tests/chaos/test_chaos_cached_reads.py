"""Chaos: cached reads under write churn with injected transport faults.

Strict consistency is the read cache's contract; this run makes sure
fault-driven retries don't bend it.  Every read that *returns* must
reflect the latest committed write, even when the read (or the write)
needed several attempts to get through — a retried, cache-served read
that returned a pre-write value would fail the assertion immediately.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import ClientConfig, MCSClient, MCSService, ObjectQuery
from repro.faults import FaultPlan
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.core.client import is_read_method

pytestmark = pytest.mark.chaos

#: Reads fail at ~6% across kinds; set_attributes additionally sees
#: lost replies, which on the direct transport re-execute the handler —
#: safe here precisely because set_attributes is naturally idempotent.
PLAN_SPEC = (
    "seed=77;"
    "soap.direct:query=error@0.04;"
    "soap.direct:query=lost_reply@0.02;"
    "soap.direct:get_attributes=error@0.04;"
    "soap.direct:set_attributes=lost_reply@0.03"
)


def test_reads_stay_strictly_consistent_under_faults(no_faults):
    service = MCSService()
    service.catalog.define_attribute("state", "int")
    assert service.catalog.cache.enabled

    setup = MCSClient.in_process(service, caller="/O=Grid/CN=setup")
    for i in range(4):
        setup.create_logical_file(f"cc-{i}", attributes={"state": 0})

    client = MCSClient.in_process(service, ClientConfig(
        caller="/O=Grid/CN=chaos",
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay_s=0.0005, max_delay_s=0.005, jitter=0.0
        ),
        breaker=CircuitBreaker("chaos-cache", failure_threshold=1000),
    ))
    plan = FaultPlan.parse(PLAN_SPEC)
    with faults.active(plan):
        for step in range(1, 41):
            name = f"cc-{step % 4}"
            client.set_attributes("file", name, {"state": step})
            # The read cache may serve this query — but only at the
            # current generation, so the new value must be visible.
            attrs = client.get_attributes("file", name)
            assert attrs["state"] == step, (
                f"stale read at step {step}: {attrs}"
            )
            matches = client.query(ObjectQuery().where("state", "=", step))
            assert matches == [name]
    assert plan.injected > 0, "the plan never fired; the run proved nothing"
    assert is_read_method("query") and is_read_method("get_attributes")
