"""Chaos under the lock-order sanitizer: fault paths take no shortcuts.

Retry loops, breaker bookkeeping and the server's idempotency cache all
add locking to the hot path; this run replays the bulk chaos workload
with the runtime sanitizer installed to prove the *failure* paths (which
ordinary runs rarely exercise) acquire engine locks in consistent order
and never time out.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer

from tests.chaos.test_chaos_bulk import (
    test_bulk_chaos_converges_to_the_fault_free_state as _bulk_chaos,
)

pytestmark = [pytest.mark.chaos, pytest.mark.sanitizer]


def test_bulk_chaos_under_sanitizer(no_faults) -> None:
    with sanitizer.enabled() as active:
        _bulk_chaos(no_faults)
    assert active.violations == 0
    assert active.timeouts_observed == 0
    assert active.order_graph(), "chaos run never touched instrumented locks"
