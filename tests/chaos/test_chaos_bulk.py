"""Chaos: bulk write workload over HTTP at a 5% transport-fault rate.

The acceptance run for the fault engine: the same seeded workload runs
fault-free and under a mixed 5% fault plan (errors, retryable server
faults, torn responses, lost replies); the resilient client must absorb
every injected failure — no TransportError escapes — and the catalog
must converge to the fault-free end state with zero duplicate writes.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import ClientConfig, MCSClient, MCSService, ObjectQuery
from repro.faults import FaultPlan
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.soap.server import SoapServer

pytestmark = pytest.mark.chaos

#: The acceptance plan: ~5% of HTTP calls fail, spread over every
#: client-visible failure mode (hard error, retryable server fault,
#: torn response, lost reply).
PLAN_SPEC = (
    "seed=2003;"
    "soap.http:*=error@0.02;"
    "soap.http:*=fault@0.01,code=Server.Unavailable;"
    "soap.http:*=torn@0.01;"
    "soap.http:*=lost_reply@0.01"
)


def run_workload(client: MCSClient, rounds: int = 6, batch: int = 8) -> None:
    """Deterministic bulk churn: create batches, tag them, delete half."""
    for r in range(rounds):
        names = [f"chaos-{r}-{i}" for i in range(batch)]
        client.bulk_create_files(
            [{"name": name, "attributes": {"round": r}} for name in names]
        )
        client.bulk_set_attributes(
            [
                {"object_type": "file", "name": name,
                 "attributes": {"state": "tagged"}}
                for name in names[::2]
            ]
        )
        with client.bulk() as deletes:
            for name in names[1::2]:
                deletes.call("delete_logical_file", name=name)


def snapshot(service: MCSService) -> list[tuple]:
    """(name, attributes) for every surviving file, in name order."""
    client = MCSClient.in_process(service, caller="/O=Grid/CN=snap")
    names = sorted(client.query(ObjectQuery().where("round", ">=", 0)))
    return [(n, client.get_attributes("file", n)) for n in names]


def fresh_service() -> MCSService:
    service = MCSService()
    service.catalog.define_attribute("round", "int")
    service.catalog.define_attribute("state", "string")
    return service


def test_bulk_chaos_converges_to_the_fault_free_state(no_faults):
    baseline_service = fresh_service()
    with SoapServer(
        baseline_service.handle, fault_mapper=baseline_service.fault_mapper
    ) as srv:
        client = MCSClient.connect(*srv.endpoint, caller="/O=Grid/CN=base")
        try:
            run_workload(client)
        finally:
            client.close()
    baseline = snapshot(baseline_service)
    assert baseline, "baseline workload produced no files"

    chaos_service = fresh_service()
    plan = FaultPlan.parse(PLAN_SPEC)
    with SoapServer(
        chaos_service.handle, fault_mapper=chaos_service.fault_mapper
    ) as srv:
        client = MCSClient.connect(*srv.endpoint, ClientConfig(
            caller="/O=Grid/CN=base",
            retry_policy=RetryPolicy(
                max_attempts=8, base_delay_s=0.001, max_delay_s=0.01, jitter=0.0
            ),
            # Generous threshold: the lane tests convergence, not tripping.
            breaker=CircuitBreaker("chaos-bulk", failure_threshold=1000),
        ))
        try:
            with faults.active(plan):
                # Zero unhandled TransportError: any escape fails the test.
                run_workload(client)
        finally:
            client.close()

    assert plan.injected > 0, "the 5% plan never fired; the run proved nothing"
    # Convergence: same survivors, same attributes, no duplicates (a
    # double-applied create would have raised AlreadyExists and escaped;
    # a double delete would have raised NoSuchObject).
    assert snapshot(chaos_service) == baseline
