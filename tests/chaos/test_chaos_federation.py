"""Chaos: federated scatter under per-member faults.

Graceful degradation is the federation contract: a broken member is
skipped and reported (``partial=True``) instead of sinking the whole
scatter, the member's breaker stops hammering it, and a recovered
member rejoins after the breaker's reset timeout.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import ObjectQuery
from repro.faults import FaultPlan, FaultRule
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.soap.errors import TransportError

pytestmark = pytest.mark.chaos


def make_member(catalog_id, experiment, runs):
    member = LocalMCS(catalog_id)
    member.client.define_attribute("experiment", "string")
    member.client.define_attribute("run", "int")
    for run in runs:
        member.client.create_logical_file(
            f"{catalog_id}-{experiment}-r{run}",
            attributes={"experiment": experiment, "run": run},
        )
    return member


def build_federation(**kwargs):
    members = {
        "isi": make_member("isi", "pulsar", [1, 2, 3]),
        "ncar": make_member("ncar", "climate", [10, 11]),
        "cern": make_member("cern", "pulsar", [7]),
    }
    fed = FederatedMCS(MCSIndexNode(), members, **kwargs)
    fed.refresh_all()
    return fed


PULSAR = ObjectQuery().where("experiment", "=", "pulsar")


class TestGracefulDegradation:
    def test_broken_member_is_skipped_and_flagged_partial(self, no_faults):
        fed = build_federation(sleep=lambda s: None)
        plan = FaultPlan([FaultRule("fed.query", op="cern", kind="error")])
        with faults.active(plan):
            outcome = fed.query_detailed(PULSAR)
        assert outcome.partial
        assert set(outcome.results) == {"isi"}
        assert "cern" in outcome.skipped
        assert "TransportError" in outcome.skipped["cern"]

    def test_strict_query_still_raises(self, no_faults):
        fed = build_federation(sleep=lambda s: None)
        plan = FaultPlan([FaultRule("fed.query", op="cern", kind="error")])
        with faults.active(plan):
            with pytest.raises(TransportError):
                fed.query(PULSAR)

    def test_transient_member_fault_is_retried_to_success(self, no_faults):
        fed = build_federation(
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.0,
                                     max_delay_s=0.0, jitter=0.0),
            sleep=lambda s: None,
        )
        plan = FaultPlan([
            FaultRule("fed.query", op="cern", kind="error", times=2),
        ])
        with faults.active(plan):
            outcome = fed.query_detailed(PULSAR)
        assert not outcome.partial
        assert set(outcome.results) == {"isi", "cern"}
        assert outcome.results["cern"] == ["cern-pulsar-r7"]

    def test_seeded_five_percent_rate_matches_fault_free_results(self, no_faults):
        baseline = build_federation(sleep=lambda s: None).query_detailed(PULSAR)
        assert not baseline.partial

        fed = build_federation(
            retry_policy=RetryPolicy(max_attempts=6, base_delay_s=0.0,
                                     max_delay_s=0.0, jitter=0.0),
            breaker_factory=lambda cid: CircuitBreaker(
                f"fed:{cid}", failure_threshold=1000
            ),
            sleep=lambda s: None,
        )
        plan = FaultPlan.parse("seed=31;fed.query:*=error@0.05")
        with faults.active(plan):
            for _ in range(40):
                outcome = fed.query_detailed(PULSAR)
                assert not outcome.partial
                assert outcome.results == baseline.results
        assert plan.injected > 0, "the plan never fired; the run proved nothing"


class TestBreakerLifecycle:
    def test_failing_member_trips_its_breaker_then_recovers(self, no_faults):
        clock = [0.0]
        fed = build_federation(
            breaker_factory=lambda cid: CircuitBreaker(
                f"fed:{cid}", failure_threshold=2, reset_timeout_s=5.0,
                clock=lambda: clock[0],
            ),
            sleep=lambda s: None,
        )
        plan = FaultPlan([
            FaultRule("fed.query", op="cern", kind="error", times=2),
        ])
        with faults.active(plan):
            # Two scatters fail cern; the second trips its breaker.
            for _ in range(2):
                outcome = fed.query_detailed(PULSAR)
                assert "cern" in outcome.skipped
            # Open breaker: cern rejected without a subquery.
            issued = fed.subqueries_issued
            outcome = fed.query_detailed(PULSAR)
            assert outcome.skipped.get("cern") == "circuit-open"
            assert fed.subqueries_issued == issued + 1  # isi only
            # Healthy members were never affected.
            assert outcome.results["isi"] == [
                "isi-pulsar-r1", "isi-pulsar-r2", "isi-pulsar-r3",
            ]
        # The fault budget is exhausted and the reset timeout elapses:
        # the next scatter probes cern and it rejoins the federation.
        clock[0] = 6.0
        outcome = fed.query_detailed(PULSAR)
        assert not outcome.partial
        assert set(outcome.results) == {"isi", "cern"}
        assert fed.breaker("cern").state == "closed"
