"""Tests for the DAG used by workflow planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pegasus.dag import DAG, CycleDetectedError


class TestConstruction:
    def test_add_nodes_and_edges(self):
        dag = DAG()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        assert dag.successors("a") == {"b"}
        assert dag.predecessors("c") == {"b"}
        assert len(dag) == 3

    def test_self_loop_rejected(self):
        dag = DAG()
        with pytest.raises(CycleDetectedError):
            dag.add_edge("a", "a")

    def test_cycle_rejected(self):
        dag = DAG()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        with pytest.raises(CycleDetectedError):
            dag.add_edge("c", "a")

    def test_remove_node(self):
        dag = DAG()
        dag.add_edge("a", "b")
        dag.add_edge("b", "c")
        dag.remove_node("b")
        assert "b" not in dag
        assert dag.successors("a") == set()
        assert dag.predecessors("c") == set()


class TestQueries:
    def make_diamond(self):
        dag = DAG()
        dag.add_edge("a", "b")
        dag.add_edge("a", "c")
        dag.add_edge("b", "d")
        dag.add_edge("c", "d")
        return dag

    def test_roots_leaves(self):
        dag = self.make_diamond()
        assert dag.roots() == ["a"]
        assert dag.leaves() == ["d"]

    def test_reachability(self):
        dag = self.make_diamond()
        assert dag.reaches("a", "d")
        assert not dag.reaches("d", "a")
        assert not dag.reaches("b", "c")

    def test_ancestors_descendants(self):
        dag = self.make_diamond()
        assert dag.ancestors("d") == {"a", "b", "c"}
        assert dag.descendants("a") == {"b", "c", "d"}

    def test_topological_order_respects_edges(self):
        dag = self.make_diamond()
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_copy_is_independent(self):
        dag = self.make_diamond()
        clone = dag.copy()
        clone.remove_node("d")
        assert "d" in dag


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        max_size=40,
    )
)
def test_property_inserted_edges_never_form_cycle(edges):
    dag = DAG()
    for src, dst in edges:
        try:
            dag.add_edge(src, dst)
        except CycleDetectedError:
            continue
    order = dag.topological_order()  # must never raise
    position = {n: i for i, n in enumerate(order)}
    for node in dag.nodes():
        for succ in dag.successors(node):
            assert position[node] < position[succ]
