"""Tests for abstract workflows, the planner and the executor."""

import pytest

from repro.core import MCSClient, MCSService
from repro.gridftp import GridFTPServer, StorageSite
from repro.pegasus import (
    AbstractJob,
    AbstractWorkflow,
    PegasusPlanner,
    WorkflowExecutor,
)
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient


@pytest.fixture
def grid():
    service = MCSService()
    mcs = MCSClient.in_process(service, caller="planner")
    sites = {name: StorageSite(name) for name in ("siteA", "siteB")}
    gridftp = GridFTPServer(sites)
    lrcs = {f"lrc-{n}": LocalReplicaCatalog(f"lrc-{n}") for n in sites}
    rls = RLSClient(ReplicaLocationIndex(), lrcs)
    return mcs, rls, gridftp, sites, lrcs


def publish_input(mcs, rls, sites, lrcs, name, site="siteA"):
    sites[site].store(name, b"data")
    mcs.create_logical_file(name, data_type="raw")
    lrcs[f"lrc-{site}"].add_mapping(name, f"gsiftp://{site}/{name}")
    rls.refresh_all()


def two_step_workflow():
    wf = AbstractWorkflow("two-step")
    wf.add_job(AbstractJob("j1", "T1", inputs=("raw.dat",), outputs=("mid.dat",)))
    wf.add_job(AbstractJob("j2", "T2", inputs=("mid.dat",), outputs=("out.dat",)))
    return wf


class TestAbstractWorkflow:
    def test_dependency_dag(self):
        wf = two_step_workflow()
        dag = wf.dependency_dag()
        assert dag.successors("j1") == {"j2"}

    def test_external_inputs_and_final_outputs(self):
        wf = two_step_workflow()
        assert wf.external_inputs() == {"raw.dat"}
        assert wf.final_outputs() == {"out.dat"}

    def test_duplicate_producer_rejected(self):
        wf = AbstractWorkflow("w")
        wf.add_job(AbstractJob("a", "T", outputs=("x",)))
        with pytest.raises(ValueError):
            wf.add_job(AbstractJob("b", "T", outputs=("x",)))

    def test_duplicate_job_id_rejected(self):
        wf = AbstractWorkflow("w")
        wf.add_job(AbstractJob("a", "T"))
        with pytest.raises(ValueError):
            wf.add_job(AbstractJob("a", "T"))

    def test_cyclic_workflow_rejected(self):
        wf = AbstractWorkflow("w")
        wf.add_job(AbstractJob("a", "T", inputs=("y",), outputs=("x",)))
        wf.add_job(AbstractJob("b", "T", inputs=("x",), outputs=("y",)))
        from repro.pegasus.dag import CycleDetectedError

        with pytest.raises(CycleDetectedError):
            wf.validate()


class TestPlanner:
    def test_plan_shape(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        counts = plan.counts()
        assert counts["compute"] == 2
        assert counts["register"] == 2
        # raw.dat already at siteA → no transfer needed
        assert counts["transfer"] == 0

    def test_transfer_inserted_for_remote_input(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat", site="siteB")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        assert plan.counts()["transfer"] == 1

    def test_missing_input_raises(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        with pytest.raises(LookupError):
            planner.plan(two_step_workflow())

    def test_cross_site_intermediate_transferred(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        sites_order = iter(["siteA", "siteB"])
        planner = PegasusPlanner(
            mcs, rls, sites=["siteA", "siteB"],
            site_selector=lambda job, s: next(sites_order),
        )
        plan = planner.plan(two_step_workflow())
        # mid.dat produced at siteA, consumed at siteB
        assert plan.counts()["transfer"] == 1

    def test_requires_sites(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        with pytest.raises(ValueError):
            PegasusPlanner(mcs, rls, sites=[])


class TestReduction:
    def test_existing_outputs_prune_jobs(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        # mid.dat already materialized and registered
        publish_input(mcs, rls, sites, lrcs, "mid.dat")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        assert plan.pruned_jobs == ("j1",)
        assert plan.counts()["compute"] == 1

    def test_invalid_file_not_reused(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        publish_input(mcs, rls, sites, lrcs, "mid.dat")
        mcs.invalidate_logical_file("mid.dat")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        assert plan.pruned_jobs == ()

    def test_registered_but_unreplicated_not_reused(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        mcs.create_logical_file("mid.dat")  # in MCS but no replica in RLS
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        assert plan.pruned_jobs == ()


class TestExecutor:
    def test_execution_registers_outputs(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        executor = WorkflowExecutor(
            mcs, rls, gridftp, lrc_for_site={n: f"lrc-{n}" for n in sites}
        )
        report = executor.execute(plan)
        assert sorted(report.registered_files) == ["mid.dat", "out.dat"]
        assert mcs.get_logical_file("out.dat")["valid"] is True
        assert rls.best_replica("out.dat") == "gsiftp://siteA/out.dat"
        assert sites["siteA"].exists("out.dat")
        # provenance recorded
        assert mcs.get_transformations("out.dat")

    def test_second_run_fully_reused(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        executor = WorkflowExecutor(
            mcs, rls, gridftp, lrc_for_site={n: f"lrc-{n}" for n in sites}
        )
        executor.execute(planner.plan(two_step_workflow()))
        second = planner.plan(two_step_workflow())
        assert len(second.jobs) == 0
        assert set(second.pruned_jobs) == {"j1", "j2"}

    def test_simulated_time_accumulates(self, grid):
        mcs, rls, gridftp, sites, lrcs = grid
        publish_input(mcs, rls, sites, lrcs, "raw.dat", site="siteB")
        planner = PegasusPlanner(mcs, rls, sites=["siteA"])
        plan = planner.plan(two_step_workflow())
        executor = WorkflowExecutor(mcs, rls, gridftp)
        report = executor.execute(plan)
        assert report.simulated_seconds > 0
        assert report.bytes_transferred > 0
