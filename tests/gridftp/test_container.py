"""Tests for the container format and the external container service."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import (
    ContainerFormatError,
    ContainerService,
    list_members,
    pack_container,
    unpack_container,
)
from repro.container.format import extract_member
from repro.core import MCSClient, MCSService
from repro.gridftp import GridFTPServer, StorageSite


class TestFormat:
    def test_round_trip(self):
        members = {"a.dat": b"alpha", "b.dat": b"beta" * 100, "empty": b""}
        blob = pack_container(members)
        assert unpack_container(blob) == members
        assert list_members(blob) == ["a.dat", "b.dat", "empty"]

    def test_extract_single(self):
        blob = pack_container({"x": b"1", "y": b"2"})
        assert extract_member(blob, "y") == b"2"
        with pytest.raises(KeyError):
            extract_member(blob, "z")

    def test_empty_rejected(self):
        with pytest.raises(ContainerFormatError):
            pack_container({})

    def test_bad_magic(self):
        with pytest.raises(ContainerFormatError):
            unpack_container(b"NOPE" + b"\0" * 64)

    def test_truncated(self):
        blob = pack_container({"a": b"payload"})
        with pytest.raises(ContainerFormatError):
            unpack_container(blob[:-3])

    def test_corruption_detected(self):
        blob = bytearray(pack_container({"a": b"payload-here"}))
        blob[-1] ^= 0xFF  # flip a data byte
        with pytest.raises(ContainerFormatError):
            unpack_container(bytes(blob))

    def test_unicode_names(self):
        members = {"ünïcødé/ñame.dat": b"x"}
        assert unpack_container(pack_container(members)) == members

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=30),
            st.binary(max_size=200),
            min_size=1,
            max_size=10,
        )
    )
    def test_property_round_trip(self, members):
        assert unpack_container(pack_container(members)) == members


class TestService:
    @pytest.fixture
    def world(self):
        site = StorageSite("store")
        service = ContainerService("cont-svc")
        service.add_site(site)
        mcs = MCSClient.in_process(MCSService(), caller="svc")
        return service, site, mcs

    def test_build_and_extract(self, world):
        service, site, mcs = world
        url = service.build_container("store", "c1", {"f1": b"one", "f2": b"two"})
        assert url == "gsiftp://store/containers/c1.mcsc"
        assert service.members("store", "c1") == ["f1", "f2"]
        assert service.extract("store", "c1", "f1") == b"one"

    def test_containerize_loose_files(self, world):
        service, site, mcs = world
        site.store("small-1", b"a")
        site.store("small-2", b"b")
        service.build_from_site_files("store", "c2", ["small-1", "small-2"])
        assert not site.exists("small-1")  # originals removed
        assert service.extract("store", "c2", "small-2") == b"b"

    def test_unpack_to_site(self, world):
        service, site, mcs = world
        service.build_container("store", "c3", {"x": b"1", "y": b"2"})
        names = service.unpack_to_site("store", "c3")
        assert names == ["x", "y"]
        assert site.read("x") == b"1"

    def test_publish_registers_mcs_attributes(self, world):
        service, site, mcs = world
        service.publish_container(
            mcs, "store", "c4", {"lf-1": b"a", "lf-2": b"b"}
        )
        record = mcs.get_logical_file("lf-1")
        assert record["container_id"] == "c4"
        assert record["container_service"] == "cont-svc"

    def test_fetch_via_mcs_record(self, world):
        service, site, mcs = world
        service.publish_container(mcs, "store", "c5", {"lf-9": b"payload"})
        assert service.fetch_logical_file(mcs, "store", "lf-9") == b"payload"

    def test_fetch_noncontainerized_rejected(self, world):
        service, site, mcs = world
        mcs.create_logical_file("loose")
        with pytest.raises(LookupError):
            service.fetch_logical_file(mcs, "store", "loose")

    def test_fetch_wrong_service_rejected(self, world):
        service, site, mcs = world
        mcs.create_logical_file(
            "other", container_id="cX", container_service="someone-else"
        )
        with pytest.raises(LookupError):
            service.fetch_logical_file(mcs, "store", "other")

    def test_unknown_site(self, world):
        service, site, mcs = world
        with pytest.raises(LookupError):
            service.members("nowhere", "c1")

    def test_container_transfer_is_single_gridftp_op(self, world):
        """The motivation: ship one container instead of many small files."""
        service, site, mcs = world
        remote = StorageSite("remote", wan_bandwidth_mbps=100, latency_ms=40)
        gridftp = GridFTPServer({"store": site, "remote": remote})
        members = {f"tiny-{i}": bytes([i]) * 100 for i in range(50)}

        # individually: 50 transfers, 50 handshakes
        for name, payload in members.items():
            site.store(name, payload)
        individual = sum(
            gridftp.transfer(f"gsiftp://store/{n}", f"gsiftp://remote/{n}").simulated_seconds
            for n in members
        )

        # containerized: one transfer
        service.build_container("store", "bulk", members)
        packed = gridftp.transfer(
            "gsiftp://store/containers/bulk.mcsc",
            "gsiftp://remote/containers/bulk.mcsc",
        ).simulated_seconds

        assert packed < individual / 10
        # and the remote side can extract everything
        remote_service = ContainerService("cont-svc")
        remote_service.add_site(remote)
        assert remote_service.extract_all("remote", "bulk") == members
