"""Tests for the GridFTP simulator."""

import pytest

from repro.gridftp import GridFTPServer, StorageSite, parse_gsiftp_url
from repro.gridftp.transfer import stream_efficiency


class TestStorageSite:
    def test_store_read(self):
        site = StorageSite("isi")
        site.store("a/b.dat", b"hello")
        assert site.read("a/b.dat") == b"hello"
        assert site.exists("a/b.dat")
        assert site.size("a/b.dat") == 5

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            StorageSite("isi").read("nope")

    def test_delete(self):
        site = StorageSite("isi")
        site.store("x", b"1")
        assert site.delete("x") is True
        assert site.delete("x") is False

    def test_checksum_stable(self):
        site = StorageSite("isi")
        site.store("x", b"abc")
        assert site.checksum("x") == site.checksum("x")

    def test_url(self):
        assert StorageSite("isi").url_for("/a/b") == "gsiftp://isi/a/b"

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            StorageSite("x", wan_bandwidth_mbps=0)


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_gsiftp_url("gsiftp://site/a/b.dat") == ("site", "a/b.dat")

    def test_rejects_other_schemes(self):
        with pytest.raises(ValueError):
            parse_gsiftp_url("http://x/y")


class TestStreamEfficiency:
    def test_monotonic_with_diminishing_returns(self):
        effs = [stream_efficiency(n) for n in (1, 2, 4, 8, 16)]
        assert effs == sorted(effs)
        assert all(e <= 1.0 for e in effs)
        gains = [b - a for a, b in zip(effs, effs[1:])]
        assert gains == sorted(gains, reverse=True)

    def test_bad_streams(self):
        with pytest.raises(ValueError):
            stream_efficiency(0)


class TestTransfers:
    def make(self):
        a = StorageSite("a", wan_bandwidth_mbps=1000, latency_ms=10)
        b = StorageSite("b", wan_bandwidth_mbps=100, latency_ms=50)
        return GridFTPServer({"a": a, "b": b}), a, b

    def test_third_party_transfer_moves_content(self):
        server, a, b = self.make()
        a.store("f.dat", b"x" * 1000)
        result = server.transfer("gsiftp://a/f.dat", "gsiftp://b/f.dat")
        assert b.read("f.dat") == b"x" * 1000
        assert result.checksum == a.checksum("f.dat")
        assert result.simulated_seconds > 0

    def test_bottleneck_is_slower_link(self):
        server, a, b = self.make()
        big = b"x" * 10_000_000
        a.store("f", big)
        slow = server.transfer("gsiftp://a/f", "gsiftp://b/f").simulated_seconds
        a2 = StorageSite("a2", wan_bandwidth_mbps=1000, latency_ms=10)
        server.add_site(a2)
        fast = server.transfer("gsiftp://a/f", "gsiftp://a2/f").simulated_seconds
        assert slow > fast

    def test_more_streams_is_faster(self):
        server, a, b = self.make()
        a.store("f", b"x" * 10_000_000)
        t1 = server.transfer("gsiftp://a/f", "gsiftp://b/f1", streams=1)
        t8 = server.transfer("gsiftp://a/f", "gsiftp://b/f8", streams=8)
        assert t8.simulated_seconds < t1.simulated_seconds

    def test_fetch(self):
        server, a, b = self.make()
        a.store("f", b"payload")
        content, result = server.fetch("gsiftp://a/f")
        assert content == b"payload"
        assert result.dest_url == "client://local"

    def test_unknown_site(self):
        server, a, b = self.make()
        with pytest.raises(FileNotFoundError):
            server.transfer("gsiftp://nope/f", "gsiftp://a/f")

    def test_transfer_log(self):
        server, a, b = self.make()
        a.store("f", b"1")
        server.transfer("gsiftp://a/f", "gsiftp://b/f")
        assert len(server.transfer_log) == 1

    def test_throughput_property(self):
        server, a, b = self.make()
        a.store("f", b"x" * 1_000_000)
        result = server.transfer("gsiftp://a/f", "gsiftp://b/f")
        assert 0 < result.throughput_mbps <= 100
