"""Structured JSON logging: formatter output, extras, request-id context."""

import io
import json
import logging

from repro.obs import log as obslog
from repro.obs import trace


class TestJsonLogging:
    def teardown_method(self):
        obslog.unconfigure()

    def _capture(self, level=logging.DEBUG):
        stream = io.StringIO()
        obslog.configure(level=level, stream=stream)
        return stream

    def test_lines_are_json_with_extras(self):
        stream = self._capture()
        obslog.get_logger("soap.server").debug(
            "soap.request", extra={"operation": "ping", "status": 200}
        )
        record = json.loads(stream.getvalue().splitlines()[-1])
        assert record["event"] == "soap.request"
        assert record["operation"] == "ping"
        assert record["status"] == 200
        assert record["logger"].endswith("soap.server")
        assert record["level"] == "DEBUG"

    def test_request_id_from_trace_context(self):
        stream = self._capture()
        with trace.span("logged.work") as s:
            obslog.get_logger("test").info("inside")
        record = json.loads(stream.getvalue().splitlines()[-1])
        assert record["request_id"] == s.request_id

    def test_no_request_id_outside_span(self):
        stream = self._capture()
        obslog.get_logger("test").info("outside")
        record = json.loads(stream.getvalue().splitlines()[-1])
        assert "request_id" not in record

    def test_configure_is_idempotent(self):
        stream = self._capture()
        obslog.configure(stream=stream)  # second call must not dup handlers
        obslog.get_logger("test").info("once")
        assert len(stream.getvalue().splitlines()) == 1
