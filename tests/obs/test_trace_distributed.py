"""Cross-process trace assembly: wire propagation, the bounded ring,
exporters, collection endpoints, and the federated-query waterfall."""

import http.client
import json

import pytest

from repro.core.client import MCSClient
from repro.core.service import MCSService
from repro.db import Database
from repro.db.replication import Replica, ReplicationPublisher
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.soap.server import SoapServer

pytestmark = pytest.mark.obs


def make_server(service=None):
    service = service or MCSService()
    return SoapServer(
        service.handle,
        description=service.description(),
        fault_mapper=service.fault_mapper,
    )


def http_get(server, path):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestWireContext:
    def test_traceparent_round_trip(self):
        assert trace.parse_traceparent("7at1;7as2") == ("7at1", "7as2")
        assert trace.parse_traceparent("7at1") == ("7at1", None)

    def test_current_traceparent_tracks_active_span(self):
        assert trace.current_traceparent() is None
        with trace.span("outer") as s:
            assert trace.current_traceparent() == f"{s.trace_id};{s.span_id}"
        assert trace.current_traceparent() is None

    def test_remote_context_parents_new_roots(self):
        token = trace.set_remote_context("remote-trace;remote-span")
        try:
            with trace.span("adopted") as s:
                assert s.trace_id == "remote-trace"
                assert s.parent_id == "remote-span"
        finally:
            trace.reset_remote_context(token)

    def test_server_span_parents_onto_client_span(self):
        trace.clear_spans()
        with make_server() as server:
            with MCSClient.connect(server.host, server.port, caller="a") as c:
                c.ping()
        client_span = trace.recent_spans(name="client.call")[-1]
        server_span = trace.recent_spans(name="soap.server")[-1]
        catalog_span = trace.recent_spans(name="catalog.ping")[-1]
        assert server_span["trace_id"] == client_span["trace_id"]
        assert server_span["parent_id"] == client_span["span_id"]
        # And the catalog span nests under the dispatch span server-side.
        assert catalog_span["parent_id"] == server_span["span_id"]

    def test_tracing_switch_stops_recording_but_not_metrics(self):
        trace.clear_spans()
        trace.set_tracing_enabled(False)
        try:
            with trace.span("dark") as s:
                pass
            assert s.span_id is None and s.duration is None
            assert trace.recent_spans(name="dark") == []
        finally:
            trace.set_tracing_enabled(True)


class TestBoundedRing:
    def test_sustained_load_stays_bounded_and_counts_drops(self):
        """The regression gate for the span buffer: under sustained load
        the ring never grows past its capacity and every eviction is
        visible on ``mcs_obs_spans_dropped_total``."""
        def dropped_total():
            family = get_registry().snapshot().get(
                "mcs_obs_spans_dropped_total", {"series": []}
            )
            return sum(e["value"] for e in family["series"])

        original = trace.span_ring_capacity()
        trace.set_span_ring_size(64)
        trace.clear_spans()
        before = dropped_total()
        try:
            for i in range(500):
                with trace.span("flood", i=str(i)):
                    pass
            spans = trace.recent_spans(name="flood")
            assert len(spans) == 64
            # The survivors are the most recent, not the earliest.
            assert spans[-1]["attrs"] == {"i": "499"}
            assert spans[0]["attrs"] == {"i": "436"}
            assert dropped_total() - before == 500 - 64
        finally:
            trace.set_span_ring_size(original)
            trace.clear_spans()

    def test_resize_preserves_recent_entries(self):
        trace.clear_spans()
        original = trace.span_ring_capacity()
        try:
            for i in range(10):
                with trace.span("keep", i=str(i)):
                    pass
            trace.set_span_ring_size(4)
            kept = trace.recent_spans(name="keep")
            assert [s["attrs"]["i"] for s in kept] == ["6", "7", "8", "9"]
        finally:
            trace.set_span_ring_size(original)
            trace.clear_spans()

    def test_ring_size_must_be_positive(self):
        with pytest.raises(ValueError):
            trace.set_span_ring_size(0)


class TestAssemblyAndExporters:
    def make_family(self):
        trace.clear_spans()
        with trace.span("root") as root:
            with trace.span("child-a"):
                trace.annotate("note-a")
            with trace.span("child-b"):
                pass
        return root, trace.recent_spans(request_id=root.request_id)

    def test_assemble_identifies_roots_children_orphans(self):
        root, spans = self.make_family()
        tree = trace.assemble_trace(spans)
        assert [s["name"] for s in tree["roots"]] == ["root"]
        assert tree["orphans"] == []
        kids = [s["name"] for s in tree["children"][root.span_id]]
        assert kids == ["child-a", "child-b"]

    def test_orphans_are_flagged_not_dropped(self):
        _, spans = self.make_family()
        # Simulate a lost parent (evicted ring / unscraped process).
        spans = [s for s in spans if s["name"] != "root"]
        tree = trace.assemble_trace(spans)
        assert {s["name"] for s in tree["orphans"]} == {"child-a", "child-b"}
        assert tree["roots"] == []

    def test_waterfall_renders_all_spans_time_aligned(self):
        root, spans = self.make_family()
        text = trace.format_waterfall(spans, title=root.request_id)
        assert f"waterfall {root.request_id} (3 spans)" in text
        for name in ("root", "child-a", "child-b"):
            assert name in text
        assert "[note-a]" in text
        assert "(orphan)" not in text

    def test_waterfall_marks_orphans(self):
        _, spans = self.make_family()
        spans = [s for s in spans if s["name"] != "root"]
        text = trace.format_waterfall(spans)
        assert text.count("(orphan)") == 2

    def test_chrome_trace_export(self):
        root, spans = self.make_family()
        doc = trace.to_chrome_trace(spans)
        events = doc["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        root_event = next(e for e in events if e["name"] == "root")
        assert root_event["args"]["trace_id"] == root.trace_id
        assert root_event["dur"] == pytest.approx(root.duration * 1e6)
        json.dumps(doc)  # must be serializable as-is

    def test_jsonl_export_one_object_per_line(self):
        _, spans = self.make_family()
        lines = trace.to_jsonl(spans).splitlines()
        assert len(lines) == 3
        assert {json.loads(line)["name"] for line in lines} == {
            "root", "child-a", "child-b",
        }


class TestCollectionEndpoints:
    def test_spans_endpoint_filters_by_request_id(self):
        trace.clear_spans()
        with make_server() as server:
            with MCSClient.connect(server.host, server.port, caller="a") as c:
                c.ping()
            rid = trace.recent_spans(name="client.call")[-1]["request_id"]
            status, body = http_get(server, f"/spans?request_id={rid}")
            assert status == 200
            spans = json.loads(body)
            assert {s["name"] for s in spans} >= {
                "client.call", "soap.server", "catalog.ping",
            }
            assert all(s["request_id"] == rid for s in spans)
            status, body = http_get(server, "/spans?request_id=nonexistent")
            assert status == 200 and json.loads(body) == []

    def test_healthz_and_readyz(self):
        from repro.obs import slo as slo_mod

        # Earlier tests may have burned the process-global tracker's
        # budget (deliberate fault traffic); readiness is about *this*
        # window, so start it clean.
        slo_mod.SLO.reset()
        with make_server() as server:
            status, body = http_get(server, "/healthz")
            assert status == 200 and body == b"ok\n"
            status, _ = http_get(server, "/readyz")
            assert status == 200

    def test_slo_endpoint_reports_recorded_operations(self):
        from repro.obs import slo as slo_mod

        with make_server() as server:
            with MCSClient.connect(server.host, server.port, caller="a") as c:
                c.ping()
            status, body = http_get(server, "/slo")
            assert status == 200
            snapshot = json.loads(body)
            assert "ping" in snapshot["operations"]
            assert snapshot["operations"]["ping"]["fast"]["total"] >= 1
        assert slo_mod.SLO.status("ping")["fast"]["total"] >= 1

    def test_profile_endpoint_returns_folded_stacks(self):
        with make_server() as server:
            status, body = http_get(server, "/profile?seconds=0.05")
            assert status == 200
            assert b"# samples=" in body
            status, _ = http_get(server, "/profile?seconds=bogus")
            assert status == 400


class TestFederatedWaterfall:
    """The acceptance scenario: one request id, one waterfall covering
    client -> server -> two federation members + a replication shipment,
    with no orphan spans."""

    @pytest.fixture()
    def topology(self):
        primary = Database()
        publisher = ReplicationPublisher(primary)
        replica = Replica("wf-replica")  # synchronous: ships inline
        publisher.add_replica(replica)
        from repro.core.catalog import MetadataCatalog

        main_service = MCSService(MetadataCatalog(primary))
        main_server = make_server(main_service)
        main_server.start()

        members, member_servers = {}, []
        for catalog_id in ("isi", "cern"):
            member = LocalMCS(catalog_id)
            server = make_server(member.service)
            server.start()
            member.client.close()
            member.client = MCSClient.connect(
                server.host, server.port, caller=f"site:{catalog_id}"
            )
            member.client.define_attribute("experiment", "string")
            member.client.create_logical_file(
                f"{catalog_id}-f1", attributes={"experiment": "pulsar"}
            )
            members[catalog_id] = member
            member_servers.append(server)

        fed = FederatedMCS(MCSIndexNode(), members)
        fed.refresh_all()
        try:
            yield main_server, member_servers, fed
        finally:
            for member in members.values():
                member.client.close()
            for server in member_servers:
                server.stop()
            main_server.stop()
            publisher.close()

    def test_single_waterfall_across_all_hops(self, topology, capsys):
        from repro.cli import main as cli_main
        from repro.core import ObjectQuery

        main_server, member_servers, fed = topology
        trace.clear_spans()

        with trace.span("scenario") as root:
            with MCSClient.connect(
                main_server.host, main_server.port, caller="wf"
            ) as client:
                client.create_logical_file("wf-file")  # ships to the replica
            results = fed.query(
                ObjectQuery().where("experiment", "=", "pulsar")
            )
        assert set(results) == {"isi", "cern"}

        spans = trace.recent_spans(trace_id=root.trace_id)
        names = [s["name"] for s in spans]
        assert names.count("fed.subquery") == 2
        for expected in (
            "client.call", "soap.server",
            "catalog.create_logical_file", "repl.ship", "catalog.query",
        ):
            assert expected in names, f"{expected} missing from {names}"
        # Every hop shares the root's trace and nothing is orphaned.
        assert all(s["trace_id"] == root.trace_id for s in spans)
        tree = trace.assemble_trace(spans)
        assert tree["orphans"] == []
        assert [s["name"] for s in tree["roots"]] == ["scenario"]

        # `mcs trace <request_id>` renders the same story end to end.
        argv = [
            "--host", main_server.host, "--port", str(main_server.port),
            "trace", root.request_id,
        ]
        for server in member_servers:
            argv += ["--endpoint", f"{server.host}:{server.port}"]
        code = cli_main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert f"waterfall {root.request_id}" in out
        for expected in ("scenario", "soap.server", "repl.ship", "fed.subquery"):
            assert expected in out
        assert "(orphan)" not in out
