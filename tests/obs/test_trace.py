"""Spans: nesting, request ids, and propagation across a real
client → HTTP server → engine round trip."""

import pytest

from repro.core.client import MCSClient
from repro.core.service import MCSService
from repro.obs import trace
from repro.soap.server import SoapServer


class TestSpanBasics:
    def setup_method(self):
        trace.clear_spans()

    def test_span_records_duration_and_name(self):
        with trace.span("unit.work", detail="x") as s:
            pass
        assert s.duration is not None and s.duration >= 0
        finished = trace.recent_spans(name="unit.work")
        assert finished and finished[-1]["attrs"] == {"detail": "x"}

    def test_root_span_mints_request_id(self):
        assert trace.current_request_id() is None
        with trace.span("outer") as s:
            assert s.request_id is not None
            assert trace.current_request_id() == s.request_id
        # id is scoped to the span
        assert trace.current_request_id() is None

    def test_nested_spans_share_request_id_and_link_parents(self):
        with trace.span("outer") as outer:
            with trace.span("inner") as inner:
                assert inner.request_id == outer.request_id
                assert inner.parent_id == outer.span_id
        spans = trace.recent_spans(request_id=outer.request_id)
        assert [s["name"] for s in spans] == ["inner", "outer"]

    def test_span_records_error(self):
        with pytest.raises(RuntimeError):
            with trace.span("boom"):
                raise RuntimeError("nope")
        assert trace.recent_spans(name="boom")[-1]["error"] == "RuntimeError"

    def test_format_trace_tree(self):
        with trace.span("root") as root:
            with trace.span("child"):
                pass
        text = trace.format_trace(root.request_id)
        assert "root" in text and "child" in text
        # child is indented one level deeper than root
        root_line = next(line for line in text.splitlines() if "- root" in line)
        child_line = next(line for line in text.splitlines() if "- child" in line)
        assert len(child_line) - len(child_line.lstrip()) > \
            len(root_line) - len(root_line.lstrip())


class TestRoundTripPropagation:
    @pytest.fixture()
    def server(self):
        service = MCSService()
        srv = SoapServer(
            service.handle,
            description=service.description(),
            fault_mapper=service.fault_mapper,
        )
        with srv:
            yield srv

    def test_request_id_crosses_the_socket(self, server):
        trace.clear_spans()
        with MCSClient.connect(server.host, server.port, caller="alice") as client:
            client.create_logical_file("trace-f1")
        client_spans = trace.recent_spans(name="client.call")
        assert client_spans, "client span missing"
        rid = client_spans[-1]["request_id"]
        # The server-side catalog span (handled on a server thread in this
        # same process) carries the id that crossed the wire in the header.
        server_spans = trace.recent_spans(name="catalog.create_logical_file")
        assert server_spans and server_spans[-1]["request_id"] == rid

    def test_each_call_gets_a_fresh_id(self, server):
        trace.clear_spans()
        with MCSClient.connect(server.host, server.port, caller="alice") as client:
            client.ping()
            client.ping()
        ids = [s["request_id"] for s in trace.recent_spans(name="client.call")]
        assert len(ids) == 2 and ids[0] != ids[1]
