"""Metrics core: counters under concurrency, histogram bucket math,
registry semantics, and the Prometheus text rendering."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    render_prometheus,
)


class TestCounter:
    def test_single_thread(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_concurrent_increments_from_8_threads(self):
        c = Counter()
        per_thread = 10_000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8 * per_thread

    def test_reset_keeps_shards_usable(self):
        c = Counter()
        c.inc(3)
        c.reset()
        assert c.value == 0
        c.inc()
        assert c.value == 1


class TestHistogramBuckets:
    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=())

    def test_bucket_assignment_inclusive_upper_edge(self):
        h = Histogram(boundaries=(0.01, 0.1, 1.0))
        h.observe(0.005)   # bucket 0
        h.observe(0.01)    # still bucket 0 (inclusive upper edge)
        h.observe(0.05)    # bucket 1
        h.observe(0.5)     # bucket 2
        h.observe(5.0)     # overflow bucket
        data = h.collect()
        assert data["buckets"] == [2, 1, 1, 1]
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(0.005 + 0.01 + 0.05 + 0.5 + 5.0)

    def test_quantiles_interpolate(self):
        h = Histogram(boundaries=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert 0.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.0) >= 0.0
        assert h.quantile(1.0) <= 4.0
        assert h.mean() == pytest.approx(6.5 / 4)

    def test_empty_histogram(self):
        h = Histogram(boundaries=(1.0,))
        assert h.quantile(0.5) == 0.0
        assert h.mean() == 0.0

    def test_concurrent_observes(self):
        h = Histogram(boundaries=(0.5,))
        per_thread = 5_000

        def worker():
            for _ in range(per_thread):
                h.observe(0.1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        data = h.collect()
        assert data["count"] == 8 * per_thread
        assert data["buckets"][0] == 8 * per_thread


class TestRegistry:
    def test_families_and_labels(self):
        reg = MetricsRegistry()
        calls = reg.counter("calls_total", "calls", labels=("op",))
        calls.labels("get").inc(2)
        calls.labels("put").inc()
        snap = reg.snapshot()
        series = {
            s["labels"]["op"]: s["value"] for s in snap["calls_total"]["series"]
        }
        assert series == {"get": 2, "put": 1}

    def test_same_name_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        b = reg.counter("x_total", "x")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing", "x")
        with pytest.raises(ValueError):
            reg.gauge("thing", "x")

    def test_reset_zeroes_but_keeps_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("y_total", "y", labels=("k",))
        child = fam.labels("a")
        child.inc(7)
        reg.reset()
        assert child.value == 0
        child.inc()  # cached reference still feeds the registry
        assert fam.labels("a").value == 1


class TestPrometheusRendering:
    def test_render(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels=("op",)).labels("q").inc(3)
        reg.gauge("depth", "queue depth").set(2)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = render_prometheus(reg)
        assert '# TYPE req_total counter' in text
        assert 'req_total{op="q"} 3' in text
        assert "depth 2" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        # cumulative buckets; whole-number edges render without the ".0"
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_format_snapshot_pretty(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c").inc(5)
        h = reg.histogram("h_seconds", "h")
        h.observe(0.001)
        out = format_snapshot(reg.snapshot())
        assert "c_total" in out and "5" in out
        assert "h_seconds" in out
