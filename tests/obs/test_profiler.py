"""The wall-clock sampling profiler: folded output, overhead, env hook."""

import threading
import time

import pytest

from repro.obs.profiler import SamplingProfiler, capture, run_from_env

pytestmark = pytest.mark.obs


def busy_wait(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(200))


@pytest.fixture()
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=busy_wait, args=(stop,), daemon=True)
    thread.start()
    yield
    stop.set()
    thread.join(5)


class TestSampling:
    def test_captures_stacks_of_other_threads(self, busy_thread):
        profiler = capture(0.2, interval_s=0.002)
        assert profiler.sample_count > 10
        folded = profiler.folded()
        assert "busy_wait" in folded

    def test_folded_format(self, busy_thread):
        profiler = capture(0.1, interval_s=0.002)
        for line in profiler.folded().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()
            # frame labels are path/file.py:function
            assert all(":" in frame for frame in stack.split(";"))

    def test_own_frames_are_elided(self, busy_thread):
        profiler = capture(0.1, interval_s=0.002)
        # Frame labels keep the last two path components, so the
        # profiler's own frames would read ``obs/profiler.py:...``.
        assert "obs/profiler.py:" not in profiler.folded()

    def test_overhead_is_measured_and_small(self, busy_thread):
        profiler = capture(0.2, interval_s=0.005)
        assert 0.0 <= profiler.overhead_fraction < 0.5
        assert f"{profiler.overhead_fraction:.4%}" in profiler.report()

    def test_report_carries_metadata_even_with_no_samples(self):
        profiler = SamplingProfiler(interval_s=0.01)
        assert profiler.report().startswith("# samples=0")

    def test_context_manager_lifecycle(self):
        profiler = SamplingProfiler(interval_s=0.005)
        with profiler:
            assert profiler.running
            time.sleep(0.03)
        assert not profiler.running
        with pytest.raises(RuntimeError):
            profiler._thread = threading.Thread(target=lambda: None)
            profiler.start()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestEnvHook:
    def test_disabled_without_env(self):
        assert run_from_env({}) is None
        assert run_from_env({"REPRO_PROFILE": "not-a-number"}) is None

    def test_env_capture_writes_folded_file(self, tmp_path, busy_thread):
        out = tmp_path / "server.folded"
        written = run_from_env(
            {"REPRO_PROFILE": "0.1", "REPRO_PROFILE_OUT": str(out)}
        )
        assert written == str(out)
        content = out.read_text(encoding="utf-8")
        assert "# samples=" in content
