"""SLO tracking: objectives, sliding windows, burn rates, readiness."""

import pytest

from repro.obs.slo import (
    DEFAULT_FAST_BURN_THRESHOLD,
    SLObjective,
    SLOTracker,
    format_slo,
)

pytestmark = pytest.mark.obs


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def tracker(clock):
    return SLOTracker(
        {"query": SLObjective(target=0.9, latency_s=0.1,
                              fast_window_s=60.0, slow_window_s=600.0)},
        clock=clock,
    )


class TestObjectives:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(target=1.0)
        with pytest.raises(ValueError):
            SLObjective(latency_s=0.0)
        with pytest.raises(ValueError):
            SLObjective(fast_window_s=100.0, slow_window_s=100.0)

    def test_budget(self):
        assert SLObjective(target=0.99).budget == pytest.approx(0.01)

    def test_parse_spec(self):
        objectives = SLObjective.parse_spec(
            "query=0.999@0.050;*=0.99@0.250/30/900"
        )
        assert objectives["query"].target == 0.999
        assert objectives["query"].latency_s == 0.050
        default = objectives["*"]
        assert (default.fast_window_s, default.slow_window_s) == (30.0, 900.0)

    def test_parse_spec_rejects_malformed(self):
        with pytest.raises(ValueError):
            SLObjective.parse_spec("query")

    def test_unlisted_operation_falls_back_to_default(self, tracker):
        assert tracker.objective_for("query").target == 0.9
        assert tracker.objective_for("anything").target == 0.99


class TestBurnRates:
    def test_no_traffic_means_zero_burn(self, tracker):
        assert tracker.burn_rate("query", 60.0) == 0.0

    def test_all_good_traffic_burns_nothing(self, tracker):
        for _ in range(50):
            tracker.record("query", 0.01, ok=True)
        assert tracker.burn_rate("query", 60.0) == 0.0
        assert tracker.status("query")["budget_remaining"] == 1.0

    def test_slow_success_is_a_bad_event(self, tracker):
        tracker.record("query", 5.0, ok=True)  # over the 100ms threshold
        assert tracker.burn_rate("query", 60.0) == pytest.approx(10.0)

    def test_burn_rate_is_budget_normalized(self, tracker):
        # 10% bad on a 10% budget = burning at exactly 1.0.
        for i in range(10):
            tracker.record("query", 0.01, ok=(i != 0))
        assert tracker.burn_rate("query", 60.0) == pytest.approx(1.0)

    def test_events_age_out_of_the_window(self, tracker, clock):
        tracker.record("query", 5.0, ok=False)
        assert tracker.burn_rate("query", 60.0) > 0
        clock.advance(61.0)
        assert tracker.burn_rate("query", 60.0) == 0.0
        # ... but the slow window still remembers.
        assert tracker.burn_rate("query", 600.0) > 0


class TestReadiness:
    def test_healthy_with_no_traffic(self, tracker):
        assert tracker.healthy()

    def test_breach_requires_both_windows(self, tracker, clock):
        # Saturate the fast window with failures: fast burn is huge but
        # the slow window is padded with old successes, so no breach.
        for _ in range(2000):
            tracker.record("query", 0.01, ok=True)
        clock.advance(120.0)
        for _ in range(20):
            tracker.record("query", 0.01, ok=False)
        status = tracker.status("query")
        # All-bad traffic burns at 1/budget — the effective page
        # threshold (it is clamped there for loose objectives).
        ceiling = 1.0 / tracker.objective_for("query").budget
        assert status["fast"]["burn_rate"] == pytest.approx(ceiling)
        assert status["slow"]["burn_rate"] < 1.0
        assert not status["breaching"]
        assert tracker.healthy()

    def test_sustained_failure_breaches(self, tracker):
        for _ in range(100):
            tracker.record("query", 0.01, ok=False)
        status = tracker.status("query")
        assert status["breaching"]
        assert status["budget_remaining"] == 0.0
        assert not tracker.healthy()

    def test_reset_restores_health(self, tracker):
        for _ in range(100):
            tracker.record("query", 0.01, ok=False)
        assert not tracker.healthy()
        tracker.reset()
        assert tracker.healthy()


class TestSnapshotAndFormat:
    def test_snapshot_covers_every_operation(self, tracker):
        tracker.record("query", 0.01, ok=True)
        tracker.record("create", 0.01, ok=False)
        snapshot = tracker.snapshot()
        assert set(snapshot["operations"]) == {"create", "query"}
        assert snapshot["fast_burn_threshold"] == DEFAULT_FAST_BURN_THRESHOLD

    def test_format_slo_table(self, tracker):
        tracker.record("query", 0.01, ok=True)
        for _ in range(100):
            tracker.record("create", 0.01, ok=False)
        text = format_slo(tracker.snapshot())
        lines = text.splitlines()
        assert "operation" in lines[0]
        assert any("query" in line and " ok" in line for line in lines)
        assert any("create" in line and "BREACH" in line for line in lines)

    def test_format_slo_empty(self):
        assert "no SLO traffic" in format_slo({"operations": {}})

    def test_configure_preserves_default(self, tracker):
        tracker.configure({"stats": SLObjective(target=0.5)})
        assert tracker.objective_for("stats").target == 0.5
        assert tracker.objective_for("other").target == 0.99
