"""The /metrics endpoint and the server-side request/fault counters."""

import http.client

import pytest

from repro.core.client import MCSClient
from repro.core.errors import ObjectNotFoundError
from repro.core.service import MCSService
from repro.soap.server import SoapServer


@pytest.fixture()
def server():
    service = MCSService()
    srv = SoapServer(
        service.handle,
        description=service.description(),
        fault_mapper=service.fault_mapper,
    )
    with srv:
        yield srv


def fetch_metrics(server) -> str:
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type", "").startswith("text/plain")
        return response.read().decode("utf-8")
    finally:
        conn.close()


def parse_metrics(text: str) -> dict[str, float]:
    """Prometheus text format → {series: value}."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        out[name] = float(value)
    return out


class TestMetricsEndpoint:
    def test_counters_appear_and_grow(self, server):
        with MCSClient.connect(server.host, server.port, caller="alice") as client:
            client.create_logical_file("m-f1")
            client.get_logical_file("m-f1")
        series = parse_metrics(fetch_metrics(server))
        assert series["mcs_soap_requests_total"] >= 2
        assert series['mcs_catalog_calls_total{operation="create_logical_file",status="ok"}'] >= 1
        assert series['mcs_catalog_calls_total{operation="get_logical_file",status="ok"}'] >= 1
        # request latency histogram has matching counts
        assert series['mcs_soap_request_seconds_count{operation="get_logical_file"}'] >= 1

    def test_histogram_lines_are_cumulative(self, server):
        with MCSClient.connect(server.host, server.port, caller="alice") as client:
            client.ping()
        text = fetch_metrics(server)
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('mcs_soap_request_seconds_bucket{operation="ping"')
        ]
        assert buckets, "ping histogram missing"
        assert buckets == sorted(buckets), "bucket counts must be cumulative"


class TestRequestAndFaultCounting:
    def test_faults_count_as_requests_too(self, server):
        with MCSClient.connect(server.host, server.port, caller="alice") as client:
            before = server.requests_served
            faults_before = server.faults_served
            with pytest.raises(ObjectNotFoundError):
                client.get_logical_file("definitely-not-there")
            client.ping()
        assert server.requests_served == before + 2
        assert server.faults_served == faults_before + 1

    def test_malformed_request_counts(self, server):
        before = server.requests_served
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(
                "POST", "/soap", body=b"this is not xml",
                headers={"Content-Type": "text/xml"},
            )
            response = conn.getresponse()
            response.read()
            assert response.status == 500
        finally:
            conn.close()
        assert server.requests_served == before + 1
        assert server.faults_served >= 1
