"""Tests for the toy RSA implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import rsa


@pytest.fixture(scope="module")
def keys():
    return rsa.generate_keypair(bits=256)


class TestKeyGeneration:
    def test_modulus_size(self, keys):
        assert keys.public.n.bit_length() >= 250

    def test_distinct_keypairs(self):
        a = rsa.generate_keypair(bits=128)
        b = rsa.generate_keypair(bits=128)
        assert a.public.n != b.public.n

    def test_minimum_bits_enforced(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=64)

    def test_fingerprint_stable(self, keys):
        assert keys.public.fingerprint() == keys.public.fingerprint()
        assert len(keys.public.fingerprint()) == 16

    def test_public_key_text_round_trip(self, keys):
        restored = rsa.PublicKey.from_text(keys.public.to_text())
        assert restored == keys.public


class TestSignVerify:
    def test_valid_signature(self, keys):
        sig = rsa.sign(keys.private, b"message")
        assert rsa.verify(keys.public, b"message", sig)

    def test_wrong_message_rejected(self, keys):
        sig = rsa.sign(keys.private, b"message")
        assert not rsa.verify(keys.public, b"other", sig)

    def test_tampered_signature_rejected(self, keys):
        sig = rsa.sign(keys.private, b"message")
        assert not rsa.verify(keys.public, b"message", sig ^ 1)

    def test_wrong_key_rejected(self, keys):
        other = rsa.generate_keypair(bits=256)
        sig = rsa.sign(keys.private, b"message")
        assert not rsa.verify(other.public, b"message", sig)

    def test_out_of_range_signature(self, keys):
        assert not rsa.verify(keys.public, b"m", -1)
        assert not rsa.verify(keys.public, b"m", keys.public.n + 5)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=64))
    def test_property_round_trip(self, keys, message):
        sig = rsa.sign(keys.private, message)
        assert rsa.verify(keys.public, message, sig)


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 97, 7919, 104729):
            assert rsa._is_probable_prime(p)

    def test_known_composites(self):
        for n in (1, 0, 4, 100, 561, 7917, 104730):
            assert not rsa._is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not rsa._is_probable_prime(n)
