"""Tests for CAS assertions and the ACL model."""

import time

import pytest

from repro.security import (
    AccessControlList,
    AuthorizationError,
    CertificateAuthority,
    CertificateError,
    CommunityAuthorizationService,
    DistinguishedName,
    Permission,
)
from repro.security.acl import effective_permissions, require
from repro.security.cas import verify_assertion

KB = 256
ALICE = DistinguishedName.make("Alice")
BOB = DistinguishedName.make("Bob")


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(key_bits=KB)


@pytest.fixture
def cas(ca):
    service = CommunityAuthorizationService("ligo", ca, key_bits=KB)
    service.add_member(ALICE, "scientists")
    service.grant("scientists", "ligo-*", Permission.READ, Permission.ANNOTATE)
    return service


class TestPermissionFlags:
    def test_all_contains_each(self):
        for p in (Permission.READ, Permission.WRITE, Permission.DELETE,
                  Permission.ANNOTATE, Permission.ADMIN):
            assert p in Permission.all()

    def test_union(self):
        combo = Permission.READ | Permission.WRITE
        assert Permission.READ in combo
        assert Permission.DELETE not in combo


class TestACL:
    def test_grant_and_check(self):
        acl = AccessControlList()
        acl.grant(ALICE, Permission.READ)
        assert acl.allows(ALICE, Permission.READ)
        assert not acl.allows(ALICE, Permission.WRITE)
        assert not acl.allows(BOB, Permission.READ)

    def test_grants_accumulate(self):
        acl = AccessControlList()
        acl.grant(ALICE, Permission.READ)
        acl.grant(ALICE, Permission.WRITE)
        assert acl.allows(ALICE, Permission.READ | Permission.WRITE)

    def test_revoke(self):
        acl = AccessControlList()
        acl.grant(ALICE, Permission.READ | Permission.WRITE)
        acl.revoke(ALICE, Permission.WRITE)
        assert acl.allows(ALICE, Permission.READ)
        assert not acl.allows(ALICE, Permission.WRITE)
        acl.revoke(ALICE, Permission.READ)
        assert str(ALICE) not in acl.entries

    def test_public_grant(self):
        acl = AccessControlList()
        acl.grant_public(Permission.READ)
        assert acl.allows(BOB, Permission.READ)

    def test_owner_has_everything(self):
        acl = AccessControlList(owner=str(ALICE))
        assert acl.allows(ALICE, Permission.all())

    def test_effective_union_rule(self):
        file_acl = AccessControlList()
        file_acl.grant(ALICE, Permission.READ)
        parent = AccessControlList()
        parent.grant(ALICE, Permission.WRITE)
        grandparent = AccessControlList()
        grandparent.grant(ALICE, Permission.ANNOTATE)
        effective = effective_permissions(ALICE, file_acl, [parent, grandparent])
        assert effective == Permission.READ | Permission.WRITE | Permission.ANNOTATE

    def test_effective_with_missing_acls(self):
        assert effective_permissions(ALICE, None, [None, None]) == Permission.NONE

    def test_require_raises(self):
        acl = AccessControlList()
        with pytest.raises(AuthorizationError):
            require(ALICE, Permission.READ, acl, what="file f1")
        acl.grant(ALICE, Permission.READ)
        require(ALICE, Permission.READ, acl)  # no raise


class TestCAS:
    def test_member_gets_assertion(self, cas):
        assertion = cas.issue_assertion(ALICE)
        assert assertion.grants("ligo-file-1", Permission.READ)
        assert assertion.grants("ligo-file-1", Permission.ANNOTATE)
        assert not assertion.grants("ligo-file-1", Permission.WRITE)
        assert not assertion.grants("other-file", Permission.READ)

    def test_non_member_rejected(self, cas):
        with pytest.raises(AuthorizationError):
            cas.issue_assertion(BOB)

    def test_removed_member_rejected(self, cas):
        cas.remove_member(ALICE)
        with pytest.raises(AuthorizationError):
            cas.issue_assertion(ALICE)

    def test_assertion_expires(self, cas):
        assertion = cas.issue_assertion(ALICE, lifetime=10.0)
        future = time.time() + 3600
        assert not assertion.grants("ligo-x", Permission.READ, when=future)

    def test_signature_verifies(self, cas):
        assertion = cas.issue_assertion(ALICE)
        verify_assertion(assertion, [cas.credential])  # no raise

    def test_untrusted_signer_rejected(self, ca, cas):
        other = CommunityAuthorizationService("other", ca, key_bits=KB)
        assertion = cas.issue_assertion(ALICE)
        with pytest.raises(CertificateError):
            verify_assertion(assertion, [other.credential])

    def test_expired_assertion_rejected_by_verifier(self, cas):
        assertion = cas.issue_assertion(ALICE, lifetime=1.0)
        with pytest.raises(CertificateError):
            verify_assertion(assertion, [cas.credential],
                             when=time.time() + 3600)

    def test_group_policies_are_separate(self, ca):
        cas = CommunityAuthorizationService("c", ca, key_bits=KB)
        cas.add_member(ALICE, "readers")
        cas.add_member(BOB, "writers")
        cas.grant("readers", "*", Permission.READ)
        cas.grant("writers", "*", Permission.WRITE)
        assert cas.issue_assertion(ALICE).grants("x", Permission.READ)
        assert not cas.issue_assertion(ALICE).grants("x", Permission.WRITE)
        assert cas.issue_assertion(BOB).grants("x", Permission.WRITE)
