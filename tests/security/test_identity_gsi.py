"""Tests for distinguished names and the GSI simulation."""

import time

import pytest

from repro.security import (
    AuthenticationError,
    CertificateAuthority,
    CertificateError,
    DistinguishedName,
    GSIContext,
    verify_chain,
)
from repro.security.errors import SecurityError
from repro.security.gsi import create_proxy

KB = 256  # small keys keep tests fast


class TestDistinguishedName:
    def test_parse_and_format(self):
        dn = DistinguishedName.parse("/O=Grid/OU=ISI/CN=Alice")
        assert str(dn) == "/O=Grid/OU=ISI/CN=Alice"
        assert dn.common_name == "Alice"
        assert dn.get("OU") == "ISI"
        assert dn.get("C") is None

    def test_make(self):
        dn = DistinguishedName.make("Bob", org="Acme", unit="Lab")
        assert str(dn) == "/O=Acme/OU=Lab/CN=Bob"

    def test_parse_errors(self):
        with pytest.raises(SecurityError):
            DistinguishedName.parse("no-slash")
        with pytest.raises(SecurityError):
            DistinguishedName.parse("/")
        with pytest.raises(SecurityError):
            DistinguishedName.parse("/plaintext")

    def test_proxy_suffix_and_base(self):
        dn = DistinguishedName.make("Alice")
        proxy = dn.with_proxy_suffix()
        assert proxy.is_proxy_of(dn)
        assert not dn.is_proxy_of(proxy)
        assert str(proxy.base_identity()) == str(dn)

    def test_double_proxy(self):
        dn = DistinguishedName.make("Alice")
        double = dn.with_proxy_suffix().with_proxy_suffix()
        assert double.is_proxy_of(dn)
        assert str(double.base_identity()) == str(dn)


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(key_bits=KB)


@pytest.fixture(scope="module")
def alice(ca):
    return ca.issue_credential(DistinguishedName.make("Alice"), key_bits=KB)


class TestCertificates:
    def test_ca_self_signed(self, ca):
        cert = ca.certificate
        assert cert.subject == cert.issuer
        assert cert.is_ca

    def test_issue_and_verify(self, ca, alice):
        identity = verify_chain(alice.full_chain(), [ca.certificate])
        assert str(identity) == "/O=Grid/CN=Alice"

    def test_untrusted_anchor_rejected(self, alice):
        other_ca = CertificateAuthority("Other CA", key_bits=KB)
        with pytest.raises(CertificateError):
            verify_chain(alice.full_chain(), [other_ca.certificate])

    def test_expired_rejected(self, ca):
        cred = ca.issue_credential(
            DistinguishedName.make("Shortlived"), lifetime=0.0, key_bits=KB
        )
        with pytest.raises(CertificateError):
            verify_chain(cred.full_chain(), [ca.certificate],
                         when=time.time() + 3600)

    def test_empty_chain(self, ca):
        with pytest.raises(CertificateError):
            verify_chain([], [ca.certificate])


class TestProxies:
    def test_proxy_verifies_to_base_identity(self, ca, alice):
        proxy = create_proxy(alice, key_bits=KB)
        identity = verify_chain(proxy.full_chain(), [ca.certificate])
        assert str(identity) == str(alice.subject)

    def test_double_delegation(self, ca, alice):
        proxy = create_proxy(alice, key_bits=KB)
        double = create_proxy(proxy, key_bits=KB)
        identity = verify_chain(double.full_chain(), [ca.certificate])
        assert str(identity) == str(alice.subject)

    def test_proxy_lifetime_capped_by_issuer(self, ca):
        short = ca.issue_credential(
            DistinguishedName.make("S"), lifetime=60.0, key_bits=KB
        )
        proxy = create_proxy(short, lifetime=10**9, key_bits=KB)
        assert proxy.certificate.not_after <= short.certificate.not_after

    def test_forged_proxy_rejected(self, ca, alice):
        mallory = ca.issue_credential(DistinguishedName.make("Mallory"), key_bits=KB)
        # Mallory signs a proxy claiming to extend Alice's identity.
        from repro.security import rsa
        from repro.security.gsi import Certificate, _sign_cert

        now = time.time()
        forged_keys = rsa.generate_keypair(KB)
        forged = Certificate(
            subject=alice.subject.with_proxy_suffix(),
            issuer=alice.subject,
            public_key=forged_keys.public,
            serial=999,
            not_before=now - 60,
            not_after=now + 600,
            is_proxy=True,
        )
        forged = _sign_cert(forged, mallory.private_key)  # wrong key!
        with pytest.raises(CertificateError):
            verify_chain(
                (forged,) + alice.full_chain(), [ca.certificate]
            )


class TestRequestTokens:
    def test_sign_and_authenticate(self, ca, alice):
        client = GSIContext(create_proxy(alice, key_bits=KB))
        server = GSIContext(alice, trust_anchors=[ca.certificate])
        token = client.sign_request(b"payload")
        identity = server.authenticate(token, b"payload")
        assert str(identity) == str(alice.subject)

    def test_payload_mismatch(self, ca, alice):
        client = GSIContext(alice)
        server = GSIContext(alice, trust_anchors=[ca.certificate])
        token = client.sign_request(b"payload")
        with pytest.raises(AuthenticationError):
            server.authenticate(token, b"other payload")

    def test_stale_token(self, ca, alice):
        from repro.security.gsi import AuthToken

        client = GSIContext(alice)
        server = GSIContext(alice, trust_anchors=[ca.certificate])
        token = client.sign_request(b"p")
        stale = AuthToken(token.chain, token.timestamp - 3600,
                          token.payload_digest, token.signature)
        with pytest.raises(AuthenticationError):
            server.authenticate(stale, b"p")

    def test_signature_must_match_leaf_key(self, ca, alice):
        mallory = ca.issue_credential(DistinguishedName.make("M"), key_bits=KB)
        # Mallory steals Alice's chain but signs with her own key.
        client = GSIContext(alice)
        token = client.sign_request(b"p")
        from repro.security import rsa
        from repro.security.gsi import AuthToken

        forged_sig = rsa.sign(mallory.private_key, token.signed_bytes())
        forged = AuthToken(token.chain, token.timestamp,
                           token.payload_digest, forged_sig)
        server = GSIContext(alice, trust_anchors=[ca.certificate])
        with pytest.raises(AuthenticationError):
            server.authenticate(forged, b"p")
