"""Concurrency stress: interleaved bulk writes and single-op reads.

N writer threads issue atomic bulk creates and atomic bulk attribute
flips against one service while reader threads run attribute queries and
single-op reads.  Strict consistency is asserted the whole time:

* no torn batches — a query never sees a strict subset of an atomic
  batch (every batch is visible fully or not at all);
* no deadlocks — every thread finishes within the join timeout;
* no unexpected faults anywhere.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import MCSClient, MCSService

BATCH = 8
ROUNDS = 5
WRITERS = 3
READERS = 2
FLIPS = 3


@pytest.fixture()
def service() -> MCSService:
    svc = MCSService()
    svc.catalog.define_attribute("batch_tag", "string")
    svc.catalog.define_attribute("state", "string")
    return svc


def test_bulk_writers_never_expose_torn_batches(service: MCSService) -> None:
    errors: list[BaseException] = []
    committed: list[str] = []  # tags whose create-batch has committed
    committed_lock = threading.Lock()
    writers_done = threading.Event()

    def writer(w: int) -> None:
        client = MCSClient.in_process(service, caller=f"writer-{w}")
        try:
            for r in range(ROUNDS):
                tag = f"w{w}-r{r}"
                names = [f"{tag}-f{k}" for k in range(BATCH)]
                response = client.bulk_create_files(
                    [
                        {
                            "name": name,
                            "attributes": {"batch_tag": tag, "state": "a"},
                        }
                        for name in names
                    ],
                    atomic=True,
                )
                assert response["ok"] == BATCH
                with committed_lock:
                    committed.append(tag)
                # Atomically flip the whole batch's state back and forth;
                # a reader must never catch it half-flipped.
                for flip in range(FLIPS):
                    state = "b" if flip % 2 == 0 else "a"
                    response = client.bulk_set_attributes(
                        [
                            {"name": name, "attributes": {"state": state}}
                            for name in names
                        ],
                        atomic=True,
                    )
                    assert response["ok"] == BATCH
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)
        finally:
            client.close()

    def reader(r: int) -> None:
        client = MCSClient.in_process(service, caller=f"reader-{r}")
        try:
            while not writers_done.is_set():
                with committed_lock:
                    tags = list(committed)
                if not tags:
                    continue
                tag = tags[r % len(tags)]
                # One query is one consistent statement: an atomic batch
                # is all-visible or not-yet-visible, and an atomic flip
                # moves all BATCH members at once.
                total = client.query_files_by_attributes({"batch_tag": tag})
                assert len(total) in (0, BATCH), (
                    f"torn batch {tag}: saw {len(total)}/{BATCH} files"
                )
                for state in ("a", "b"):
                    seen = client.query_files_by_attributes(
                        {"batch_tag": tag, "state": state}
                    )
                    assert len(seen) in (0, BATCH), (
                        f"torn flip {tag} state={state}: "
                        f"saw {len(seen)}/{BATCH}"
                    )
                # Single-op read mixed in with the queries.
                client.get_logical_file(f"{tag}-f0")
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)
        finally:
            client.close()

    writer_threads = [
        threading.Thread(target=writer, args=(w,), daemon=True)
        for w in range(WRITERS)
    ]
    reader_threads = [
        threading.Thread(target=reader, args=(r,), daemon=True)
        for r in range(READERS)
    ]
    for thread in writer_threads + reader_threads:
        thread.start()
    for thread in writer_threads:
        thread.join(timeout=60)
    writers_done.set()
    for thread in reader_threads:
        thread.join(timeout=60)
    stuck = [t for t in writer_threads + reader_threads if t.is_alive()]
    assert not stuck, f"deadlock: {len(stuck)} thread(s) never finished"
    assert not errors, f"concurrent bulk errors: {errors[:3]}"
    assert service.catalog.stats()["files"] == WRITERS * ROUNDS * BATCH
