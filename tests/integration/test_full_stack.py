"""Cross-module integration tests: the paper's scenarios end to end."""

import threading

import pytest

from repro.core import MCSClient, MCSService, MetadataCatalog, ObjectType
from repro.db import Database
from repro.gridftp import GridFTPServer, StorageSite
from repro.ligo import generate_products, pulsar_search_workflow, register_ligo_attributes
from repro.pegasus import PegasusPlanner, WorkflowExecutor
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient
from repro.security import (
    CertificateAuthority,
    DistinguishedName,
    GSIContext,
    Permission,
)
from repro.security.gsi import create_proxy
from repro.soap import SoapServer


class TestDurableMCS:
    """The MCS catalog on a durable database survives restart."""

    def test_metadata_survives_restart(self, tmp_path):
        db = Database(directory=str(tmp_path))
        catalog = MetadataCatalog(db)
        catalog.define_attribute("exp", "string")
        catalog.create_collection("c1")
        catalog.create_file("f1", collection="c1", attributes={"exp": "x"})
        catalog.annotate(ObjectType.FILE, "f1", "note", "alice")
        db.close()

        db2 = Database(directory=str(tmp_path))
        catalog2 = MetadataCatalog(db2)
        assert catalog2.get_file("f1").collection_id is not None
        assert catalog2.get_attributes(ObjectType.FILE, "f1") == {"exp": "x"}
        assert catalog2.annotations(ObjectType.FILE, "f1")[0].text == "note"
        assert catalog2.query_files_by_attributes({"exp": "x"}) == ["f1"]
        db2.close()

    def test_checkpoint_then_more_writes(self, tmp_path):
        db = Database(directory=str(tmp_path))
        catalog = MetadataCatalog(db)
        catalog.define_attribute("n", "int")
        catalog.create_file("a", attributes={"n": 1})
        db.checkpoint()
        catalog.create_file("b", attributes={"n": 2})
        db.close()
        catalog2 = MetadataCatalog(Database(directory=str(tmp_path)))
        assert catalog2.stats()["files"] == 2


class TestGSIOverSoap:
    """GSI-authenticated requests over the real HTTP transport."""

    def test_authenticated_flow(self):
        ca = CertificateAuthority(key_bits=256)
        alice = ca.issue_credential(DistinguishedName.make("Alice"), key_bits=256)
        proxy = create_proxy(alice, key_bits=256)
        server_cred = ca.issue_credential(DistinguishedName.make("MCS"), key_bits=256)
        service = MCSService(
            gsi_context=GSIContext(server_cred, trust_anchors=[ca.certificate]),
            granularity="service",
        )
        service.catalog.set_permissions(
            ObjectType.SERVICE, None, str(alice.subject), Permission.all()
        )
        with SoapServer(service.handle, fault_mapper=service.fault_mapper) as srv:
            client = MCSClient.connect(*srv.endpoint)
            client._gsi = GSIContext(proxy)
            client.define_attribute("k", "int")
            client.create_logical_file("f1", attributes={"k": 1})
            record = client.get_logical_file("f1")
            assert record["creator"] == str(alice.subject)
            client.close()

    def test_anonymous_rejected_over_soap(self):
        ca = CertificateAuthority(key_bits=256)
        server_cred = ca.issue_credential(DistinguishedName.make("MCS"), key_bits=256)
        service = MCSService(
            gsi_context=GSIContext(server_cred, trust_anchors=[ca.certificate]),
            granularity="service",
        )
        from repro.core.errors import NotAuthenticatedError

        with SoapServer(service.handle, fault_mapper=service.fault_mapper) as srv:
            client = MCSClient.connect(*srv.endpoint, caller="/O=G/CN=Nobody")
            with pytest.raises(NotAuthenticatedError):
                client.create_logical_file("f1")
            client.close()


class TestConcurrentSoapClients:
    def test_parallel_publication_and_discovery(self):
        service = MCSService()
        setup = MCSClient.in_process(service, caller="setup")
        setup.define_attribute("worker", "int")
        errors = []

        with SoapServer(service.handle, fault_mapper=service.fault_mapper) as srv:
            def worker(n):
                try:
                    client = MCSClient.connect(*srv.endpoint, caller=f"w{n}")
                    for i in range(10):
                        client.create_logical_file(
                            f"w{n}-f{i}", attributes={"worker": n}
                        )
                    found = client.query_files_by_attributes({"worker": n})
                    assert len(found) == 10
                    client.close()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(n,)) for n in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert service.catalog.stats()["files"] == 50


class TestLigoPegasusPipeline:
    """The §6.1 pipeline: publish → discover → plan → execute → reuse."""

    @pytest.fixture
    def world(self):
        service = MCSService()
        mcs = MCSClient.in_process(service, caller="pegasus")
        register_ligo_attributes(mcs)
        sites = {n: StorageSite(n) for n in ("a", "b")}
        gridftp = GridFTPServer(sites)
        lrcs = {f"lrc-{n}": LocalReplicaCatalog(f"lrc-{n}") for n in sites}
        rls = RLSClient(ReplicaLocationIndex(), lrcs)
        raws = []
        for product in generate_products(20, seed=4):
            if product.attributes["data_product"] != "time_series":
                continue
            raws.append(product.logical_name)
            sites["a"].store(product.logical_name, b"x" * 512)
            mcs.create_logical_file(
                product.logical_name, data_type="gwf",
                attributes=product.attributes,
            )
            lrcs["lrc-a"].add_mapping(
                product.logical_name, f"gsiftp://a/{product.logical_name}"
            )
            if len(raws) == 3:
                break
        rls.refresh_all()
        return mcs, rls, gridftp, sites, raws

    def test_full_cycle(self, world):
        mcs, rls, gridftp, sites, raws = world
        discovered = mcs.query_files_by_attributes({"data_product": "time_series"})
        assert set(raws) <= set(discovered)

        workflow = pulsar_search_workflow(raws, search_id="it-1")
        planner = PegasusPlanner(mcs, rls, sites=list(sites))
        plan = planner.plan(workflow)
        executor = WorkflowExecutor(
            mcs, rls, gridftp, lrc_for_site={n: f"lrc-{n}" for n in sites}
        )
        report = executor.execute(plan)
        assert "it-1-result.xml" in report.registered_files

        # Derived product discoverable by its search id
        hits = mcs.query_files_by_attributes({"pulsar_search_id": "it-1"})
        assert "it-1-result.xml" in hits

        # Replanning prunes everything
        replan = planner.plan(workflow)
        assert len(replan.jobs) == 0

        # Provenance chain recorded for the final product
        history = mcs.get_transformations("it-1-result.xml")
        assert any("search" in t["description"] for t in history)

    def test_partial_reuse(self, world):
        mcs, rls, gridftp, sites, raws = world
        workflow = pulsar_search_workflow(raws, search_id="it-2")
        planner = PegasusPlanner(mcs, rls, sites=["a"])
        executor = WorkflowExecutor(
            mcs, rls, gridftp, lrc_for_site={n: f"lrc-{n}" for n in sites}
        )
        executor.execute(planner.plan(workflow))
        # A new search over the same frames but a different band: SFTs are
        # shared names? They are namespaced by search id, so nothing is
        # reused — but the *previous* search's own jobs all are.
        replan = planner.plan(workflow)
        assert set(replan.pruned_jobs) == set(workflow.jobs)
