"""Transport failure handling: reconnects, latency knob, server restart."""

import time

import pytest

from repro.soap import SoapClient, SoapFault, SoapServer
from repro.soap.errors import TransportError
from repro.soap.transport import HttpTransport


def echo(method, args):
    if method == "echo":
        return args
    raise SoapFault("NoMethod", method)


class TestReconnect:
    def test_survives_server_restart(self):
        server = SoapServer(echo).start()
        host, port = server.endpoint
        transport = HttpTransport(host, port)
        assert transport.call("echo", {"n": 1}) == {"n": 1}
        # Kill the server; the client's keep-alive socket is now dead.
        server.stop()
        replacement = SoapServer(echo, host=host, port=port).start()
        try:
            # One reconnect attempt inside call() must recover.
            assert transport.call("echo", {"n": 2}) == {"n": 2}
        finally:
            transport.close()
            replacement.stop()

    def test_unreachable_server_raises_transport_error(self):
        server = SoapServer(echo).start()
        host, port = server.endpoint
        server.stop()
        transport = HttpTransport(host, port, timeout=0.5)
        with pytest.raises(TransportError):
            transport.call("echo", {"n": 1})
        transport.close()


class TestSimulatedLatency:
    def test_latency_delays_requests(self):
        with SoapServer(echo) as server:
            host, port = server.endpoint
            fast = HttpTransport(host, port, simulated_latency_s=0.0)
            slow = HttpTransport(host, port, simulated_latency_s=0.05)
            t0 = time.perf_counter()
            fast.call("echo", {})
            fast_time = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow.call("echo", {})
            slow_time = time.perf_counter() - t0
            assert slow_time >= 0.05
            assert slow_time > fast_time
            fast.close()
            slow.close()

    def test_default_latency_zero(self):
        with SoapServer(echo) as server:
            transport = HttpTransport(*server.endpoint)
            assert transport.simulated_latency_s == 0.0
            transport.close()


class TestWorkerPool:
    def test_max_workers_bounds_concurrency(self):
        import threading

        active = []
        peak = [0]
        lock = threading.Lock()

        def slow_handler(method, args):
            with lock:
                active.append(1)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.05)
            with lock:
                active.pop()
            return None

        with SoapServer(slow_handler, max_workers=2) as server:
            clients = [SoapClient.connect_http(*server.endpoint) for _ in range(6)]
            threads = [
                threading.Thread(target=c.call, args=("op",)) for c in clients
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for c in clients:
                c.close()
        assert peak[0] <= 2
