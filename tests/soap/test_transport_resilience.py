"""Transport failure handling: reconnects, latency knob, server restart."""

import time

import pytest

from repro.soap import SoapClient, SoapFault, SoapServer
from repro.soap.errors import TransportError
from repro.soap.transport import HttpTransport


def echo(method, args):
    if method == "echo":
        return args
    raise SoapFault("NoMethod", method)


class TestReconnect:
    def test_survives_server_restart(self):
        server = SoapServer(echo).start()
        host, port = server.endpoint
        transport = HttpTransport(host, port)
        assert transport.call("echo", {"n": 1}) == {"n": 1}
        # Kill the server; the client's keep-alive socket is now dead.
        server.stop()
        replacement = SoapServer(echo, host=host, port=port).start()
        try:
            # One reconnect attempt inside call() must recover.
            assert transport.call("echo", {"n": 2}) == {"n": 2}
        finally:
            transport.close()
            replacement.stop()

    def test_unreachable_server_raises_transport_error(self):
        server = SoapServer(echo).start()
        host, port = server.endpoint
        server.stop()
        transport = HttpTransport(host, port, timeout=0.5)
        with pytest.raises(TransportError):
            transport.call("echo", {"n": 1})
        transport.close()


class TestSimulatedLatency:
    def test_latency_delays_requests(self):
        with SoapServer(echo) as server:
            host, port = server.endpoint
            fast = HttpTransport(host, port, simulated_latency_s=0.0)
            slow = HttpTransport(host, port, simulated_latency_s=0.05)
            t0 = time.perf_counter()
            fast.call("echo", {})
            fast_time = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow.call("echo", {})
            slow_time = time.perf_counter() - t0
            assert slow_time >= 0.05
            assert slow_time > fast_time
            fast.close()
            slow.close()

    def test_default_latency_zero(self):
        with SoapServer(echo) as server:
            transport = HttpTransport(*server.endpoint)
            assert transport.simulated_latency_s == 0.0
            transport.close()


class TestBulkResilience:
    """Hostile <BulkRequest> payloads must fault, never kill the server."""

    @staticmethod
    def _post_raw(host, port, payload: bytes):
        import http.client

        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST",
                "/soap",
                body=payload,
                headers={"Content-Type": "text/xml; charset=utf-8"},
            )
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"<garbage",
            b"<Envelope><Body><BulkRequest>",
            b"<Envelope><Body><BulkRequest><Rogue/></BulkRequest></Body>"
            b"</Envelope>",
            b"<Envelope><Body><BulkRequest><Call/></BulkRequest></Body>"
            b"</Envelope>",
        ],
        ids=repr,
    )
    def test_malformed_bulk_yields_fault_and_server_survives(self, payload):
        from repro.soap.envelope import parse_response

        with SoapServer(echo) as server:
            host, port = server.endpoint
            status, body = self._post_raw(host, port, payload)
            assert status == 500
            with pytest.raises(SoapFault):  # structured fault, not a crash
                parse_response(body)
            # The server must still answer a well-formed request.
            transport = HttpTransport(host, port)
            try:
                assert transport.call("echo", {"n": 1}) == {"n": 1}
            finally:
                transport.close()

    def test_oversized_batch_rejected_as_batch_too_large(self):
        with SoapServer(echo, max_bulk_items=4) as server:
            transport = HttpTransport(*server.endpoint)
            try:
                with pytest.raises(SoapFault) as excinfo:
                    transport.call_bulk([("echo", {"n": i}) for i in range(6)])
                assert excinfo.value.code == "Client.BatchTooLarge"
                # An in-limit batch still works on the same connection.
                items = transport.call_bulk(
                    [("echo", {"n": i}) for i in range(4)]
                )
                assert [item.unwrap() for item in items] == [
                    {"n": i} for i in range(4)
                ]
            finally:
                transport.close()

    def test_bulk_item_fault_does_not_poison_batch(self):
        with SoapServer(echo) as server:
            transport = HttpTransport(*server.endpoint)
            try:
                items = transport.call_bulk(
                    [("echo", {"n": 1}), ("bogus", {}), ("echo", {"n": 2})]
                )
                assert [item.ok for item in items] == [True, False, True]
                assert items[0].unwrap() == {"n": 1}
                assert items[2].unwrap() == {"n": 2}
                with pytest.raises(SoapFault):
                    items[1].unwrap()
            finally:
                transport.close()


class TestCounterExactness:
    def test_concurrent_posts_count_exactly(self):
        """Regression: requests_served lost updates under concurrent POSTs
        when it was a plain int behind the GIL-unsafe += pattern."""
        import threading

        per_thread = 25
        threads_n = 8
        with SoapServer(echo, max_workers=8) as server:
            before = server.requests_served

            def hammer():
                transport = HttpTransport(*server.endpoint)
                try:
                    for i in range(per_thread):
                        transport.call("echo", {"i": i})
                finally:
                    transport.close()

            threads = [
                threading.Thread(target=hammer) for _ in range(threads_n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert (
                server.requests_served == before + per_thread * threads_n
            )
            assert server.faults_served == 0


class TestWorkerPool:
    def test_max_workers_bounds_concurrency(self):
        import threading

        active = []
        peak = [0]
        lock = threading.Lock()

        def slow_handler(method, args):
            with lock:
                active.append(1)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.05)
            with lock:
                active.pop()
            return None

        with SoapServer(slow_handler, max_workers=2) as server:
            clients = [SoapClient.connect_http(*server.endpoint) for _ in range(6)]
            threads = [
                threading.Thread(target=c.call, args=("op",)) for c in clients
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for c in clients:
                c.close()
        assert peak[0] <= 2


class TestTimeoutSplit:
    """Regression: ``timeout`` used to arm *both* the TCP connect and every
    socket read, so a slow response inherited the generous connect budget
    (or a tight connect budget strangled legitimate slow responses)."""

    def test_read_timeout_bounds_a_slow_response(self, fault_plan):
        fault_plan("soap.server:slow=latency,ms=600")
        with SoapServer(echo) as server:
            transport = HttpTransport(
                *server.endpoint, connect_timeout=5.0, read_timeout=0.15
            )
            t0 = time.perf_counter()
            with pytest.raises(TransportError):
                transport.call("slow", {})
            elapsed = time.perf_counter() - t0
            transport.close()
        # Gave up on the read deadline (plus one reconnect attempt), far
        # inside the 5 s connect budget the old conflated code would use.
        assert elapsed < 2.0

    def test_tight_connect_timeout_does_not_strangle_slow_reads(self, fault_plan):
        fault_plan("soap.server:echo=latency,ms=300")
        with SoapServer(echo) as server:
            transport = HttpTransport(
                *server.endpoint, connect_timeout=0.1, read_timeout=5.0
            )
            # Loopback connect is instant; the 300 ms response must ride
            # the read deadline, not the 100 ms connect deadline.
            assert transport.call("echo", {"n": 3}) == {"n": 3}
            transport.close()

    def test_both_default_to_the_legacy_timeout(self):
        transport = HttpTransport("localhost", 1, timeout=7.5)
        assert transport.connect_timeout == 7.5
        assert transport.read_timeout == 7.5
        transport.close()

    def test_split_reaches_transport_through_connect_http(self):
        with SoapServer(echo) as server:
            client = SoapClient.connect_http(
                *server.endpoint, connect_timeout=1.0, read_timeout=9.0
            )
            assert client._transport.connect_timeout == 1.0
            assert client._transport.read_timeout == 9.0
            assert client.call("echo", n=1) == {"n": 1}
            client.close()
