"""Tests for the typed XML value codec."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.errors import EncodingError
from repro.soap.xmlcodec import dumps, loads


ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    -42,
    10**15,
    3.14,
    -0.0001,
    "",
    "hello",
    "unicode ✓ ümläut",
    "<tag> & 'quotes' \"here\"",
    dt.date(2003, 11, 15),
    dt.time(23, 59, 59),
    dt.datetime(2003, 11, 15, 12, 30, 45, 123456),
    [],
    [1, 2, 3],
    ["mixed", 1, None, 2.5],
    {},
    {"a": 1, "b": [True, None]},
    {"nested": {"deep": {"deeper": "x"}}},
    [{"list": ["of", {"dicts": 1}]}],
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", ROUND_TRIP_VALUES, ids=repr)
    def test_round_trip(self, value):
        assert loads(dumps(value)) == value

    def test_bool_not_confused_with_int(self):
        assert loads(dumps(True)) is True
        assert loads(dumps(1)) == 1
        assert not isinstance(loads(dumps(1)), bool)

    def test_tuple_becomes_list(self):
        assert loads(dumps((1, 2))) == [1, 2]


class TestErrors:
    def test_unencodable_type(self):
        with pytest.raises(EncodingError):
            dumps(object())

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            dumps({1: "x"})

    def test_malformed_xml(self):
        with pytest.raises(EncodingError):
            loads(b"<unclosed")

    def test_unknown_type_tag(self):
        with pytest.raises(EncodingError):
            loads(b'<value t="quux">x</value>')


# XML 1.0 cannot carry control characters; \r is normalized by parsers.
_xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=40,
)

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**12), max_value=10**12),
        st.floats(allow_nan=False, allow_infinity=False),
        _xml_text,
        st.dates(min_value=dt.date(1900, 1, 1), max_value=dt.date(2100, 1, 1)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                min_size=1,
                max_size=10,
            ),
            children,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


@settings(max_examples=80, deadline=None)
@given(json_like)
def test_property_round_trip(value):
    assert loads(dumps(value)) == value
