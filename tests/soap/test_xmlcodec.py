"""Tests for the typed XML value codec."""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.errors import EncodingError
from repro.soap.xmlcodec import dumps, loads


ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    -42,
    10**15,
    3.14,
    -0.0001,
    "",
    "hello",
    "unicode ✓ ümläut",
    "<tag> & 'quotes' \"here\"",
    dt.date(2003, 11, 15),
    dt.time(23, 59, 59),
    dt.datetime(2003, 11, 15, 12, 30, 45, 123456),
    [],
    [1, 2, 3],
    ["mixed", 1, None, 2.5],
    {},
    {"a": 1, "b": [True, None]},
    {"nested": {"deep": {"deeper": "x"}}},
    [{"list": ["of", {"dicts": 1}]}],
]


class TestRoundTrip:
    @pytest.mark.parametrize("value", ROUND_TRIP_VALUES, ids=repr)
    def test_round_trip(self, value):
        assert loads(dumps(value)) == value

    def test_bool_not_confused_with_int(self):
        assert loads(dumps(True)) is True
        assert loads(dumps(1)) == 1
        assert not isinstance(loads(dumps(1)), bool)

    def test_tuple_becomes_list(self):
        assert loads(dumps((1, 2))) == [1, 2]


class TestErrors:
    def test_unencodable_type(self):
        with pytest.raises(EncodingError):
            dumps(object())

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            dumps({1: "x"})

    def test_malformed_xml(self):
        with pytest.raises(EncodingError):
            loads(b"<unclosed")

    def test_unknown_type_tag(self):
        with pytest.raises(EncodingError):
            loads(b'<value t="quux">x</value>')


# XML 1.0 cannot carry control characters, surrogates, or the noncharacters
# U+FFFE/U+FFFF (they are outside the Char production even when escaped);
# \r is normalized by parsers.
_xml_chars = st.characters(
    blacklist_categories=("Cs", "Cc"),
    blacklist_characters="\ufffe\uffff",
)
_xml_text = st.text(alphabet=_xml_chars, max_size=40)

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**12), max_value=10**12),
        st.floats(allow_nan=False, allow_infinity=False),
        _xml_text,
        st.dates(min_value=dt.date(1900, 1, 1), max_value=dt.date(2100, 1, 1)),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet=_xml_chars, min_size=1, max_size=10),
            children,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


@settings(max_examples=80, deadline=None)
@given(json_like)
def test_property_round_trip(value):
    assert loads(dumps(value)) == value


# --------------------------------------------------------------------------
# <BulkRequest> / <BulkResponse> codec fuzzing
# --------------------------------------------------------------------------

from repro.soap.envelope import (  # noqa: E402 - grouped with their tests
    BulkItem,
    SoapFault,
    build_bulk_request,
    build_bulk_response,
    build_request,
    parse_any_request,
    parse_bulk_request,
    parse_bulk_response,
)

_method_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)
_arg_name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=8
)
_operations = st.lists(
    st.tuples(_method_name, st.dictionaries(_arg_name, json_like, max_size=3)),
    min_size=1,
    max_size=5,
)


class TestBulkCodec:
    @settings(max_examples=40, deadline=None)
    @given(_operations)
    def test_bulk_request_round_trip(self, operations):
        data = build_bulk_request(operations, request_id="rid-1")
        parsed, request_id = parse_bulk_request(data)
        assert request_id == "rid-1"
        assert [(m, a) for m, a in parsed] == [(m, a) for m, a in operations]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.one_of(
                json_like.map(lambda v: BulkItem(ok=True, result=v)),
                st.tuples(_method_name, _xml_text).map(
                    lambda cm: BulkItem(
                        ok=False, fault=SoapFault(cm[0], cm[1])
                    )
                ),
            ),
            max_size=5,
        )
    )
    def test_bulk_response_round_trip(self, items):
        parsed = parse_bulk_response(build_bulk_response(items))
        assert len(parsed) == len(items)
        for got, want in zip(parsed, items):
            assert got.ok == want.ok
            if want.ok:
                assert got.result == want.result
            else:
                assert got.fault.code == want.fault.code
                assert got.fault.message == want.fault.message

    def test_parse_any_request_dispatches_single_and_bulk(self):
        single = parse_any_request(build_request("ping", {}, "rid-9"))
        assert not single.bulk
        assert single.calls == [("ping", {})]
        assert single.request_id == "rid-9"
        bulk = parse_any_request(build_bulk_request([("ping", {})] * 3))
        assert bulk.bulk
        assert len(bulk.calls) == 3

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"not xml at all",
            b"<Envelope><Body><BulkRequest>",  # truncated mid-envelope
            b"<Envelope><Body/></Envelope>",  # no Call, no BulkRequest
            b"<Envelope><Body><BulkRequest/></Envelope>",  # truncated close
            b"<Envelope><Body><BulkRequest><Rogue/></BulkRequest></Body>"
            b"</Envelope>",  # non-Call child
            b"<Envelope><Body><BulkRequest><Call/></BulkRequest></Body>"
            b"</Envelope>",  # Call without method
        ],
        ids=repr,
    )
    def test_malformed_bulk_request_is_structured_error(self, payload):
        with pytest.raises(EncodingError):
            parse_any_request(payload)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_bulk_parsers(self, data):
        for parser in (parse_any_request, parse_bulk_request,
                       parse_bulk_response):
            try:
                parser(data)
            except (EncodingError, SoapFault):
                pass  # structured outcomes only — anything else propagates

    @settings(max_examples=40, deadline=None)
    @given(_operations, st.integers(min_value=0, max_value=60))
    def test_truncated_bulk_request_never_crashes(self, operations, cut):
        data = build_bulk_request(operations)
        truncated = data[: max(0, len(data) - cut)]
        try:
            parsed, _rid = parse_bulk_request(truncated)
        except EncodingError:
            return
        assert len(parsed) == len(operations)  # only intact payloads parse
