"""Tests for SOAP envelopes and faults."""

import pytest

from repro.soap.envelope import (
    SoapFault,
    build_fault,
    build_request,
    build_response,
    parse_request,
    parse_response,
)
from repro.soap.errors import EncodingError


class TestRequests:
    def test_round_trip(self):
        data = build_request("create", {"name": "f1", "count": 3, "flags": [1, 2]})
        method, args = parse_request(data)
        assert method == "create"
        assert args == {"name": "f1", "count": 3, "flags": [1, 2]}

    def test_no_args(self):
        method, args = parse_request(build_request("ping", {}))
        assert method == "ping" and args == {}

    def test_malformed_request(self):
        with pytest.raises(EncodingError):
            parse_request(b"not xml at all")

    def test_missing_method(self):
        with pytest.raises(EncodingError):
            parse_request(
                b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
                b"<Body><Call/></Body></Envelope>"
            )

    def test_missing_body(self):
        with pytest.raises(EncodingError):
            parse_request(
                b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
                b"</Envelope>"
            )


class TestResponses:
    def test_round_trip(self):
        assert parse_response(build_response({"ok": True})) == {"ok": True}
        assert parse_response(build_response(None)) is None
        assert parse_response(build_response([1, "two"])) == [1, "two"]

    def test_fault_raised_on_parse(self):
        fault = SoapFault("MCS.NotFound", "no such file", {"name": "f1"})
        data = build_fault(fault)
        with pytest.raises(SoapFault) as excinfo:
            parse_response(data)
        assert excinfo.value.code == "MCS.NotFound"
        assert excinfo.value.message == "no such file"
        assert excinfo.value.detail == {"name": "f1"}

    def test_neither_response_nor_fault(self):
        with pytest.raises(EncodingError):
            parse_response(
                b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
                b"<Body/></Envelope>"
            )

    def test_malformed_response(self):
        with pytest.raises(EncodingError):
            parse_response(b"<garbage")


class TestFault:
    def test_repr(self):
        fault = SoapFault("Code", "msg")
        assert "Code" in repr(fault)

    def test_default_detail(self):
        assert SoapFault("c", "m").detail == {}
