"""Integration tests for the HTTP SOAP server + client + WSDL."""

import threading

import pytest

from repro.soap import (
    DirectTransport,
    LoopbackCodecTransport,
    SoapClient,
    SoapFault,
    SoapServer,
)
from repro.soap.client import fetch_wsdl, from_wsdl
from repro.soap.wsdl import (
    OperationDef,
    ServiceDescription,
    generate_client_stubs,
    generate_wsdl,
    parse_wsdl,
)


def echo_handler(method, args):
    if method == "echo":
        return args
    if method == "fail":
        raise SoapFault("Test.Fail", "requested failure", {"n": 1})
    if method == "crash":
        raise RuntimeError("unexpected")
    raise SoapFault("Test.NoMethod", f"no method {method}")


@pytest.fixture(scope="module")
def server():
    desc = ServiceDescription("Echo")
    desc.add("echo", ("value",), doc="echo the arguments")
    desc.add("fail", ())
    with SoapServer(echo_handler, description=desc) as srv:
        yield srv


class TestHttpRoundTrip:
    def test_call(self, server):
        client = SoapClient.connect_http(*server.endpoint)
        assert client.call("echo", value=42) == {"value": 42}
        client.close()

    def test_fault_propagates(self, server):
        with SoapClient.connect_http(*server.endpoint) as client:
            with pytest.raises(SoapFault) as excinfo:
                client.call("fail")
            assert excinfo.value.code == "Test.Fail"
            assert excinfo.value.detail == {"n": 1}

    def test_unhandled_exception_becomes_server_fault(self, server):
        with SoapClient.connect_http(*server.endpoint) as client:
            with pytest.raises(SoapFault) as excinfo:
                client.call("crash")
            assert excinfo.value.code == "Server"
            assert "RuntimeError" in excinfo.value.message

    def test_connection_reuse(self, server):
        before = server.requests_served
        with SoapClient.connect_http(*server.endpoint) as client:
            for i in range(20):
                client.call("echo", value=i)
        assert server.requests_served == before + 20

    def test_concurrent_clients(self, server):
        errors = []

        def worker(n):
            try:
                with SoapClient.connect_http(*server.endpoint) as client:
                    for i in range(10):
                        assert client.call("echo", value=n * 100 + i) == {
                            "value": n * 100 + i
                        }
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_404_on_wrong_path(self, server):
        import http.client

        conn = http.client.HTTPConnection(*server.endpoint)
        conn.request("POST", "/other", body=b"")
        assert conn.getresponse().status == 404
        conn.close()


class TestTransports:
    def test_direct(self):
        client = SoapClient(DirectTransport(echo_handler))
        assert client.call("echo", a=1) == {"a": 1}

    def test_loopback_codec(self):
        client = SoapClient(LoopbackCodecTransport(echo_handler))
        assert client.call("echo", a=[1, None]) == {"a": [1, None]}

    def test_loopback_codec_fault(self):
        client = SoapClient(LoopbackCodecTransport(echo_handler))
        with pytest.raises(SoapFault):
            client.call("fail")


class TestWsdl:
    def test_generate_and_parse(self):
        desc = ServiceDescription("S")
        desc.add("op1", ("a", "b"), doc="does things")
        desc.add("op2", ())
        restored = parse_wsdl(generate_wsdl(desc, endpoint="http://x/soap"))
        assert restored.name == "S"
        assert restored.operation("op1").params == ("a", "b")
        assert restored.operation("op1").doc == "does things"

    def test_fetch_over_http(self, server):
        data = fetch_wsdl(*server.endpoint)
        desc = parse_wsdl(data)
        assert desc.name == "Echo"
        assert desc.operation("echo").params == ("value",)

    def test_generated_stub(self, server):
        stub = from_wsdl(*server.endpoint)
        assert stub.echo(value="hi") == {"value": "hi"}

    def test_stub_validates_params(self):
        desc = ServiceDescription("S")
        desc.add("op", ("x",))
        stub = generate_client_stubs(desc, lambda m, a: a)
        assert stub.op(x=1) == {"x": 1}
        with pytest.raises(TypeError):
            stub.op(bogus=1)

    def test_unknown_operation_lookup(self):
        desc = ServiceDescription("S")
        with pytest.raises(KeyError):
            desc.operation("missing")
