"""Fault-injection fixtures for the SOAP transport tests."""

from repro.faults.pytest_plugin import fault_plan, no_faults  # noqa: F401
