"""Tests for the federated MCS (§9 future-work design)."""

import pytest

from repro.core import ObjectQuery
from repro.federation import FederatedMCS, LocalMCS, MCSIndexNode


def make_member(catalog_id, experiment, runs):
    member = LocalMCS(catalog_id)
    member.client.define_attribute("experiment", "string")
    member.client.define_attribute("run", "int")
    for run in runs:
        member.client.create_logical_file(
            f"{catalog_id}-{experiment}-r{run}",
            attributes={"experiment": experiment, "run": run},
        )
    return member


@pytest.fixture
def federation():
    members = {
        "isi": make_member("isi", "pulsar", [1, 2, 3]),
        "ncar": make_member("ncar", "climate", [10, 11]),
        "cern": make_member("cern", "pulsar", [7]),
    }
    index = MCSIndexNode()
    fed = FederatedMCS(index, members)
    fed.refresh_all()
    return fed, members, index


class TestSummaries:
    def test_summary_contents(self, federation):
        fed, members, index = federation
        summary = members["isi"].make_summary()
        assert "experiment" in summary.attribute_names
        assert summary.file_count == 3
        assert summary.might_match("experiment", "=", "pulsar")
        assert not summary.might_match("nonexistent", "=", "x")

    def test_numeric_range_pruning(self, federation):
        fed, members, index = federation
        summary = members["ncar"].make_summary()
        assert summary.might_match("run", "=", 10)
        assert not summary.might_match("run", "=", 99)
        assert summary.might_match("run", ">=", 11)
        assert not summary.might_match("run", ">=", 12)


class TestIndexNode:
    def test_candidates_filtered_by_conditions(self, federation):
        fed, members, index = federation
        assert index.candidate_catalogs([("experiment", "=", "pulsar")]) == [
            "cern",
            "isi",
        ]
        assert index.candidate_catalogs([("experiment", "=", "climate")]) == ["ncar"]

    def test_stale_sequence_dropped(self, federation):
        fed, members, index = federation
        old = members["isi"].make_summary()
        newer = members["isi"].make_summary()
        assert index.receive_summary(newer)
        assert not index.receive_summary(old)

    def test_soft_state_expiry(self):
        clock = [0.0]
        index = MCSIndexNode(timeout=5.0, clock=lambda: clock[0])
        member = make_member("x", "e", [1])
        index.receive_summary(member.make_summary())
        assert index.known_catalogs() == ["x"]
        clock[0] = 6.0
        assert index.candidate_catalogs([("experiment", "=", "e")]) == []
        assert index.expire() == 1

    def test_total_files(self, federation):
        fed, members, index = federation
        assert index.total_files() == 6


class TestFederatedQueries:
    def test_scatter_only_to_candidates(self, federation):
        fed, members, index = federation
        results = fed.query_files_by_attributes({"experiment": "climate"})
        assert set(results) == {"ncar"}
        # only the one candidate got a subquery
        assert fed.subqueries_issued == 1

    def test_merged_results(self, federation):
        fed, members, index = federation
        results = fed.query_files_by_attributes({"experiment": "pulsar"})
        assert set(results) == {"isi", "cern"}
        assert results["isi"] == ["isi-pulsar-r1", "isi-pulsar-r2", "isi-pulsar-r3"]

    def test_flat_query(self, federation):
        fed, members, index = federation
        names = fed.flat_query({"experiment": "pulsar", "run": 7})
        assert names == ["cern-pulsar-r7"]

    def test_object_query_across_federation(self, federation):
        fed, members, index = federation
        q = ObjectQuery().where("run", ">=", 10)
        results = fed.query(q)
        assert set(results) == {"ncar"}

    def test_new_data_visible_after_refresh(self, federation):
        fed, members, index = federation
        members["ncar"].client.create_logical_file(
            "ncar-newexp-r1", attributes={"experiment": "newexp", "run": 1}
        )
        # Before refresh the index doesn't know the new value.
        assert fed.query_files_by_attributes({"experiment": "newexp"}) == {}
        fed.refresh_all()
        assert set(fed.query_files_by_attributes({"experiment": "newexp"})) == {"ncar"}
