"""Tests for the command-line interface (against a live SOAP server)."""

import json

import pytest

from repro.cli import _parse_pairs, _parse_value, build_parser, main
from repro.core import MCSService
from repro.soap import SoapServer


@pytest.fixture(scope="module")
def server():
    service = MCSService()
    with SoapServer(service.handle, fault_mapper=service.fault_mapper) as srv:
        yield srv


def run_cli(server, capsys, *argv):
    code = main(["--host", server.host, "--port", str(server.port), *argv])
    out = capsys.readouterr().out
    return code, (json.loads(out) if out.strip() else None)


class TestValueParsing:
    def test_int(self):
        assert _parse_value("42") == 42

    def test_float(self):
        assert _parse_value("2.5") == 2.5

    def test_date(self):
        import datetime as dt

        assert _parse_value("2003-11-15") == dt.date(2003, 11, 15)

    def test_string_fallback(self):
        assert _parse_value("hello") == "hello"

    def test_pairs(self):
        assert _parse_pairs(["a=1", "b=x"]) == {"a": 1, "b": "x"}

    def test_bad_pair(self):
        with pytest.raises(SystemExit):
            _parse_pairs(["nodelimiter"])


class TestCommands:
    def test_ping(self, server, capsys):
        code, out = run_cli(server, capsys, "ping")
        assert code == 0 and out == "pong"

    def test_full_file_lifecycle(self, server, capsys):
        code, _ = run_cli(server, capsys, "define-attribute", "cli_run", "int")
        assert code == 0
        code, _ = run_cli(server, capsys, "create-collection", "cli-coll")
        assert code == 0
        code, created = run_cli(
            server, capsys, "add-file", "cli-f1",
            "--collection", "cli-coll", "--data-type", "binary",
            "--attr", "cli_run=7",
        )
        assert code == 0 and created["name"] == "cli-f1"

        code, record = run_cli(server, capsys, "get-file", "cli-f1")
        assert record["data_type"] == "binary"
        assert record["user_attributes"] == {"cli_run": 7}

        code, names = run_cli(server, capsys, "query", "--attr", "cli_run=7")
        assert names == ["cli-f1"]

        code, names = run_cli(
            server, capsys, "query", "--field", "data_type=binary"
        )
        assert "cli-f1" in names

        code, members = run_cli(server, capsys, "list-collection", "cli-coll")
        assert members == ["cli-f1"]

        code, _ = run_cli(server, capsys, "annotate", "cli-f1", "note here")
        code, notes = run_cli(server, capsys, "annotations", "cli-f1")
        assert notes[0]["text"] == "note here"

        code, _ = run_cli(server, capsys, "delete-file", "cli-f1")
        assert code == 0
        code, _ = run_cli(server, capsys, "get-file", "cli-f1")
        assert code == 1  # typed error -> exit code 1

    def test_query_explain(self, server, capsys):
        run_cli(server, capsys, "define-attribute", "xp_attr", "int")
        run_cli(server, capsys, "add-file", "xp-f1", "--attr", "xp_attr=5")
        code, plan = run_cli(
            server, capsys, "query", "--attr", "xp_attr=5", "--explain"
        )
        assert code == 0
        assert any("INDEX LOOKUP" in line for line in plan)
        assert plan[-1].startswith("PROJECT")

    def test_stats_and_attributes(self, server, capsys):
        code, stats = run_cli(server, capsys, "stats", "--json")
        assert code == 0 and "files" in stats
        assert "metrics" in stats  # registry snapshot rides along
        code, defs = run_cli(server, capsys, "list-attributes")
        assert code == 0 and isinstance(defs, list)

    def test_stats_pretty(self, server, capsys):
        code = main(
            ["--host", server.host, "--port", str(server.port), "stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "catalog objects:" in out
        assert "mcs_catalog_calls_total" in out

    def test_error_to_stderr(self, server, capsys):
        code = main(
            ["--host", server.host, "--port", str(server.port),
             "get-file", "definitely-missing"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_options(self):
        args = build_parser().parse_args(["serve", "--granularity", "object"])
        assert args.command == "serve"
        assert args.granularity == "object"

    def test_serve_shards_option(self):
        args = build_parser().parse_args(["serve", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["serve"]).shards is None


class TestShardedServe:
    """The `mcs serve --shards N` stack: CLI client against a SOAP
    server whose service wraps a sharded catalog."""

    @pytest.fixture(scope="class")
    def sharded_server(self):
        from repro.shard import build_sharded_catalog

        catalog = build_sharded_catalog(4)
        service = MCSService(catalog)
        with SoapServer(
            service.handle, fault_mapper=service.fault_mapper
        ) as srv:
            yield srv
        catalog.close()

    def test_lifecycle_spans_shards(self, sharded_server, capsys):
        code, _ = run_cli(
            sharded_server, capsys, "create-collection", "sh-coll"
        )
        assert code == 0
        names = [f"sh-f{i}" for i in range(8)]
        for name in names:
            code, _ = run_cli(
                sharded_server, capsys, "add-file", name,
                "--collection", "sh-coll", "--data-type", "hdf",
            )
            assert code == 0
        code, members = run_cli(
            sharded_server, capsys, "list-collection", "sh-coll"
        )
        assert code == 0 and sorted(members) == names
        code, record = run_cli(sharded_server, capsys, "get-file", "sh-f3")
        assert code == 0 and record["name"] == "sh-f3"
        code, found = run_cli(
            sharded_server, capsys, "query", "--field", "data_type=hdf",
            "--order-by", "name",
        )
        assert code == 0 and found == names
