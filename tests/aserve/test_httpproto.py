"""Byte-level tests of the sans-IO HTTP parser.

The framing logic is the async front end's exposure to the network, so
it is exercised the brutal way: every message split at every byte
boundary, pipelined pairs, and the abusive shapes (oversized, slowloris,
malformed) that must fail closed with the right status.
"""

from __future__ import annotations

import pytest

from repro.aserve.httpproto import (
    HttpProtocolError,
    HttpRequest,
    RequestParser,
    reason_for,
    render_response,
)

pytestmark = pytest.mark.aserve

BODY = b"<Envelope>x</Envelope>"
REQUEST = (
    b"POST /soap HTTP/1.1\r\n"
    b"Host: test\r\n"
    b"Content-Type: text/xml; charset=utf-8\r\n"
    b"Content-Length: %d\r\n"
    b"\r\n" % len(BODY)
) + BODY


def drain(parser: RequestParser) -> list[HttpRequest]:
    out = []
    while (request := parser.next_request()) is not None:
        out.append(request)
    return out


def assert_is_canonical(request: HttpRequest) -> None:
    assert request.method == "POST"
    assert request.target == "/soap"
    assert request.version == "HTTP/1.1"
    assert request.headers["host"] == "test"
    assert request.body == BODY
    assert request.keep_alive is True


class TestSplitFuzz:
    def test_split_at_every_byte(self):
        for cut in range(len(REQUEST) + 1):
            parser = RequestParser()
            parser.feed(REQUEST[:cut])
            got = drain(parser)
            parser.feed(REQUEST[cut:])
            got += drain(parser)
            assert len(got) == 1, f"split at {cut} yielded {len(got)} requests"
            assert_is_canonical(got[0])
            assert parser.mid_request is False

    def test_fed_one_byte_at_a_time(self):
        parser = RequestParser()
        got: list[HttpRequest] = []
        for i, byte in enumerate(REQUEST):
            parser.feed(bytes([byte]))
            got += drain(parser)
            if i < len(REQUEST) - 1:
                assert got == [], f"request completed early at byte {i}"
        assert len(got) == 1
        assert_is_canonical(got[0])

    def test_pipelined_pair_split_at_every_byte(self):
        stream = REQUEST + REQUEST
        for cut in range(len(stream) + 1):
            parser = RequestParser()
            parser.feed(stream[:cut])
            got = drain(parser)
            parser.feed(stream[cut:])
            got += drain(parser)
            assert len(got) == 2, f"split at {cut} yielded {len(got)} requests"
            for request in got:
                assert_is_canonical(request)

    def test_pipelined_burst_yields_in_order(self):
        parser = RequestParser()
        bodies = [b"one", b"two!", b"three"]
        stream = b"".join(
            b"POST /soap HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(b) + b
            for b in bodies
        )
        parser.feed(stream)
        assert [r.body for r in drain(parser)] == bodies

    def test_bare_lf_line_endings(self):
        parser = RequestParser()
        parser.feed(b"POST /soap HTTP/1.1\nContent-Length: 2\n\nok")
        (request,) = drain(parser)
        assert request.body == b"ok"
        assert request.keep_alive is True

    def test_inter_request_crlf_padding_tolerated(self):
        parser = RequestParser()
        parser.feed(REQUEST + b"\r\n\r\n" + REQUEST)
        assert len(drain(parser)) == 2


class TestStateTracking:
    def test_mid_request_distinguishes_idle_from_stalled(self):
        parser = RequestParser()
        assert parser.mid_request is False  # fresh: idle
        parser.feed(REQUEST[:10])
        assert parser.mid_request is True  # partial head: stalled
        parser.feed(REQUEST[10:])
        drain(parser)
        assert parser.mid_request is False  # between requests: idle again

    def test_mid_request_true_while_body_pending(self):
        head_len = REQUEST.index(b"\r\n\r\n") + 4
        parser = RequestParser()
        parser.feed(REQUEST[: head_len + 3])
        assert parser.next_request() is None
        assert parser.mid_request is True

    def test_buffered_bytes(self):
        parser = RequestParser()
        assert parser.buffered_bytes == 0
        parser.feed(b"POST")
        assert parser.buffered_bytes == 4


class TestKeepAliveSemantics:
    def test_http11_defaults_to_keep_alive(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.1\r\n\r\n")
        assert drain(parser)[0].keep_alive is True

    def test_http11_connection_close(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert drain(parser)[0].keep_alive is False

    def test_http10_defaults_to_close(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.0\r\n\r\n")
        assert drain(parser)[0].keep_alive is False

    def test_http10_opt_in_keep_alive(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert drain(parser)[0].keep_alive is True


def expect_error(parser: RequestParser, status: int) -> HttpProtocolError:
    with pytest.raises(HttpProtocolError) as excinfo:
        parser.next_request()
    assert excinfo.value.status == status
    return excinfo.value


class TestFailClosed:
    def test_declared_body_over_cap_is_413(self):
        parser = RequestParser(max_body_bytes=64)
        parser.feed(b"POST /soap HTTP/1.1\r\nContent-Length: 65\r\n\r\n")
        expect_error(parser, 413)

    def test_complete_header_section_over_cap_is_431(self):
        parser = RequestParser(max_header_bytes=64)
        parser.feed(
            b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 80 + b"\r\n\r\n"
        )
        expect_error(parser, 431)

    def test_slowloris_header_drip_bounded_at_431(self):
        # No terminator ever arrives; the buffer must not grow past the
        # cap before the parser slams the door.
        parser = RequestParser(max_header_bytes=64)
        parser.feed(b"GET / HTTP/1.1\r\n")
        for _ in range(40):
            try:
                parser.feed(b"X: y\r\n")
                assert parser.next_request() is None
            except HttpProtocolError as err:
                assert err.status == 431
                assert parser.buffered_bytes <= 64 + len(b"X: y\r\n")
                break
        else:
            pytest.fail("header drip never hit the 431 bound")

    def test_transfer_encoding_is_501(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        expect_error(parser, 501)

    def test_unknown_version_is_505(self):
        parser = RequestParser()
        parser.feed(b"GET / HTTP/2.0\r\n\r\n")
        expect_error(parser, 505)

    @pytest.mark.parametrize(
        "head",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"G3T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header Line\r\n\r\n",
            b"GET / HTTP/1.1\r\nName : spaced\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        ],
    )
    def test_malformed_framing_is_400(self, head):
        parser = RequestParser()
        parser.feed(head)
        expect_error(parser, 400)

    def test_parser_is_single_use_after_error(self):
        parser = RequestParser()
        parser.feed(b"GARBAGE\r\n\r\n")
        expect_error(parser, 400)
        with pytest.raises(HttpProtocolError):
            parser.feed(REQUEST)


class TestResponseRendering:
    def test_frames_content_length_and_connection(self):
        raw = render_response(200, "OK", "text/plain", b"hi", keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hi"
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 2" in head
        assert b"Connection: keep-alive" in head

    def test_close_marks_connection(self):
        raw = render_response(500, "Internal Server Error", "text/plain", b"", False)
        assert b"Connection: close" in raw

    def test_reason_for_known_and_unknown(self):
        assert reason_for(404) == "Not Found"
        assert reason_for(418) == "Unknown"
