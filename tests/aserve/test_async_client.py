"""AsyncMCSClient: the same §5 surface as coroutines.

Every combination of client and front end must agree: async client
in-process, async client over the asyncio server, and async client over
the *threaded* server (the transports are independent of which front
end answers).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aserve import AsyncSoapServer
from repro.core import (
    AsyncMCSClient,
    ClientConfig,
    MCSClient,
    MCSService,
    ObjectNotFoundError,
)
from repro.core.query import ObjectQuery
from repro.resilience import RetryPolicy
from repro.soap.server import SoapServer

pytestmark = pytest.mark.aserve

CALLER = "/O=Grid/CN=async"


def fresh_service() -> MCSService:
    service = MCSService()
    service.catalog.define_attribute("idx", "int")
    return service


async def run_workload(client: AsyncMCSClient) -> list:
    """The §5 tour: files, attributes, queries, bulk, collections."""
    assert await client.ping() == "pong"
    await client.create_collection("a-col")
    for i in range(5):
        await client.create_logical_file(
            f"a-{i}", collection="a-col", attributes={"idx": i}
        )
    await client.delete_logical_file("a-1")
    with pytest.raises(ObjectNotFoundError):
        await client.get_logical_file("a-1")
    async with client.bulk() as batch:
        handles = [
            batch.call("set_attributes", object_type="file", name="a-2",
                       attributes={"idx": 20}),
            batch.call("get_logical_file", name="a-4"),
        ]
    assert all(h.ok for h in handles)
    assert handles[1].result["name"] == "a-4"
    names = await client.query(ObjectQuery().where("idx", ">=", 2))
    listing = await client.list_collection("a-col")
    attrs = await client.get_attributes("file", "a-2")
    return [sorted(names), sorted(listing), attrs["idx"]]


class TestInProcess:
    def test_workload_and_creator_stamp(self):
        service = fresh_service()

        async def main():
            async with AsyncMCSClient.in_process(service, caller=CALLER) as client:
                result = await run_workload(client)
                info = await client.get_logical_file("a-0")
                assert info["creator"] == CALLER
                return result

        result = asyncio.run(main())
        assert result[2] == 20

    def test_matches_sync_client(self):
        sync_service, async_service = fresh_service(), fresh_service()

        async def main():
            async with AsyncMCSClient.in_process(
                async_service, caller=CALLER
            ) as client:
                return await run_workload(client)

        async_result = asyncio.run(main())

        # Equivalent sync workload against an identical service.
        client = MCSClient.in_process(sync_service, caller=CALLER)
        client.create_collection("a-col")
        for i in range(5):
            client.create_logical_file(
                f"a-{i}", collection="a-col", attributes={"idx": i}
            )
        client.delete_logical_file("a-1")
        client.set_attributes("file", "a-2", {"idx": 20})
        sync_result = [
            sorted(client.query(ObjectQuery().where("idx", ">=", 2))),
            sorted(client.list_collection("a-col")),
            client.get_attributes("file", "a-2")["idx"],
        ]
        client.close()
        assert async_result == sync_result


class TestOverSockets:
    def test_async_client_against_async_server(self):
        service = fresh_service()

        async def main():
            async with AsyncMCSClient.connect(
                *srv.endpoint, ClientConfig(caller=CALLER)
            ) as client:
                return await run_workload(client)

        with AsyncSoapServer(
            service.handle, fault_mapper=service.fault_mapper
        ) as srv:
            result = asyncio.run(main())
        assert result[2] == 20

    def test_async_client_against_threaded_server(self):
        service = fresh_service()

        async def main():
            async with AsyncMCSClient.connect(
                *srv.endpoint, ClientConfig(caller=CALLER)
            ) as client:
                return await run_workload(client)

        with SoapServer(
            service.handle, fault_mapper=service.fault_mapper
        ) as srv:
            result = asyncio.run(main())
        assert result[2] == 20

    def test_concurrent_tasks_share_a_bounded_pool(self):
        service = fresh_service()

        async def main():
            config = ClientConfig(caller=CALLER, pool_size=3)
            async with AsyncMCSClient.connect(*srv.endpoint, config) as client:
                await client.create_collection("c")

                async def one(i: int) -> list[str]:
                    await client.create_logical_file(
                        f"c-{i}", collection="c", attributes={"idx": i}
                    )
                    return await client.query(
                        ObjectQuery().where("idx", "=", i)
                    )

                results = await asyncio.gather(*(one(i) for i in range(20)))
                assert [r for rs in results for r in rs] == [
                    f"c-{i}" for i in range(20)
                ]
                return await client.list_collection("c")

        with AsyncSoapServer(
            service.handle, fault_mapper=service.fault_mapper, max_workers=4
        ) as srv:
            listing = asyncio.run(main())
        assert len(listing) == 20

    def test_resilient_config_round_trips(self):
        service = fresh_service()
        config = ClientConfig(
            caller=CALLER,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.001, max_delay_s=0.01, jitter=0.0
            ),
            deadline_s=10.0,
        )

        async def main():
            async with AsyncMCSClient.connect(*srv.endpoint, config) as client:
                await client.create_logical_file("r-1")
                return await client.get_logical_file("r-1")

        with AsyncSoapServer(
            service.handle, fault_mapper=service.fault_mapper
        ) as srv:
            info = asyncio.run(main())
        assert info["creator"] == CALLER
