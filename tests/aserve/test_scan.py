"""Equivalence of the hot-path envelope codecs with the full XML codec.

The scanner and the response templates are accelerators: for every
payload they accept they must produce exactly what the ElementTree codec
produces (fields for the scanner, bytes for the templates), and they
must *decline* — never guess — anything outside their grammar.
"""

from __future__ import annotations

import pytest

from repro.aserve.scan import fast_response, scan_request
from repro.soap.envelope import (
    build_bulk_request,
    build_request,
    build_response,
    parse_any_request,
)

pytestmark = pytest.mark.aserve

#: (method, args) shapes covering every scalar type our clients emit.
CALL_CORPUS = [
    ("ping", {}),
    ("get_logical_file", {"name": "f-001"}),
    ("create_logical_file", {"name": "f", "collection": None}),
    ("set_flag", {"value": True}),
    ("clear_flag", {"value": False}),
    ("count", {"n": 0}),
    ("count", {"n": -12345}),
    ("scale", {"x": 1.5}),
    ("scale", {"x": -0.25}),
    ("note", {"text": ""}),
    ("note", {"text": "plain words with spaces"}),
    ("note", {"text": "unicode: éü☃"}),
    ("note", {"text": "tabs\tand\nnewlines"}),
    ("many", {"a": 1, "b": "two", "c": None, "d": 2.5, "e": False}),
]

HEADER_CORPUS = [
    (None, None),
    ("rid-123", None),
    ("", None),
    (None, {"TraceParent": "00-abc-def-01"}),
    ("rid", {"TraceParent": "00-abc-def-01", "DeadlineMs": "1500"}),
]


class TestScannerEquivalence:
    @pytest.mark.parametrize("method,args", CALL_CORPUS)
    @pytest.mark.parametrize("request_id,header_fields", HEADER_CORPUS)
    def test_accepted_payloads_match_the_full_parse(
        self, method, args, request_id, header_fields
    ):
        payload = build_request(
            method, args, request_id=request_id, header_fields=header_fields
        )
        fast = scan_request(payload)
        assert fast is not None, f"scanner declined its own grammar: {payload!r}"
        full = parse_any_request(payload)
        assert fast.calls == full.calls
        assert fast.bulk == full.bulk
        assert fast.request_id == full.request_id
        assert fast.headers == full.headers

    @pytest.mark.parametrize(
        "payload_args",
        [
            {"text": "an & entity"},
            {"text": "a < bracket"},
            {"text": "carriage\rreturn"},
            {"items": ["a", "b"]},
            {"mapping": {"k": "v"}},
        ],
    )
    def test_non_scalar_or_escaped_args_decline(self, payload_args):
        payload = build_request("op", payload_args)
        assert scan_request(payload) is None
        # ...but the full codec handles them: declining must never mean
        # the request fails, only that it takes the slow path.
        parsed = parse_any_request(payload)
        assert parsed.calls[0][0] == "op"

    def test_bulk_requests_decline(self):
        payload = build_bulk_request([("ping", {}), ("ping", {})])
        assert scan_request(payload) is None
        assert parse_any_request(payload).bulk is True

    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"not xml at all",
            b"<Envelope>wrong ns</Envelope>",
            b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
            b"<Body><Call method=\"x\"><junk /></Call></Body></Envelope>",
            b'<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/">'
            b"<Body></Body></Envelope>trailing",
        ],
    )
    def test_junk_declines_without_raising(self, payload):
        assert scan_request(payload) is None


#: Result shapes the templates must serialize byte-identically.
TEMPLATE_HITS = [
    None,
    True,
    False,
    0,
    42,
    -7,
    10**15,
    "",
    "logical-file-0001",
    "unicode é☃",
    [],
    ["a"],
    ["f-1", "f-2", "f-3"],
]

#: Shapes the templates must decline (generic codec handles them).
TEMPLATE_MISSES = [
    1.5,
    {"k": "v"},
    "has & entity",
    "has < bracket",
    "has\rreturn",
    ["ok", ""],
    ["ok", "bad & item"],
    ["ok", 3],
    [True],
    (1, 2),
]


class TestResponseTemplates:
    @pytest.mark.parametrize("result", TEMPLATE_HITS, ids=repr)
    def test_byte_equal_to_build_response(self, result):
        assert fast_response(result) == build_response(result)

    @pytest.mark.parametrize("result", TEMPLATE_MISSES, ids=repr)
    def test_out_of_grammar_shapes_decline(self, result):
        assert fast_response(result) is None

    def test_bool_is_not_treated_as_int(self):
        # bool subclasses int; the template must keep the boolean tag.
        assert b't="boolean"' in fast_response(True)
        assert b't="int"' in fast_response(1)
