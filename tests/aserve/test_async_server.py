"""End-to-end tests of the asyncio front end.

The sync SOAP/MCS clients drive :class:`AsyncSoapServer` exactly as they
drive the threaded server — same envelopes, same faults, same
collection endpoints — plus the connection mechanics only this front
end has: pipelining, bounded framing, and slowloris deadlines.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.aserve import AsyncSoapServer
from repro.core import MCSClient, MCSService
from repro.core.query import ObjectQuery
from repro.soap import SoapClient, SoapFault
from repro.soap.envelope import build_request, parse_response
from repro.soap.server import SoapServer
from repro.soap.wsdl import ServiceDescription

pytestmark = pytest.mark.aserve


def echo_handler(method, args):
    if method == "echo":
        return args
    if method == "fail":
        raise SoapFault("Test.Fail", "requested failure", {"n": 1})
    raise SoapFault("Test.NoMethod", f"no method {method}")


@pytest.fixture(scope="module")
def server():
    desc = ServiceDescription("Echo")
    desc.add("echo", ("value",), doc="echo the arguments")
    with AsyncSoapServer(echo_handler, description=desc) as srv:
        yield srv


def read_http_response(fh) -> tuple[int, dict[str, str], bytes]:
    status_line = fh.readline()
    assert status_line.startswith(b"HTTP/1.1 "), status_line
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = fh.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = fh.read(int(headers.get("content-length", "0")))
    return status, headers, body


def post_soap(payload: bytes, keep: bool = True) -> bytes:
    connection = "keep-alive" if keep else "close"
    return (
        b"POST /soap HTTP/1.1\r\n"
        b"Content-Type: text/xml; charset=utf-8\r\n"
        b"Content-Length: %d\r\n"
        b"Connection: %s\r\n\r\n" % (len(payload), connection.encode())
    ) + payload


class TestSyncClientRoundTrip:
    def test_call_and_fault(self, server):
        with SoapClient.connect_http(*server.endpoint) as client:
            assert client.call("echo", value=42) == {"value": 42}
            with pytest.raises(SoapFault) as excinfo:
                client.call("fail")
            assert excinfo.value.code == "Test.Fail"

    def test_keep_alive_reuse(self, server):
        before = server.requests_served
        with SoapClient.connect_http(*server.endpoint) as client:
            for i in range(20):
                assert client.call("echo", value=i) == {"value": i}
        assert server.requests_served == before + 20

    def test_many_concurrent_sync_clients(self, server):
        errors: list[Exception] = []

        def worker(n: int) -> None:
            try:
                with SoapClient.connect_http(*server.endpoint) as client:
                    for i in range(5):
                        value = n * 100 + i
                        assert client.call("echo", value=value) == {"value": value}
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert errors == []


class TestPipelining:
    def test_back_to_back_requests_answered_in_order(self, server):
        payloads = [build_request("echo", {"value": i}) for i in range(5)]
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            sock.sendall(b"".join(post_soap(p) for p in payloads))
            fh = sock.makefile("rb")
            for i in range(5):
                status, headers, body = read_http_response(fh)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert parse_response(body) == {"value": i}

    def test_connection_close_honored_mid_pipeline(self, server):
        first = post_soap(build_request("echo", {"value": 1}))
        second = post_soap(build_request("echo", {"value": 2}), keep=False)
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            sock.sendall(first + second)
            fh = sock.makefile("rb")
            status, _, _ = read_http_response(fh)
            assert status == 200
            status, headers, _ = read_http_response(fh)
            assert status == 200
            assert headers["connection"] == "close"
            assert fh.read() == b""  # server hung up


class TestRoutingAndBounds:
    def test_post_elsewhere_is_404(self, server):
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            sock.sendall(
                b"POST /nope HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
            )
            status, _, _ = read_http_response(sock.makefile("rb"))
        assert status == 404

    def test_unknown_method_is_501(self, server):
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            sock.sendall(b"PUT /soap HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
            status, _, _ = read_http_response(sock.makefile("rb"))
        assert status == 501

    def test_get_collection_endpoints(self, server):
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            fh = sock.makefile("rb")
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            status, _, body = read_http_response(fh)
            assert (status, body) == (200, b"ok\n")
            sock.sendall(b"GET /metrics HTTP/1.1\r\n\r\n")
            status, _, body = read_http_response(fh)
            assert status == 200
            assert b"mcs_aserve_connections_open" in body
            sock.sendall(b"GET /wsdl HTTP/1.1\r\n\r\n")
            status, _, body = read_http_response(fh)
            assert status == 200
            assert b"definitions" in body

    def test_oversized_body_rejected_cleanly(self):
        with AsyncSoapServer(echo_handler, max_body_bytes=256) as srv:
            with socket.create_connection(srv.endpoint, timeout=10) as sock:
                sock.sendall(
                    b"POST /soap HTTP/1.1\r\nContent-Length: 300\r\n\r\n"
                )
                fh = sock.makefile("rb")
                status, headers, _ = read_http_response(fh)
                assert status == 413
                assert headers["connection"] == "close"
                assert fh.read() == b""

    def test_oversized_headers_rejected_cleanly(self):
        with AsyncSoapServer(echo_handler, max_header_bytes=128) as srv:
            with socket.create_connection(srv.endpoint, timeout=10) as sock:
                sock.sendall(
                    b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 256 + b"\r\n\r\n"
                )
                status, _, _ = read_http_response(sock.makefile("rb"))
                assert status == 431

    def test_malformed_request_line_is_400(self, server):
        with socket.create_connection(server.endpoint, timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            status, _, _ = read_http_response(sock.makefile("rb"))
        assert status == 400


class TestSlowloris:
    def test_stalled_request_gets_408_not_a_hung_server(self):
        with AsyncSoapServer(echo_handler, header_timeout_s=0.3) as srv:
            with socket.create_connection(srv.endpoint, timeout=10) as sock:
                sock.sendall(b"POST /soap HTTP/1.1\r\nContent-Le")  # ...stall
                fh = sock.makefile("rb")
                status, headers, _ = read_http_response(fh)
                assert status == 408
                assert headers["connection"] == "close"
                assert fh.read() == b""
            # The server is still healthy for the next client.
            with SoapClient.connect_http(*srv.endpoint) as client:
                assert client.call("echo", value=1) == {"value": 1}

    def test_idle_keep_alive_connection_outlives_header_timeout(self):
        import time

        with AsyncSoapServer(echo_handler, header_timeout_s=0.2) as srv:
            with socket.create_connection(srv.endpoint, timeout=10) as sock:
                fh = sock.makefile("rb")
                sock.sendall(post_soap(build_request("echo", {"value": 1})))
                assert read_http_response(fh)[0] == 200
                # Idle (no bytes in flight) is not slowloris: the timer
                # only arms mid-request.
                time.sleep(0.5)
                sock.sendall(post_soap(build_request("echo", {"value": 2})))
                status, _, body = read_http_response(fh)
                assert status == 200
                assert parse_response(body) == {"value": 2}


class TestFrontEndEquivalence:
    """The same MCS workload through both front ends must agree."""

    @staticmethod
    def run_workload(endpoint) -> list:
        client = MCSClient.connect(*endpoint, caller="/O=Grid/CN=eq")
        try:
            client.create_collection("eq-col")
            for i in range(6):
                client.create_logical_file(
                    f"eq-{i}", collection="eq-col", attributes={"idx": i}
                )
            client.delete_logical_file("eq-3")
            names = client.query(ObjectQuery().where("idx", ">=", 2))
            listing = client.list_collection("eq-col")
            attrs = client.get_attributes("file", "eq-5")
            return [sorted(names), sorted(listing), attrs]
        finally:
            client.close()

    def test_threaded_and_async_agree(self):
        def service():
            svc = MCSService()
            svc.catalog.define_attribute("idx", "int")
            return svc

        threaded_svc, async_svc = service(), service()
        with SoapServer(
            threaded_svc.handle, fault_mapper=threaded_svc.fault_mapper
        ) as srv:
            threaded_result = self.run_workload(srv.endpoint)
        with AsyncSoapServer(
            async_svc.handle, fault_mapper=async_svc.fault_mapper
        ) as srv:
            async_result = self.run_workload(srv.endpoint)
        assert async_result == threaded_result
