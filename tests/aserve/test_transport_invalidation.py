"""HttpTransport keep-alive pooling: reuse fast, invalidate safely.

A scripted raw-socket server misbehaves in precisely one way per test so
the resend rule is pinned: resend **only** on the stale keep-alive race
(reused connection torn down before the request ran); never after a
timeout or a torn reply, where the request may have executed and a
blind resend could double-apply a write.  Every failure invalidates the
pooled socket — its framing state is unknown.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.soap.envelope import build_request, build_response, parse_response
from repro.soap.errors import TransportError
from repro.soap.transport import HttpTransport

pytestmark = pytest.mark.aserve

OK_BODY = build_response("ok")


class ScriptedServer:
    """One scripted behavior list per accepted connection.

    Per-request actions: ``"reply"`` (valid 200), ``"close"`` (hang up
    without answering), ``"stall"`` (read the request, never answer),
    ``"torn"`` (declare a long body, send a few bytes, hang up),
    ``"reject"`` (close the connection before reading anything).
    """

    def __init__(self, scripts: list[list[str]]) -> None:
        self._scripts = scripts
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.endpoint = self._sock.getsockname()[:2]
        self.requests_received = 0
        self.connections = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        for script in self._scripts:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            try:
                self._serve_connection(conn, script)
            finally:
                conn.close()

    def _serve_connection(self, conn: socket.socket, script: list[str]) -> None:
        conn.settimeout(10)
        fh = conn.makefile("rb")
        for action in script:
            if action == "reject":
                return
            if not self._read_request(fh):
                return
            self.requests_received += 1
            if action == "reply":
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/xml; charset=utf-8\r\n"
                    b"Content-Length: %d\r\n\r\n" % len(OK_BODY) + OK_BODY
                )
            elif action == "torn":
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: text/xml; charset=utf-8\r\n"
                    b"Content-Length: 4096\r\n\r\n" + OK_BODY[:10]
                )
                return
            elif action == "stall":
                # Answer nothing; wait for the client to give up.
                try:
                    conn.recv(1)
                except OSError:
                    pass
                return
            elif action == "close":
                return

    @staticmethod
    def _read_request(fh) -> bool:
        length = 0
        saw_head = False
        while True:
            line = fh.readline()
            if not line:
                return False
            saw_head = True
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        fh.read(length)
        return saw_head

    def close(self) -> None:
        self._sock.close()
        self._thread.join(5)


def call(transport: HttpTransport) -> str:
    return transport.call("ping", {})


class TestStaleKeepAlive:
    def test_resends_once_on_recycled_idle_connection(self):
        server = ScriptedServer([["reply", "close"], ["reply"]])
        transport = HttpTransport(*server.endpoint, timeout=5)
        try:
            assert call(transport) == "ok"
            # The server recycled the idle connection; the retry must be
            # invisible to the caller.
            assert call(transport) == "ok"
        finally:
            transport.close()
            server.close()
        assert server.connections == 2
        assert server.requests_received == 3  # aborted send counts once

    def test_fresh_connection_failure_does_not_resend(self):
        server = ScriptedServer([["reject"], ["reply"]])
        transport = HttpTransport(*server.endpoint, timeout=5)
        try:
            with pytest.raises(TransportError):
                call(transport)
            # ...but the transport recovered: next call dials fresh.
            assert call(transport) == "ok"
        finally:
            transport.close()
            server.close()


class TestUnsafeFailuresInvalidateWithoutResend:
    def test_timeout_raises_and_invalidates(self):
        server = ScriptedServer([["reply", "stall"], ["reply"]])
        transport = HttpTransport(*server.endpoint, timeout=5, read_timeout=0.3)
        try:
            assert call(transport) == "ok"
            with pytest.raises(TransportError):
                call(transport)  # the server may still be executing
            assert transport._conn is None  # framing state unknown: dropped
            assert call(transport) == "ok"  # fresh dial recovers
        finally:
            transport.close()
            server.close()
        # Exactly one wire attempt for the timed-out call: no resend.
        assert server.requests_received == 3

    def test_torn_reply_raises_and_invalidates(self):
        server = ScriptedServer([["torn"], ["reply"]])
        transport = HttpTransport(*server.endpoint, timeout=5)
        try:
            with pytest.raises(TransportError):
                call(transport)
            assert transport._conn is None
            assert call(transport) == "ok"
        finally:
            transport.close()
            server.close()
        assert server.requests_received == 2


class TestWireSanity:
    def test_request_payload_reaches_the_wire_intact(self):
        # Belt-and-braces: the scripted server speaks enough HTTP that a
        # normal round trip through it parses cleanly end-to-end.
        payload = build_request("ping", {})
        assert b"<Call" in payload
        server = ScriptedServer([["reply"]])
        transport = HttpTransport(*server.endpoint, timeout=5)
        try:
            assert parse_response(OK_BODY) == "ok"
            assert call(transport) == "ok"
        finally:
            transport.close()
            server.close()
