"""Fixtures for the asyncio front-end lane (``-m aserve``)."""

from repro.faults.pytest_plugin import fault_plan, no_faults  # noqa: F401
