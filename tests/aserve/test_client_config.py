"""ClientConfig: one construction surface, legacy kwargs shimmed.

Both client flavors consume the same frozen config; the pre-config
kwarg trio keeps working behind a DeprecationWarning so existing
callers migrate on their own schedule.
"""

from __future__ import annotations

import asyncio
import warnings

import pytest

from repro.core import AsyncMCSClient, ClientConfig, MCSClient, MCSService
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.resilience.transport import ResilientTransport

pytestmark = pytest.mark.aserve


class TestConfigValue:
    def test_frozen_with_options_derivation(self):
        base = ClientConfig(caller="/O=Grid/CN=a", timeout_s=5.0)
        derived = base.with_options(deadline_s=2.0)
        assert derived.caller == "/O=Grid/CN=a"
        assert derived.deadline_s == 2.0
        assert base.deadline_s is None  # original untouched
        with pytest.raises(Exception):
            base.caller = "mutated"  # frozen dataclass

    def test_resilient_flag(self):
        assert ClientConfig().resilient is False
        assert ClientConfig(retry_policy=RetryPolicy()).resilient is True
        assert ClientConfig(deadline_s=1.0).resilient is True
        assert ClientConfig(breaker=CircuitBreaker("t")).resilient is True


class TestSyncClientConstruction:
    def test_config_flows_to_transport(self):
        client = MCSClient.connect(
            "127.0.0.1", 1, ClientConfig(caller="/O=Grid/CN=c", timeout_s=7.5)
        )
        assert client.caller == "/O=Grid/CN=c"
        assert client._transport.read_timeout == 7.5
        client.close()

    def test_resilience_config_wraps_transport(self):
        client = MCSClient.connect(
            "127.0.0.1", 1, ClientConfig(retry_policy=RetryPolicy())
        )
        assert isinstance(client._transport, ResilientTransport)
        client.close()

    def test_caller_kwarg_stays_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            client = MCSClient.in_process(MCSService(), caller="/O=Grid/CN=x")
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []
        assert client.caller == "/O=Grid/CN=x"

    def test_legacy_resilience_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="ClientConfig"):
            client = MCSClient.connect(
                "127.0.0.1", 1, retry_policy=RetryPolicy(), deadline_s=4.0
            )
        assert isinstance(client._transport, ResilientTransport)
        assert client._transport.deadline_s == 4.0
        client.close()

    def test_legacy_positional_caller_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="positionally"):
            client = MCSClient.connect("127.0.0.1", 1, "/O=Grid/CN=legacy")
        assert client.caller == "/O=Grid/CN=legacy"
        client.close()

    def test_kwargs_override_config_fields(self):
        config = ClientConfig(caller="/O=Grid/CN=base", deadline_s=9.0)
        with pytest.warns(DeprecationWarning):
            client = MCSClient.connect(
                "127.0.0.1", 1, config, deadline_s=1.0
            )
        assert client.caller == "/O=Grid/CN=base"
        assert client._transport.deadline_s == 1.0
        client.close()


class TestAsyncClientConstruction:
    def test_pool_size_flows_to_async_transport(self):
        async def main():
            client = AsyncMCSClient.connect(
                "127.0.0.1", 1, ClientConfig(pool_size=7, caller="/O=Grid/CN=a")
            )
            assert client.caller == "/O=Grid/CN=a"
            assert client._transport.pool_size == 7
            await client.close()

        asyncio.run(main())

    def test_async_resilience_wrapping(self):
        from repro.resilience.atransport import AsyncResilientTransport

        async def main():
            client = AsyncMCSClient.connect(
                "127.0.0.1", 1, ClientConfig(retry_policy=RetryPolicy())
            )
            assert isinstance(client._transport, AsyncResilientTransport)
            await client.close()

        asyncio.run(main())

    def test_same_config_value_drives_both_flavors(self):
        config = ClientConfig(caller="/O=Grid/CN=both", deadline_s=3.0)
        sync_client = MCSClient.connect("127.0.0.1", 1, config)
        assert sync_client.caller == "/O=Grid/CN=both"
        sync_client.close()

        async def main():
            client = AsyncMCSClient.connect("127.0.0.1", 1, config)
            assert client.caller == "/O=Grid/CN=both"
            await client.close()

        asyncio.run(main())
