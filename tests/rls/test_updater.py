"""Tests for the periodic soft-state updater."""

import time

import pytest

from repro.federation import LocalMCS, MCSIndexNode
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex
from repro.rls.updater import PeriodicUpdater, lrc_updater, summary_updater


class TestTick:
    def test_manual_tick_pushes_update(self):
        lrc = LocalReplicaCatalog("lrc1")
        lrc.add_mapping("lfn", "pfn")
        rli = ReplicaLocationIndex()
        updater = lrc_updater(lrc, rli)
        assert updater.tick()
        assert rli.candidate_lrcs("lfn") == ["lrc1"]
        assert updater.ticks == 1

    def test_tick_reflects_new_state(self):
        lrc = LocalReplicaCatalog("lrc1")
        rli = ReplicaLocationIndex()
        updater = lrc_updater(lrc, rli)
        updater.tick()
        assert rli.candidate_lrcs("new") == []
        lrc.add_mapping("new", "pfn")
        updater.tick()
        assert rli.candidate_lrcs("new") == ["lrc1"]

    def test_errors_counted_not_raised(self):
        def boom():
            raise RuntimeError("producer died")

        seen = []
        updater = PeriodicUpdater(boom, lambda _: None, interval=1,
                                  on_error=seen.append)
        assert updater.tick() is False
        assert updater.errors == 1
        assert updater.ticks == 0
        assert isinstance(seen[0], RuntimeError)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            PeriodicUpdater(lambda: 1, lambda _: None, interval=0)


class TestBackground:
    def test_background_updates_flow(self):
        lrc = LocalReplicaCatalog("lrc1")
        lrc.add_mapping("lfn", "pfn")
        rli = ReplicaLocationIndex()
        with lrc_updater(lrc, rli, interval=0.02) as updater:
            deadline = time.monotonic() + 2
            while updater.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert updater.ticks >= 3
            assert updater.running
        assert not updater.running

    def test_double_start_rejected(self):
        updater = PeriodicUpdater(lambda: 1, lambda _: None, interval=10)
        updater.start()
        try:
            with pytest.raises(RuntimeError):
                updater.start()
        finally:
            updater.stop()

    def test_keeps_running_after_error(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("first tick fails")
            return len(calls)

        updater = PeriodicUpdater(flaky, lambda _: None, interval=0.01)
        updater.start()
        try:
            deadline = time.monotonic() + 2
            while updater.ticks < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert updater.errors >= 1
            assert updater.ticks >= 2
        finally:
            updater.stop()


class TestFederationWiring:
    def test_summary_updater_keeps_index_fresh(self):
        member = LocalMCS("site")
        member.client.define_attribute("k", "string")
        index = MCSIndexNode(timeout=3600)
        updater = summary_updater(member, index)
        updater.tick()
        assert index.candidate_catalogs([("k", "=", "v")]) == []
        member.client.create_logical_file("f", attributes={"k": "v"})
        updater.tick()
        assert index.candidate_catalogs([("k", "=", "v")]) == ["site"]
