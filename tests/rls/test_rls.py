"""Tests for the Replica Location Service (LRC, RLI, soft state, client)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rls import (
    BloomFilter,
    LocalReplicaCatalog,
    ReplicaLocationIndex,
    RLSClient,
    SoftStateUpdate,
)


class TestLRC:
    def test_add_and_lookup(self):
        lrc = LocalReplicaCatalog("lrc1")
        lrc.add_mapping("lfn1", "gsiftp://a/x")
        lrc.add_mapping("lfn1", "gsiftp://b/x")
        assert lrc.lookup("lfn1") == ["gsiftp://a/x", "gsiftp://b/x"]
        assert lrc.lookup("other") == []

    def test_remove(self):
        lrc = LocalReplicaCatalog("lrc1")
        lrc.add_mapping("lfn1", "p1")
        assert lrc.remove_mapping("lfn1", "p1") is True
        assert lrc.remove_mapping("lfn1", "p1") is False
        assert not lrc.has("lfn1")

    def test_remove_logical(self):
        lrc = LocalReplicaCatalog("lrc1")
        lrc.add_mapping("lfn1", "p1")
        lrc.add_mapping("lfn1", "p2")
        assert lrc.remove_logical("lfn1") is True
        assert len(lrc) == 0

    def test_update_sequence_increases(self):
        lrc = LocalReplicaCatalog("lrc1")
        u1 = lrc.make_update()
        u2 = lrc.make_update()
        assert u2.sequence > u1.sequence

    def test_compressed_update_uses_bloom(self):
        lrc = LocalReplicaCatalog("lrc1", compression=True)
        lrc.add_mapping("lfn1", "p1")
        update = lrc.make_update()
        assert update.bloom is not None
        assert update.might_contain("lfn1")


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter.from_items([f"lfn{i}" for i in range(100)])
        assert all(f"lfn{i}" in bloom for i in range(100))

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.from_items([f"in{i}" for i in range(1000)], error_rate=0.01)
        false_hits = sum(1 for i in range(10000) if f"out{i}" in bloom)
        assert false_hits < 300  # ~1% target, generous bound

    def test_smaller_than_full_list(self):
        names = [f"a-very-long-logical-file-name-{i:08d}" for i in range(1000)]
        full = SoftStateUpdate("l", 1, full_list=names)
        compressed = SoftStateUpdate("l", 2, bloom=BloomFilter.from_items(names))
        assert compressed.payload_size < full.payload_size / 10

    def test_bad_error_rate(self):
        with pytest.raises(ValueError):
            BloomFilter(10, error_rate=1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=50))
    def test_property_no_false_negatives(self, items):
        bloom = BloomFilter.from_items(items)
        assert all(item in bloom for item in items)


class TestSoftStateUpdate:
    def test_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            SoftStateUpdate("l", 1)
        with pytest.raises(ValueError):
            SoftStateUpdate("l", 1, full_list=["a"], bloom=BloomFilter(1))


class TestRLI:
    def test_candidates(self):
        rli = ReplicaLocationIndex()
        rli.receive_update(SoftStateUpdate("lrc1", 1, full_list=["a", "b"]))
        rli.receive_update(SoftStateUpdate("lrc2", 1, full_list=["b", "c"]))
        assert rli.candidate_lrcs("a") == ["lrc1"]
        assert rli.candidate_lrcs("b") == ["lrc1", "lrc2"]
        assert rli.candidate_lrcs("z") == []

    def test_stale_sequence_dropped(self):
        rli = ReplicaLocationIndex()
        assert rli.receive_update(SoftStateUpdate("lrc1", 2, full_list=["a"]))
        assert not rli.receive_update(SoftStateUpdate("lrc1", 1, full_list=["b"]))
        assert rli.candidate_lrcs("a") == ["lrc1"]

    def test_soft_state_expires(self):
        clock = [0.0]
        rli = ReplicaLocationIndex(timeout=10.0, clock=lambda: clock[0])
        rli.receive_update(SoftStateUpdate("lrc1", 1, full_list=["a"]))
        assert rli.candidate_lrcs("a") == ["lrc1"]
        clock[0] = 11.0
        assert rli.candidate_lrcs("a") == []
        assert rli.expire() == 1
        assert rli.known_lrcs() == []

    def test_refresh_resets_timer(self):
        clock = [0.0]
        rli = ReplicaLocationIndex(timeout=10.0, clock=lambda: clock[0])
        rli.receive_update(SoftStateUpdate("lrc1", 1, full_list=["a"]))
        clock[0] = 8.0
        rli.receive_update(SoftStateUpdate("lrc1", 2, full_list=["a"]))
        clock[0] = 15.0
        assert rli.candidate_lrcs("a") == ["lrc1"]


class TestRLSClient:
    def make(self, compression=False):
        lrcs = {
            "lrc1": LocalReplicaCatalog("lrc1", compression=compression),
            "lrc2": LocalReplicaCatalog("lrc2", compression=compression),
        }
        rli = ReplicaLocationIndex()
        client = RLSClient(rli, lrcs)
        return client, lrcs

    def test_two_step_lookup(self):
        client, lrcs = self.make()
        lrcs["lrc1"].add_mapping("lfn1", "gsiftp://a/x")
        lrcs["lrc2"].add_mapping("lfn1", "gsiftp://b/x")
        client.refresh_all()
        assert client.lookup("lfn1") == {
            "lrc1": ["gsiftp://a/x"],
            "lrc2": ["gsiftp://b/x"],
        }

    def test_best_replica(self):
        client, lrcs = self.make()
        lrcs["lrc2"].add_mapping("lfn1", "gsiftp://b/x")
        client.refresh_all()
        assert client.best_replica("lfn1") == "gsiftp://b/x"
        assert client.best_replica("missing") is None

    def test_bloom_false_positives_filtered_at_lrc(self):
        client, lrcs = self.make(compression=True)
        lrcs["lrc1"].add_mapping("present", "p")
        client.refresh_all()
        # Even if the bloom answers "maybe" for an absent name, the LRC
        # sub-query returns nothing.
        assert client.lookup("absent") == {}

    def test_unindexed_update_needed(self):
        client, lrcs = self.make()
        lrcs["lrc1"].add_mapping("lfn1", "p")
        # No refresh: index knows nothing yet.
        assert client.lookup("lfn1") == {}
