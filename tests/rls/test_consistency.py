"""Tests for the master-copy consistency service."""

import pytest

from repro.consistency import ConsistencyManager, ReplicaState
from repro.core import MCSClient, MCSService
from repro.gridftp import GridFTPServer, StorageSite
from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient


@pytest.fixture
def world():
    mcs = MCSClient.in_process(MCSService(), caller="consistency-svc")
    sites = {n: StorageSite(n) for n in ("master-site", "mirror-a", "mirror-b")}
    gridftp = GridFTPServer(sites)
    lrcs = {f"lrc-{n}": LocalReplicaCatalog(f"lrc-{n}") for n in sites}
    rls = RLSClient(ReplicaLocationIndex(), lrcs)
    manager = ConsistencyManager(mcs, rls, gridftp)

    # One logical file replicated at three sites; master at master-site.
    content = b"version-1"
    mcs.create_logical_file("data.v")
    for name, site in sites.items():
        site.store("data.v", content)
        lrcs[f"lrc-{name}"].add_mapping("data.v", site.url_for("data.v"))
    rls.refresh_all()
    manager.designate_master("data.v", "gsiftp://master-site/data.v")
    return manager, mcs, sites, lrcs, rls


class TestDesignation:
    def test_master_recorded_in_mcs(self, world):
        manager, mcs, sites, lrcs, rls = world
        assert mcs.get_logical_file("data.v")["master_copy"] == \
               "gsiftp://master-site/data.v"
        assert manager.master_of("data.v") == "gsiftp://master-site/data.v"

    def test_designate_requires_physical_copy(self, world):
        manager, mcs, sites, lrcs, rls = world
        with pytest.raises(FileNotFoundError):
            manager.designate_master("data.v", "gsiftp://mirror-a/ghost")

    def test_no_master_raises(self, world):
        manager, mcs, sites, lrcs, rls = world
        mcs.create_logical_file("unmastered")
        with pytest.raises(LookupError):
            manager.master_of("unmastered")


class TestUpdatePropagation:
    def test_update_propagates_everywhere(self, world):
        manager, mcs, sites, lrcs, rls = world
        refreshed = manager.update_master("data.v", b"version-2")
        assert refreshed == 2
        for site in sites.values():
            assert site.read("data.v") == b"version-2"

    def test_update_without_propagation_leaves_replicas(self, world):
        manager, mcs, sites, lrcs, rls = world
        manager.update_master("data.v", b"version-2", propagate=False)
        assert sites["master-site"].read("data.v") == b"version-2"
        assert sites["mirror-a"].read("data.v") == b"version-1"

    def test_update_records_provenance(self, world):
        manager, mcs, sites, lrcs, rls = world
        manager.update_master("data.v", b"v2", note="recalibration")
        history = mcs.get_transformations("data.v")
        assert history[-1]["description"] == "recalibration"


class TestAuditAndRepair:
    def test_audit_all_current(self, world):
        manager, mcs, sites, lrcs, rls = world
        states = {a.url: a.state for a in manager.audit("data.v")}
        assert states["gsiftp://master-site/data.v"] is ReplicaState.MASTER
        assert states["gsiftp://mirror-a/data.v"] is ReplicaState.CURRENT
        assert states["gsiftp://mirror-b/data.v"] is ReplicaState.CURRENT

    def test_audit_detects_stale(self, world):
        manager, mcs, sites, lrcs, rls = world
        manager.update_master("data.v", b"version-2", propagate=False)
        states = {a.url: a.state for a in manager.audit("data.v")}
        assert states["gsiftp://mirror-a/data.v"] is ReplicaState.STALE

    def test_audit_detects_missing(self, world):
        manager, mcs, sites, lrcs, rls = world
        sites["mirror-b"].delete("data.v")
        states = {a.url: a.state for a in manager.audit("data.v")}
        assert states["gsiftp://mirror-b/data.v"] is ReplicaState.MISSING

    def test_repair_fixes_only_bad_replicas(self, world):
        manager, mcs, sites, lrcs, rls = world
        manager.update_master("data.v", b"version-2", propagate=False)
        sites["mirror-b"].delete("data.v")
        before = len(world[3]["lrc-mirror-a"].lookup("data.v"))
        repaired = manager.repair("data.v")
        assert repaired == 2
        assert sites["mirror-a"].read("data.v") == b"version-2"
        assert sites["mirror-b"].read("data.v") == b"version-2"
        # A second repair is a no-op.
        assert manager.repair("data.v") == 0
