"""Tests for the LIGO ontology and workload."""

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.ligo import (
    LIGO_ATTRIBUTES,
    generate_products,
    pulsar_search_workflow,
    register_ligo_attributes,
)


@pytest.fixture
def client():
    return MCSClient.in_process(MCSService(), caller="ligo")


class TestOntology:
    def test_exactly_23_attributes(self):
        assert len(LIGO_ATTRIBUTES) == 23

    def test_registration(self, client):
        assert register_ligo_attributes(client) == 23
        assert register_ligo_attributes(client) == 0
        defined = {d.name for d in client.list_attribute_defs()}
        assert set(LIGO_ATTRIBUTES) <= defined

    def test_types_are_valid(self):
        assert all(
            vt in ("string", "int", "float") for vt, _ in LIGO_ATTRIBUTES.values()
        )


class TestWorkload:
    def test_products_have_all_attributes(self):
        products = generate_products(10)
        for product in products:
            assert set(product.attributes) == set(LIGO_ATTRIBUTES)

    def test_deterministic(self):
        assert generate_products(5, seed=3)[2].logical_name == \
               generate_products(5, seed=3)[2].logical_name

    def test_gps_times_consistent(self):
        for product in generate_products(20):
            a = product.attributes
            assert a["gps_end_time"] - a["gps_start_time"] == a["duration"]

    def test_publication_and_discovery(self, client):
        register_ligo_attributes(client)
        for product in generate_products(30, seed=9):
            client.create_logical_file(
                product.logical_name, data_type="gwf",
                attributes=product.attributes,
            )
        found = client.query_files_by_attributes({"interferometer": "H1"})
        for name in found:
            assert name.startswith("H1-")
        # frequency band range query (the paper's motivating example)
        q = ObjectQuery().where("frequency_band_low", ">=", 100.0)
        for name in client.query(q):
            attrs = client.get_attributes("file", name)
            assert attrs["frequency_band_low"] >= 100.0


class TestPulsarWorkflow:
    def test_shape(self):
        wf = pulsar_search_workflow(["raw0", "raw1", "raw2"], search_id="ps-1")
        # per raw input: SFT + band jobs, plus one search job
        assert len(wf.jobs) == 7
        assert wf.external_inputs() == {"raw0", "raw1", "raw2"}
        assert wf.final_outputs() == {"ps-1-result.xml"}
        wf.validate()

    def test_search_depends_on_all_bands(self):
        wf = pulsar_search_workflow(["r0", "r1"], search_id="ps-2")
        dag = wf.dependency_dag()
        assert dag.predecessors("search") == {"band-0000", "band-0001"}

    def test_output_metadata_carries_search_id(self):
        wf = pulsar_search_workflow(["r0"], search_id="ps-3")
        job = wf.jobs["search"]
        metadata = job.output_metadata["ps-3-result.xml"]
        assert metadata["pulsar_search_id"] == "ps-3"
        assert metadata["data_product"] == "pulsar_search"
