"""Tests for the §7 workload generators."""

import pytest

from repro.core import MetadataCatalog, ObjectType
from repro.workloads import (
    STANDARD_ATTRIBUTES,
    PopulationSpec,
    QueryWorkload,
    attribute_values_for,
    populate_catalog,
)


class TestSpec:
    def test_collection_count(self):
        spec = PopulationSpec(total_files=2500, files_per_collection=1000)
        assert spec.collections == 3

    def test_names_deterministic(self):
        spec = PopulationSpec(total_files=10)
        assert spec.file_name(3) == spec.file_name(3)
        assert spec.file_name(3) != spec.file_name(4)


class TestAttributeValues:
    def test_ten_attributes_of_mixed_types(self):
        assert len(STANDARD_ATTRIBUTES) == 10
        types = {t for _, t in STANDARD_ATTRIBUTES}
        assert types == {"string", "int", "float", "date", "datetime"}

    def test_deterministic(self):
        spec = PopulationSpec(total_files=100)
        assert attribute_values_for(5, spec) == attribute_values_for(5, spec)

    def test_cardinality_bound(self):
        spec = PopulationSpec(total_files=1000, value_cardinality=7)
        values = {attribute_values_for(i, spec)["wl_int_a"] for i in range(1000)}
        assert len(values) <= 7

    def test_full_vector_recurs_with_db_size(self):
        """Files index and index+cardinality share the full attribute
        vector — this is what makes complex-query result sizes grow with
        the database (the paper's degradation mechanism)."""
        spec = PopulationSpec(total_files=1000, value_cardinality=50)
        assert attribute_values_for(3, spec) == attribute_values_for(53, spec)


class TestPopulate:
    def test_small_population(self):
        catalog = MetadataCatalog()
        spec = PopulationSpec(total_files=25, files_per_collection=10)
        populate_catalog(catalog, spec)
        stats = catalog.stats()
        assert stats["files"] == 25
        assert stats["collections"] == 3
        assert stats["attributes"] == 10
        # 10 per file + 10 per collection
        assert stats["attribute_values"] == 25 * 10 + 3 * 10

    def test_files_assigned_to_collections(self):
        catalog = MetadataCatalog()
        spec = PopulationSpec(total_files=25, files_per_collection=10)
        populate_catalog(catalog, spec)
        assert len(catalog.list_collection(spec.collection_name(0))) == 10
        assert len(catalog.list_collection(spec.collection_name(2))) == 5

    def test_collection_attributes_set(self):
        catalog = MetadataCatalog()
        spec = PopulationSpec(total_files=5, files_per_collection=5)
        populate_catalog(catalog, spec)
        attrs = catalog.get_attributes(
            ObjectType.COLLECTION, spec.collection_name(0)
        )
        assert len(attrs) == 10


class TestQueryWorkload:
    @pytest.fixture
    def loaded(self):
        catalog = MetadataCatalog()
        spec = PopulationSpec(total_files=60, files_per_collection=20,
                              value_cardinality=5)
        populate_catalog(catalog, spec)
        return catalog, spec

    def test_simple_queries_hit(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=1)
        for _ in range(10):
            field, value = workload.simple_query_args()
            assert field == "name"
            assert catalog.file_exists(value)

    def test_complex_queries_nonempty(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=2)
        for _ in range(5):
            conditions = workload.complex_query_conditions(10)
            assert len(conditions) == 10
            assert catalog.query_files_by_attributes(conditions)

    def test_attribute_count_truncation(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=3)
        assert len(workload.complex_query_conditions(3)) == 3
        with pytest.raises(ValueError):
            workload.complex_query_conditions(11)

    def test_fewer_attributes_match_superset(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=4)
        ten = workload.complex_query_conditions(10)
        three = {k: ten[k] for k in list(ten)[:3]}
        full = set(catalog.query_files_by_attributes(ten))
        loose = set(catalog.query_files_by_attributes(three))
        assert full <= loose

    def test_add_names_unique(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=5)
        names = {workload.add_args("w")[0] for _ in range(50)}
        assert len(names) == 50

    def test_add_args_have_ten_attributes(self, loaded):
        catalog, spec = loaded
        workload = QueryWorkload(spec, seed=6)
        _, attributes = workload.add_args("w")
        assert len(attributes) == 10
