"""MQL lane (run alone with ``-m mql``).

Every module here carries ``pytestmark = pytest.mark.mql``.  The lane
proves the two contracts of the MQL tentpole:

* the canonical printer and the parser are exact inverses (Hypothesis
  round-trip over generated ASTs), and every syntax failure is a
  located :class:`repro.mql.errors.MQLSyntaxError` with a caret
  snippet — never a bare ``ValueError``;
* the three leaf execution strategies — secondary-index intersection,
  the EAV join, and the full scan — are answer-equivalent under random
  interleavings of writes and queries, including savepoint-rolled-back
  bulk items and post-crash WAL replay.
"""
