"""Hypothesis round-trip: AST → ``to_mql()`` → parser → identical AST.

The printer is documented as *canonical* — it emits text that reparses
into a structurally equal tree.  The generator below builds arbitrary
well-formed statements (nested boolean combinators, negation, dataset
algebra, every literal type the lexer knows, order/limit/offset) and
the property closes the loop with plain ``==`` over frozen dataclasses.

The second half is the parse-error corpus: every syntactically broken
input must surface as :class:`MQLSyntaxError` carrying a 1-based
line/column and a caret snippet pointing at the offending token, and
must map onto the existing ``MCS.Query`` wire fault.
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryError, fault_code_for
from repro.mql import MQLSyntaxError, parse, to_mql
from repro.mql.ast import And, Condition, Not, Or, Query, SetOp, Statement
from repro.mql.lexer import KEYWORDS

pytestmark = pytest.mark.mql

# -- AST generation ----------------------------------------------------------

idents = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)

# Text restricted to characters the printer escapes or passes through
# verbatim; covers the escape table (backslash, quotes, \n, \t, \r).
string_values = st.text(
    alphabet=st.sampled_from(
        list("abcdefghijklmnopqrstuvwxyz0123456789 _-%\"'\\\n\t\r")
    ),
    max_size=12,
)

scalar_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False),
    string_values,
    st.dates(),
    st.times(),
    st.datetimes(),
)


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(("=", "!=", "<", "<=", ">", ">=", "like", "between")))
    fieldname = draw(idents)
    if op == "like":
        return Condition(fieldname, "like", draw(string_values))
    if op == "between":
        low = draw(scalar_values)
        high = draw(scalar_values)
        return Condition(fieldname, "between", (low, high))
    return Condition(fieldname, op, draw(scalar_values))


predicates = st.recursive(
    conditions(),
    lambda inner: st.one_of(
        inner.map(Not),
        st.lists(inner, min_size=2, max_size=3).map(lambda ps: And(tuple(ps))),
        st.lists(inner, min_size=2, max_size=3).map(lambda ps: Or(tuple(ps))),
    ),
    max_leaves=6,
)


@st.composite
def queries(draw):
    return Query(
        object_type=draw(st.sampled_from(("file", "collection", "view"))),
        where=draw(st.none() | predicates),
    )


@st.composite
def modified_statements(draw, source):
    """A Statement with at least one modifier (so parens survive)."""
    return Statement(
        source=draw(source),
        order_by=draw(idents),
        descending=draw(st.booleans()),
        limit=draw(st.none() | st.integers(min_value=0, max_value=999)),
        offset=draw(st.none() | st.integers(min_value=0, max_value=999)),
    )


sources = st.recursive(
    queries(),
    lambda inner: st.builds(
        SetOp,
        op=st.sampled_from(("union", "intersect", "minus")),
        left=inner | modified_statements(inner),
        right=inner | modified_statements(inner),
    ),
    max_leaves=4,
)


@st.composite
def statements(draw):
    order_by = draw(st.none() | idents)
    return Statement(
        source=draw(sources),
        order_by=order_by,
        # desc is only printable when an order field is present.
        descending=draw(st.booleans()) if order_by is not None else False,
        limit=draw(st.none() | st.integers(min_value=0, max_value=999)),
        offset=draw(st.none() | st.integers(min_value=0, max_value=999)),
    )


@given(statements())
@settings(max_examples=200, deadline=None)
def test_roundtrip_identical_ast(statement):
    text = to_mql(statement)
    assert parse(text) == statement


@given(statements())
@settings(max_examples=50, deadline=None)
def test_printing_is_idempotent(statement):
    text = to_mql(statement)
    assert to_mql(parse(text)) == text


def test_roundtrip_spot_checks():
    for text in (
        "files",
        'files where run = 7 and (site like "ligo-%" or valid) '
        "order by name limit 50",
        "files where not (a = 1 and b = 2)",
        "files where size between 1 and 9 order by size desc limit 3 offset 1",
        '(files where run = 1) union (collections where name like "c%")',
        "files intersect (files where x != 2) minus files",
        'files where t > datetime "2003-11-15T12:30:00" or d = date "2003-11-15"',
    ):
        assert to_mql(parse(text)) == to_mql(parse(to_mql(parse(text))))


# -- parse-error corpus ------------------------------------------------------

#: (source, expected (line, column), message fragment)
ERROR_CORPUS = [
    ("", (1, 1), "expected 'files'"),
    ("wibble", (1, 1), "expected 'files'"),
    ("files where", (1, 12), "expected a field name"),
    ("files where = 7", (1, 13), "expected a field name"),
    ("files where run =", (1, 18), "expected a value"),
    ("files where run = 7 order by", (1, 29), "after 'order by'"),
    ("files where run between 1", (1, 26), "expected 'and'"),
    ("files where site like 7", (1, 23), "string pattern"),
    ("files where run = 7 limit x", (1, 27), "non-negative integer"),
    ("(files where run = 7", (1, 21), "expected ')'"),
    ("files where run = 7 trailing", (1, 21), "unexpected trailing input"),
    ('files where d = date "not-a-date"', (1, 22), "invalid ISO date"),
    ("files where run = 3nope", (1, 19), "malformed number"),
    ('files where s = "unterminated', (1, 17), "unterminated string"),
    ("files\n  where run ~ 7", (2, 13), "unexpected character"),
]


@pytest.mark.parametrize("source, location, fragment", ERROR_CORPUS)
def test_error_corpus_location_and_caret(source, location, fragment):
    with pytest.raises(MQLSyntaxError) as excinfo:
        parse(source)
    err = excinfo.value
    assert (err.line, err.column) == location
    assert fragment in str(err)
    rendered = str(err).splitlines()
    assert rendered[0].startswith(
        f"MQL syntax error at line {err.line}, column {err.column}:"
    )
    if err.source_line is not None:
        # Caret sits under the offending column (two-space indent).
        assert rendered[2] == "  " + " " * (err.column - 1) + "^"


@pytest.mark.parametrize("source, location, fragment", ERROR_CORPUS)
def test_errors_are_never_bare_valueerrors(source, location, fragment):
    try:
        parse(source)
    except MQLSyntaxError as err:
        assert not isinstance(err, ValueError)
        assert isinstance(err, QueryError)
        assert fault_code_for(err) == "MCS.Query"
    else:  # pragma: no cover - corpus entries must fail
        raise AssertionError(f"{source!r} unexpectedly parsed")
