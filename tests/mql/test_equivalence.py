"""Stateful equivalence: index-forced vs join-forced vs scan-forced MQL.

Three identical catalogs receive the same randomized interleaving of
creates, attribute writes, deletes, invalidations and non-atomic bulk
batches with poisoned items (exercising savepoint rollback).  After
every step, a pool of MQL statements — conjunctions, disjunctions,
negation, ``like``, ``between``, boolean sugar, dataset algebra and
paging — must return *identical ordered answers* on all three, with the
execution strategy pinned to a different one on each catalog.

A separate seeded test crashes a durable catalog (abandoning it without
checkpoint), reopens the directory through WAL replay, and asserts the
three strategies still agree with an in-memory oracle that saw the same
successful operations.
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import MetadataCatalog, ObjectType
from repro.db import Database

pytestmark = pytest.mark.mql

STRATEGIES = ("index", "join", "scan")
STR_VALUES = ("x", "y", "z")
INT_VALUES = (1, 2, 3)

#: MQL statements stressing every leaf shape and the dataset algebra.
STATEMENTS = (
    "files",
    "files where a_int = 1",
    "files where a_int = 2 and a_str = \"y\"",
    "files where a_int = 3 or a_str = \"z\" order by name desc",
    "files where a_str like \"x%\" order by name limit 4",
    "files where a_int between 1 and 2 order by name limit 5 offset 1",
    "files where not (a_int = 1 or a_str = \"y\")",
    "files where valid and a_int != 2",
    "files where a_int < 3 and not a_str = \"x\" order by name",
    "(files where a_int = 1) union (files where a_str = \"y\") order by name",
    "(files where a_int != 3) minus (files where a_str = \"z\")",
    "(files where a_int = 1) intersect (files where valid)",
    "(files where a_int = 1) union ((files where a_int = 2) "
    "intersect (files where a_str = \"x\")) order by name limit 6",
)


def _prepare(catalog, strategy):
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    catalog.mql_strategy = strategy
    return catalog


class MQLEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.catalogs = [
            _prepare(MetadataCatalog(), strategy) for strategy in STRATEGIES
        ]
        self.names: list[str] = []
        self._counter = 0

    def teardown(self):
        for catalog in self.catalogs:
            catalog.db.close()

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"file-{self._counter:04d}"

    def _pick(self, data_index: int) -> str:
        if not self.names:
            return "no-such-file"
        return self.names[data_index % len(self.names)]

    def _all_agree(self, op, fn):
        outcomes = []
        for catalog in self.catalogs:
            try:
                outcomes.append((True, fn(catalog)))
            except Exception as exc:  # noqa: BLE001 - oracle comparison
                outcomes.append((False, exc))
        ok0, value0 = outcomes[0]
        for strategy, (ok, value) in zip(STRATEGIES[1:], outcomes[1:]):
            assert ok == ok0, (
                f"{op}: {STRATEGIES[0]} ok={ok0} but {strategy} ok={ok} "
                f"({value0!r} vs {value!r})"
            )
            if not ok0:
                assert type(value) is type(value0)
            elif isinstance(value0, (list, tuple, dict, str, int, bool)):
                assert value == value0, (
                    f"{op}: {STRATEGIES[0]} returned {value0!r} but "
                    f"{strategy} returned {value!r}"
                )
        return outcomes[0]

    # -- write rules --------------------------------------------------------

    @rule(
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
        bare=st.booleans(),
    )
    def create(self, s, i, bare):
        name = self._fresh_name()
        attrs = None if bare else {"a_str": s, "a_int": i}
        ok, _ = self._all_agree(
            f"create {name!r}",
            lambda c: bool(c.create_file(name, attributes=attrs)),
        )
        if ok:
            self.names.append(name)

    @rule(
        pick=st.integers(min_value=0),
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
    )
    def set_attrs(self, pick, s, i):
        name = self._pick(pick)
        self._all_agree(
            f"set_attributes {name!r}",
            lambda c: c.set_attributes(
                ObjectType.FILE, name, {"a_str": s, "a_int": i}
            ),
        )

    @rule(pick=st.integers(min_value=0), attr=st.sampled_from(("a_str", "a_int")))
    def remove_attr(self, pick, attr):
        name = self._pick(pick)
        self._all_agree(
            f"remove_attribute {name!r}.{attr}",
            lambda c: c.remove_attribute(ObjectType.FILE, name, attr),
        )

    @rule(pick=st.integers(min_value=0))
    def invalidate(self, pick):
        name = self._pick(pick)
        self._all_agree(
            f"invalidate {name!r}", lambda c: c.invalidate_file(name)
        )

    @rule(pick=st.integers(min_value=0))
    def delete(self, pick):
        name = self._pick(pick)
        ok, _ = self._all_agree(f"delete {name!r}", lambda c: c.delete_file(name))
        if ok and name in self.names:
            self.names.remove(name)

    @rule(
        n=st.integers(min_value=1, max_value=4),
        poison=st.booleans(),
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
    )
    def bulk_set(self, n, poison, s, i):
        """Non-atomic bulk attribute writes; a poisoned item (unknown
        attribute) exercises the per-item savepoint rollback while the
        rest of the batch commits — index maintenance must follow."""
        items = [
            {
                "name": self._pick(k),
                "attributes": {"a_str": s, "a_int": (i + k) % 3 + 1},
            }
            for k in range(n)
        ]
        if poison:
            items.insert(
                n // 2,
                {"name": self._pick(0), "attributes": {"nope": 1, "a_int": i}},
            )
        per_catalog = [
            c.bulk_set_attributes(items, atomic=False) for c in self.catalogs
        ]
        base = [(ok, type(val).__name__ if not ok else None)
                for ok, val in per_catalog[0]]
        for strategy, outcomes in zip(STRATEGIES[1:], per_catalog[1:]):
            got = [(ok, type(val).__name__ if not ok else None)
                   for ok, val in outcomes]
            assert got == base, (
                f"bulk outcomes diverge under {strategy}: {got} != {base}"
            )

    @rule()
    def analyze(self):
        """Exact statistics recompute; never changes any answer."""
        self._all_agree("analyze", lambda c: bool(c.analyze_attributes()))

    # -- query rules --------------------------------------------------------

    @rule(statement=st.sampled_from(STATEMENTS))
    def mql_query(self, statement):
        self._all_agree(
            f"mql {statement!r}", lambda c: c.query_mql(statement)
        )

    # -- invariants ---------------------------------------------------------

    @invariant()
    def full_listing_agrees(self):
        answers = [c.query_mql("files order by name") for c in self.catalogs]
        assert answers[0] == answers[1] == answers[2], (
            f"full listings diverge: {answers}"
        )


TestMQLEquivalence = MQLEquivalenceMachine.TestCase
TestMQLEquivalence.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)


# -- post-crash WAL replay ---------------------------------------------------


def _apply_random_ops(rng, catalog, oracle):
    """The same seeded op stream against the durable catalog and the
    in-memory oracle; returns nothing — both see identical writes."""
    names = []
    for step in range(60):
        action = rng.randrange(5)
        if action <= 1 or not names:
            name = f"f-{step:03d}"
            attrs = {
                "a_str": rng.choice(STR_VALUES),
                "a_int": rng.choice(INT_VALUES),
            }
            for c in (catalog, oracle):
                c.create_file(name, attributes=attrs)
            names.append(name)
        elif action == 2:
            name = rng.choice(names)
            attrs = {"a_int": rng.choice(INT_VALUES)}
            for c in (catalog, oracle):
                c.set_attributes(ObjectType.FILE, name, attrs)
        elif action == 3:
            name = names.pop(rng.randrange(len(names)))
            for c in (catalog, oracle):
                c.delete_file(name)
        else:
            # Poisoned non-atomic bulk: middle item rolls back under a
            # savepoint, neighbours commit.
            items = [
                {"name": rng.choice(names),
                 "attributes": {"a_str": rng.choice(STR_VALUES)}},
                {"name": "missing", "attributes": {"a_str": "x"}},
                {"name": rng.choice(names),
                 "attributes": {"a_int": rng.choice(INT_VALUES)}},
            ]
            for c in (catalog, oracle):
                outcomes = c.bulk_set_attributes(items, atomic=False)
                assert [ok for ok, _ in outcomes] == [True, False, True]


@pytest.mark.parametrize("seed", (7, 23))
def test_strategies_agree_after_crash_and_wal_replay(tmp_path, seed):
    durable = _prepare(
        MetadataCatalog(Database(directory=str(tmp_path), durable_sync=True)),
        None,
    )
    oracle = _prepare(MetadataCatalog(), "scan")
    _apply_random_ops(random.Random(seed), durable, oracle)
    expected = {s: oracle.query_mql(s) for s in STATEMENTS}
    # Crash: abandon the durable catalog without checkpoint or close —
    # recovery below rebuilds every table (attribute_stats included)
    # from the WAL alone.
    del durable

    reopened = MetadataCatalog(Database(directory=str(tmp_path)))
    try:
        for statement in STATEMENTS:
            for strategy in STRATEGIES:
                reopened.mql_strategy = strategy
                assert reopened.query_mql(statement) == expected[statement], (
                    f"{strategy} diverges from oracle after replay "
                    f"for {statement!r}"
                )
    finally:
        reopened.db.close()
        oracle.db.close()
