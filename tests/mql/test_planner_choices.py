"""Planner-choice regressions: fixed statistics → fixed access paths.

Three layers, matching the cost pipeline:

* ``repro.db.planner.choose_access_path`` with hand-built
  :class:`TableStats` fixtures — index-intersection vs single-index vs
  sequential scan, plus the guarantee that ``stats=None`` keeps the
  rule-based default byte-identical;
* the engine end to end: ``Database(cost_stats=True)`` EXPLAIN output
  flips to ``INDEX INTERSECT`` / ``SEQ SCAN`` on the same data where the
  default engine keeps its rule-based ``INDEX LOOKUP``;
* the MQL leaf planner: strategy choice under controlled
  ``attribute_stats``, forced-strategy overrides, the compiled-plan LRU
  (hit identity + generation invalidation), and an ``explain_mql``
  golden text.
"""

import pytest

from repro.core import MetadataCatalog
from repro.core.errors import QueryError
from repro.db import Database
from repro.db.expr import conjuncts
from repro.db.planner import TableStats, choose_access_path, describe_access
from repro.db.sql.parser import parse_statement

pytestmark = pytest.mark.mql


# -- choose_access_path with fixed TableStats fixtures -----------------------


@pytest.fixture
def table():
    db = Database()
    conn = db.connect()
    conn.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER)"
    )
    conn.execute("CREATE INDEX t_a ON t (a)")
    conn.execute("CREATE INDEX t_b ON t (b)")
    return db.catalog.table("t")


def _parts(sql):
    return conjuncts(parse_statement(sql).where)


def _choose(table, sql, stats):
    return choose_access_path(table, "t", _parts(sql), stats=stats)


def test_two_selective_equalities_pick_index_intersection(table):
    stats = TableStats(
        row_count=10_000, index_key_counts={"t_a": 100, "t_b": 50}
    )
    path = _choose(table, "SELECT id FROM t WHERE t.a = 1 AND t.b = 2", stats)
    assert path.kind == "index_and"
    assert {sub.index for sub in path.subpaths} == {"t_a", "t_b"}
    # The conservative residual re-applies every conjunct.
    assert path.residual is not None
    assert "INDEX INTERSECT" in describe_access(path)


def test_single_equality_keeps_single_index(table):
    stats = TableStats(
        row_count=10_000, index_key_counts={"t_a": 100, "t_b": 50}
    )
    path = _choose(table, "SELECT id FROM t WHERE t.a = 1", stats)
    assert path.kind == "index_eq"
    assert path.index == "t_a"


def test_unselective_equality_falls_back_to_seq(table):
    # One distinct key: the probe would fetch every row anyway, and the
    # cost model prefers the straight scan past the 50% threshold.
    stats = TableStats(row_count=10_000, index_key_counts={"t_a": 1, "t_b": 1})
    path = _choose(table, "SELECT id FROM t WHERE t.a = 1", stats)
    assert path.kind == "seq"
    assert path.residual is not None


def test_lopsided_intersection_keeps_the_selective_index(table):
    # t_b barely discriminates; intersecting through it costs more than
    # probing t_a alone and filtering.
    stats = TableStats(
        row_count=10_000, index_key_counts={"t_a": 5_000, "t_b": 2}
    )
    path = _choose(table, "SELECT id FROM t WHERE t.a = 1 AND t.b = 2", stats)
    assert path.kind == "index_eq"
    assert path.index == "t_a"


def test_no_stats_keeps_the_rule_based_default(table):
    for sql in (
        "SELECT id FROM t WHERE t.a = 1 AND t.b = 2",
        "SELECT id FROM t WHERE t.a = 1",
    ):
        path = _choose(table, sql, None)
        assert path.kind == "index_eq"
        assert not path.subpaths


# -- engine end to end: EXPLAIN with and without cost statistics -------------


def _filled(cost_stats):
    db = Database(cost_stats=cost_stats)
    conn = db.connect()
    conn.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c INTEGER)"
    )
    conn.execute("CREATE INDEX t_a ON t (a)")
    conn.execute("CREATE INDEX t_b ON t (b)")
    conn.execute("CREATE INDEX t_c ON t (c)")
    for i in range(500):
        conn.execute(
            "INSERT INTO t (id, a, b, c) VALUES (?, ?, ?, ?)",
            (i, i % 10, i % 7, 1),
        )
    return conn


def _plan(conn, sql):
    return [row[0] for row in conn.execute("EXPLAIN " + sql)]


def test_explain_shows_index_intersect_with_cost_stats():
    sql = "SELECT id FROM t WHERE a = 3 AND b = 4"
    with_stats = _plan(_filled(True), sql)
    assert with_stats[0].startswith("INDEX INTERSECT t AS t")
    assert "t_a" in with_stats[0] and "t_b" in with_stats[0]
    default = _plan(_filled(False), sql)
    assert default[0].startswith("INDEX LOOKUP t")


def test_explain_falls_back_to_seq_scan_on_constant_column():
    sql = "SELECT id FROM t WHERE c = 1"
    with_stats = _plan(_filled(True), sql)
    assert with_stats[0].startswith("SEQ SCAN t")
    default = _plan(_filled(False), sql)
    assert default[0].startswith("INDEX LOOKUP t")


def test_cost_stats_results_match_default_engine():
    for sql in (
        "SELECT id FROM t WHERE a = 3 AND b = 4 ORDER BY id",
        "SELECT id FROM t WHERE c = 1 AND a = 2 ORDER BY id",
    ):
        rows_stats = list(_filled(True).execute(sql))
        rows_plain = list(_filled(False).execute(sql))
        assert rows_stats == rows_plain


# -- MQL leaf strategy choice ------------------------------------------------


@pytest.fixture
def catalog():
    cat = MetadataCatalog()
    cat.define_attribute("run", "int")
    cat.define_attribute("site", "string")
    for i in range(10):
        cat.create_file(f"f{i}", attributes={"run": i % 5, "site": f"s{i % 2}"})
    cat.analyze_attributes()
    return cat


def _leaf_plans(cat, text):
    plan = cat._mql_plan(text)
    return [leaf_plan.strategy for leaf_plan in plan.leaf_plans]


def test_selective_equality_leaf_prefers_join(catalog):
    assert _leaf_plans(catalog, "files where run = 2") == ["join"]


def test_unselective_conjunction_prefers_scan(catalog):
    # Five != conditions: the join model pays est·n ≈ 5·rows (50), the
    # scan pays 2·(all EAV rows) (40) — cheaper once the estimates stop
    # helping.
    strategies = _leaf_plans(
        catalog,
        "files where run != 1 and run != 2 and run != 3 "
        "and run != 4 and run != 0",
    )
    assert strategies == ["scan"]


def test_forced_strategy_wins_over_cost(catalog):
    catalog.mql_strategy = "scan"
    assert _leaf_plans(catalog, "files where run = 2") == ["scan"]
    catalog.mql_strategy = "index"
    assert _leaf_plans(catalog, "files where run = 2") == ["index"]
    catalog.mql_strategy = None


def test_unknown_strategy_is_a_query_error(catalog):
    catalog.mql_strategy = "turbo"
    with pytest.raises(QueryError):
        catalog.query_mql("files where run = 2")
    catalog.mql_strategy = None


def test_plan_cache_identity_and_generation_invalidation(catalog):
    text = "files where run = 2 order by name"
    first = catalog._mql_plan(text)
    assert catalog._mql_plan(text) is first
    # Any attribute (re)definition bumps the generation and must drop
    # every cached plan for the old statistics.
    catalog.define_attribute("fresh", "int")
    assert catalog._mql_plan(text) is not first
    # A strategy override is part of the cache key too.
    catalog.mql_strategy = "scan"
    forced = catalog._mql_plan(text)
    assert forced.leaf_plans[0].strategy == "scan"
    catalog.mql_strategy = None


# -- explain_mql golden text -------------------------------------------------


def test_explain_mql_golden(catalog):
    got = catalog.explain_mql(
        'files where run = 2 and site like "s%" order by name limit 3'
    )
    assert got == [
        'MQL: files where run = 2 and site like "s%" order by name limit 3',
        "leaf 0 [file]: strategy=join cost=4.0 (conditions=2 predefined=0)",
        "    INDEX LOOKUP attribute_value AS a0 USING av_int ON (1, 2) "
        "FILTER (a0.object_type = 'file')",
        "    INDEX NESTED LOOP JOIN -> INDEX LOOKUP logical_file AS obj "
        "USING __pk_logical_file ON () KEYS (a0.object_id)",
        "    INDEX NESTED LOOP JOIN -> INDEX LOOKUP attribute_value AS a1 "
        "USING __uq_attribute_value_0 ON () KEYS (2, 'file', obj.id) "
        "ON (a1.value_string LIKE 's%')",
        "    DISTINCT",
        "    SORT BY obj.name",
        "    PROJECT name",
        "  run = ? (est 2.0 rows)",
        "  site like ? (est 3.3 rows)",
        "  costs: index=9.3, join=4.0, scan=40.0",
        "algebra: leaf0",
        "order by name asc limit 3",
    ]


def test_explain_mql_algebra_golden(catalog):
    got = catalog.explain_mql('(files where run = 0) union (files where site = "s1")')
    assert got[0] == 'MQL: files where run = 0 union files where site = "s1"'
    assert got[-2] == "algebra: union(leaf0, leaf1)"
    assert got[-1] == "order by name asc"
    assert sum(1 for line in got if line.startswith("leaf ")) == 2
