"""Property tests for the scatter/gather k-way merge.

Two layers of oracle:

* pure-function properties — ``merge_sorted`` over arbitrary per-shard
  streams must equal a stable global sort of the concatenated streams
  with the offset/limit applied afterwards (ties, NULL keys, offsets
  spanning shard boundaries included);
* a real-catalog comparison — a sharded catalog's ordered, paged query
  answers must match the single engine's for unique sort keys, and
  agree up to SQL's unspecified equal-key order for duplicated keys.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core import MetadataCatalog
from repro.core.query import ObjectQuery
from repro.shard import build_sharded_catalog
from repro.shard.merge import _null_last_key, merge_sorted

pytestmark = pytest.mark.shard


keys = st.one_of(st.none(), st.integers(min_value=0, max_value=9))
rows = st.lists(keys, max_size=30).map(
    lambda ks: [(k, f"n{i:03d}") for i, k in enumerate(ks)]
)


def _partition(items, shards):
    parts = [[] for _ in range(shards)]
    for i, item in enumerate(items):
        parts[i % shards].append(item)
    return parts


@given(
    rows=rows,
    shards=st.integers(min_value=1, max_value=5),
    descending=st.booleans(),
    offset=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
)
@settings(max_examples=200, deadline=None)
def test_merge_equals_global_sort(rows, shards, descending, offset, limit):
    parts = [
        sorted(part, key=_null_last_key, reverse=descending)
        for part in _partition(rows, shards)
    ]
    # The oracle: stable sort of the shard streams concatenated in shard
    # order — identical tie-breaking to the documented merge contract —
    # with the global offset/limit applied afterwards.
    flat = [pair for part in parts for pair in part]
    expected = [
        name
        for _key, name in sorted(flat, key=_null_last_key, reverse=descending)
    ]
    skip = offset or 0
    expected = expected[skip:]
    if limit is not None:
        expected = expected[:limit]
    got = merge_sorted(parts, descending=descending, offset=offset, limit=limit)
    assert got == expected


def test_offset_spans_shard_boundary():
    """A global offset larger than any single shard's contribution."""
    parts = [
        [(0, "a0"), (3, "a3")],
        [(1, "b1"), (4, "b4")],
        [(2, "c2"), (5, "c5")],
    ]
    assert merge_sorted(parts, offset=4) == ["b4", "c5"]
    assert merge_sorted(parts, offset=2, limit=3) == ["c2", "a3", "b4"]


def test_ties_break_by_shard_then_position():
    parts = [[(1, "s0a"), (1, "s0b")], [(1, "s1a")], [(0, "s2a"), (1, "s2b")]]
    assert merge_sorted(parts) == ["s2a", "s0a", "s0b", "s1a", "s2b"]


def test_nulls_first_ascending_last_descending():
    parts = [[(None, "null0"), (1, "one")], [(None, "null1"), (2, "two")]]
    assert merge_sorted(parts) == ["null0", "null1", "one", "two"]
    desc = [
        sorted(part, key=_null_last_key, reverse=True) for part in parts
    ]
    assert merge_sorted(desc, descending=True) == [
        "two", "one", "null0", "null1"
    ]


# -- real-catalog comparison --------------------------------------------------


def _populate(catalog, total=23):
    catalog.create_collection("c0")
    catalog.create_collection("c1")
    for i in range(total):
        catalog.create_file(
            f"f{i:03d}",
            collection=("c0", "c1", None)[i % 3],
            # Duplicated keys plus NULLs: every third file has no
            # data_type, the rest cycle through three values.
            data_type=None if i % 3 == 0 else f"type-{i % 4}",
        )


@pytest.fixture(scope="module")
def catalogs():
    single = MetadataCatalog()
    _populate(single)
    sharded = []
    for n in (1, 2, 4):
        catalog = build_sharded_catalog(n)
        _populate(catalog)
        sharded.append((n, catalog))
    yield single, sharded
    for _n, catalog in sharded:
        catalog.close()


@pytest.mark.parametrize("descending", (False, True))
@pytest.mark.parametrize(
    ("limit", "offset"),
    ((None, None), (5, None), (None, 7), (4, 6), (100, 20), (3, 22)),
)
def test_paged_name_order_matches_single(catalogs, descending, limit, offset):
    single, sharded = catalogs
    query = (
        ObjectQuery().order_by("name", descending=descending)
        .limit(limit).offset(offset)
    )
    expected = single.query(query)
    for n, catalog in sharded:
        assert catalog.query(query) == expected, f"{n} shards diverge"


@pytest.mark.parametrize("descending", (False, True))
def test_duplicate_keys_and_nulls_match_up_to_sql_tie_order(
    catalogs, descending
):
    single, sharded = catalogs
    query = ObjectQuery().order_by("data_type", descending=descending)
    expected = single.query(query)
    by_name = {
        f.name: f.data_type
        for f in (single.get_file(n) for n in expected)
    }
    expected_keys = [by_name[name] for name in expected]
    for n, catalog in sharded:
        got = catalog.query(query)
        assert sorted(got) == sorted(expected), f"{n} shards: row set differs"
        got_keys = [by_name[name] for name in got]
        # Equal-key order is unspecified in SQL; the key *sequence*
        # (including NULL placement) must still be identical.
        assert got_keys == expected_keys, f"{n} shards: key order differs"
