"""Submission-order reassembly of sharded bulk batches.

The shard router splits one bulk batch into per-shard sub-batches, runs
them independently, and must put every per-item result back at the
caller's position — reply item *i* always describes entry *i*, exactly
as :func:`repro.soap.transport.execute_bulk` documents.  These tests pin
that contract at both layers:

* catalog level — ``ShardedCatalog.bulk_create_files`` vs the single
  engine, with failures planted at known submission positions so a
  mis-reassembled router would visibly shift them;
* service level — the same batch through ``MCSClient.in_process`` over
  an ``MCSService`` wrapping the sharded catalog (``bulk_create_files``
  and a mixed ``client.bulk()`` pipeline), so the wire items and the
  resolved ``BulkResult`` handles keep the same positions end to end.
"""

from __future__ import annotations

import pytest

from repro.core import MCSClient, MCSService, MetadataCatalog, ObjectType
from repro.core.errors import (
    DuplicateObjectError,
    InvalidAttributeError,
    ObjectNotFoundError,
)
from repro.shard import build_sharded_catalog

pytestmark = pytest.mark.shard

SHARDS = 4


def _prepare(catalog):
    catalog.define_attribute("tag", "string")
    for name in ("colA", "colB"):
        catalog.create_collection(name)
    catalog.create_file("dup-early", collection="colA")
    catalog.create_file("dup-late", collection="colB")
    return catalog


def _entries():
    """Twelve entries with four failures at fixed submission positions.

    Position 2 and 10 are duplicates of pre-existing files, position 5
    names a collection that does not exist, position 8 uses an undefined
    attribute.  The successful names are spread by hash across shards,
    so reassembly genuinely crosses sub-batch boundaries.
    """
    entries = [
        {"name": f"bulk-{i:02d}", "collection": ("colA", "colB", None)[i % 3],
         "attributes": {"tag": f"t{i}"}}
        for i in range(12)
    ]
    entries[2] = {"name": "dup-early", "collection": "colA"}
    entries[5] = {"name": "bulk-05", "collection": "no-such-coll"}
    entries[8] = {"name": "bulk-08", "attributes": {"bogus": 1}}
    entries[10] = {"name": "dup-late", "collection": "colB"}
    return entries


FAILING_POSITIONS = {
    2: DuplicateObjectError,
    5: ObjectNotFoundError,
    8: InvalidAttributeError,
    10: DuplicateObjectError,
}


@pytest.fixture()
def sharded():
    catalog = _prepare(build_sharded_catalog(SHARDS))
    yield catalog
    catalog.close()


def test_entries_actually_span_shards(sharded):
    """The fixture batch must fan out, or the tests prove nothing."""
    homes = {
        sharded.map.shard_for_file(e["name"], e.get("collection"))
        for e in _entries()
    }
    assert len(homes) > 1, f"batch routed to a single shard: {homes}"


def test_nonatomic_outcomes_keep_submission_positions(sharded):
    single = _prepare(MetadataCatalog())
    entries = _entries()
    got = sharded.bulk_create_files(entries, atomic=False)
    expected = single.bulk_create_files(entries, atomic=False)
    assert len(got) == len(entries)

    for position, (ok, value) in enumerate(got):
        if position in FAILING_POSITIONS:
            assert not ok, f"position {position} should have failed"
            assert isinstance(value, FAILING_POSITIONS[position]), (
                f"position {position}: {type(value).__name__}"
            )
        else:
            assert ok, f"position {position} failed: {value!r}"

    # Same ok/error-type vector as the single engine (ids are
    # shard-local and deliberately not compared).
    vector = [(ok, None if ok else type(v).__name__) for ok, v in got]
    base = [(ok, None if ok else type(v).__name__) for ok, v in expected]
    assert vector == base

    # Every successful item landed as *its* entry: right collection
    # membership, right attributes, findable through the router.
    for (ok, _), entry in zip(got, entries):
        if not ok:
            continue
        assert sharded.file_exists(entry["name"])
        coll = entry.get("collection")
        if coll is not None:
            assert entry["name"] in sharded.list_collection(coll)
        attrs = sharded.get_attributes(ObjectType.FILE, entry["name"])
        for attr, value in entry.get("attributes", {}).items():
            assert attrs.get(attr) == value


def test_within_batch_duplicate_fails_at_the_later_position(sharded):
    single = _prepare(MetadataCatalog())
    entries = [
        {"name": "twin", "collection": "colA"},
        {"name": "solo-a"},
        {"name": "twin", "collection": "colB"},
        {"name": "solo-b"},
    ]
    got = sharded.bulk_create_files(entries, atomic=False)
    expected = single.bulk_create_files(entries, atomic=False)
    assert [ok for ok, _ in got] == [ok for ok, _ in expected] == [
        True, True, False, True,
    ]
    assert isinstance(got[2][1], DuplicateObjectError)
    # The surviving twin is the first submission: it kept colA.
    assert "twin" in sharded.list_collection("colA")
    assert "twin" not in sharded.list_collection("colB")


def test_atomic_cross_shard_failure_commits_nothing(sharded):
    entries = _entries()
    with pytest.raises(DuplicateObjectError):
        sharded.bulk_create_files(entries, atomic=True)
    for entry in entries:
        name = entry["name"]
        if name.startswith("bulk-"):
            assert not sharded.file_exists(name), f"{name} leaked"


# -- through the service and client -------------------------------------------


@pytest.fixture()
def client(sharded):
    service = MCSService(catalog=sharded)
    c = MCSClient.in_process(service, caller="/O=Grid/CN=bulk")
    yield c
    c.close()


def test_wire_items_keep_submission_positions(client):
    reply = client.bulk_create_files(_entries(), atomic=False)
    items = reply["items"]
    assert len(items) == 12
    assert reply["ok"] == 8
    for position, item in enumerate(items):
        if position in FAILING_POSITIONS:
            assert not item["ok"]
            assert item["code"] == FAILING_POSITIONS[position].fault_code
        else:
            assert item["ok"]
            assert isinstance(item["result"]["id"], int)


def test_mixed_pipeline_resolves_handles_in_order(client):
    client.create_logical_file("seeded", collection="colA")
    with client.bulk() as batch:
        handles = [
            batch.call("delete_logical_file", name="seeded"),
            batch.call("delete_logical_file", name="never-existed"),
            batch.call("create_logical_file", name="piped-a"),
            batch.call("create_logical_file", name="piped-a"),
            batch.call("create_logical_file", name="piped-b",
                       collection="no-such-coll"),
            batch.call("get_attributes", object_type="file", name="piped-a"),
        ]
    assert [h.ok for h in handles] == [True, False, True, False, False, True]
    assert isinstance(handles[1].error, ObjectNotFoundError)
    assert isinstance(handles[3].error, DuplicateObjectError)
    assert isinstance(handles[4].error, ObjectNotFoundError)
    with pytest.raises(ObjectNotFoundError):
        client.get_logical_file("piped-b")
