"""Sharded-equivalence lane (run alone with ``-m shard``).

Every module here carries ``pytestmark = pytest.mark.shard``.  The lane
proves the tentpole contract of ``repro.shard``: N engines behind one
:class:`ShardedCatalog` are observationally indistinguishable from a
single :class:`MetadataCatalog` given the same operation sequence.
"""
