"""The asyncio front end is shard-transparent.

The scripted operation sequence from the wire runs twice — once against
a single-engine catalog, once against a 2-shard catalog — both served
by :class:`AsyncSoapServer`.  Every observable reply (results, listings,
query answers, fault types) must match, so neither the front end nor the
shard router leaks into client-visible behavior.
"""

from __future__ import annotations

import pytest

from repro.aserve import AsyncSoapServer
from repro.core import (
    MCSClient,
    MCSService,
    MetadataCatalog,
    ObjectNotFoundError,
    ObjectQuery,
)
from repro.shard import build_sharded_catalog

pytestmark = pytest.mark.shard

CALLER = "/O=Grid/CN=shard-eq"


def scripted_ops(client: MCSClient) -> list:
    """Deterministic churn mirroring the stateful suite's rule mix."""
    transcript: list = []
    client.create_collection("colA")
    client.create_collection("colB")
    for i in range(12):
        coll = ("colA", "colB", None)[i % 3]
        transcript.append(
            bool(
                client.create_logical_file(
                    f"file-{i:03d}",
                    collection=coll,
                    attributes={"a_int": i % 4, "a_str": "xyz"[i % 3]},
                )
            )
        )
    for i in range(0, 12, 4):
        client.set_attributes(
            "file", f"file-{i:03d}", {"a_str": "tagged", "a_int": 99}
        )
    for i in (1, 5, 9):
        client.delete_logical_file(f"file-{i:03d}")
    for name in ("file-001", "no-such-file"):
        try:
            transcript.append(client.get_logical_file(name))
        except ObjectNotFoundError:
            transcript.append("ObjectNotFoundError")
    transcript.append(
        client.query(
            ObjectQuery()
            .where("a_int", ">=", 2)
            .order_by("name")
            .limit(6)
            .offset(1)
        )
    )
    transcript.append(
        sorted(client.query(ObjectQuery(collection="colB").where("a_str", "=", "tagged")))
    )
    transcript.append(sorted(client.list_collection("colA")))
    transcript.append(sorted(client.list_collection("colB")))
    for i in (0, 4, 8):
        transcript.append(client.get_attributes("file", f"file-{i:03d}"))
    return transcript


def run_over_the_wire(catalog) -> list:
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    service = MCSService(catalog)
    with AsyncSoapServer(
        service.handle, fault_mapper=service.fault_mapper
    ) as srv:
        client = MCSClient.connect(*srv.endpoint, caller=CALLER)
        try:
            return scripted_ops(client)
        finally:
            client.close()


def _scrub(transcript: list) -> list:
    """Drop the documented divergences: timestamps and row ids."""
    scrubbed = []
    for item in transcript:
        if isinstance(item, dict):
            item = {
                k: v
                for k, v in item.items()
                if k not in ("created_at", "modified_at", "id")
            }
        scrubbed.append(item)
    return scrubbed


def test_async_front_end_is_shard_transparent():
    single = run_over_the_wire(MetadataCatalog())
    sharded_catalog = build_sharded_catalog(2)
    try:
        sharded = run_over_the_wire(sharded_catalog)
    finally:
        sharded_catalog.close()
    assert _scrub(sharded) == _scrub(single)
    # The transcript is substantive, not vacuously equal.
    assert "ObjectNotFoundError" in single
    assert any(isinstance(item, dict) for item in single)
