"""Stateful property test: sharded catalogs vs one single-engine catalog.

The headline suite of the sharding PR.  Four catalogs run side by side —
a plain :class:`MetadataCatalog` and :class:`ShardedCatalog` instances
over 1, 2 and 4 engines — and receive the identical randomized sequence
of creates, moves, deletes, attribute writes, bulk batches and queries.
After every step all four must agree on

* success/failure of the operation (same exception type on failure),
* per-item bulk outcomes in submission order,
* query answers, including ``order_by``/``limit``/``offset`` paging,
* observable aggregate state (file counts, per-file attributes,
  collection listings).

Shard-local row ids and timestamps are the documented divergences and
are deliberately never compared.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
import pytest

from repro.core import MetadataCatalog, ObjectType
from repro.core.query import ObjectQuery
from repro.shard import build_sharded_catalog

pytestmark = pytest.mark.shard

SHARD_COUNTS = (1, 2, 4)
COLLECTIONS = ("colA", "colB", "colC", "colD", "colE", "colF")
STR_VALUES = ("x", "y", "z")
INT_VALUES = (1, 2, 3)

#: MQL statements the router must scatter per-leaf and merge back into
#: the exact single-engine answer — conjunctions, disjunctions, ``like``,
#: dataset algebra over parenthesized subqueries, and paging.
MQL_STATEMENTS = (
    "files order by name",
    "files where a_int = 1",
    "files where a_int = 2 and a_str = \"y\" order by name",
    "files where a_str like \"x%\" or a_int = 3 order by name limit 4",
    "files where not (a_int = 2) order by name desc limit 5 offset 1",
    "(files where a_int = 1) union (files where a_str = \"y\") order by name",
    "(files where a_int != 3) minus (files where a_str = \"z\")",
    "(files where a_int = 1) intersect (files where valid) order by name",
)


def _prepare(catalog):
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    for name in COLLECTIONS:
        catalog.create_collection(name)
    return catalog


class ShardedEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.single = _prepare(MetadataCatalog())
        self.sharded = [
            _prepare(build_sharded_catalog(n)) for n in SHARD_COUNTS
        ]
        self.names: list[str] = []
        self._counter = 0

    def teardown(self):
        for catalog in self.sharded:
            catalog.close()

    @property
    def catalogs(self):
        return [self.single, *self.sharded]

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"file-{self._counter:04d}"

    def _pick(self, data_index: int) -> str:
        """An existing name, or a never-created one on an empty pool."""
        if not self.names:
            return "no-such-file"
        return self.names[data_index % len(self.names)]

    def _all_agree(self, op, fn):
        """Run ``fn(catalog)`` everywhere; all outcomes must match.

        Returns the single-engine outcome ``(ok, value_or_exc)``.
        """
        outcomes = []
        for catalog in self.catalogs:
            try:
                outcomes.append((True, fn(catalog)))
            except Exception as exc:  # noqa: BLE001 - oracle comparison
                outcomes.append((False, exc))
        ok0, value0 = outcomes[0]
        for shards, (ok, value) in zip(SHARD_COUNTS, outcomes[1:]):
            assert ok == ok0, (
                f"{op}: single ok={ok0} but {shards}-shard ok={ok} "
                f"({value0!r} vs {value!r})"
            )
            if not ok0:
                assert type(value) is type(value0), (
                    f"{op}: single raised {type(value0).__name__} but "
                    f"{shards}-shard raised {type(value).__name__}"
                )
            elif isinstance(value0, (list, tuple, dict, str, int, bool)):
                assert value == value0, (
                    f"{op}: single returned {value0!r} but "
                    f"{shards}-shard returned {value!r}"
                )
        return outcomes[0]

    # -- rules --------------------------------------------------------------

    @rule(
        fresh=st.booleans(),
        coll=st.sampled_from(COLLECTIONS + (None,)),
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
        pick=st.integers(min_value=0),
    )
    def create(self, fresh, coll, s, i, pick):
        name = self._fresh_name() if fresh or not self.names else self._pick(pick)
        ok, _ = self._all_agree(
            f"create {name!r}",
            lambda c: bool(
                c.create_file(
                    name,
                    collection=coll,
                    attributes={"a_str": s, "a_int": i},
                )
            ),
        )
        if ok:
            self.names.append(name)

    @rule(pick=st.integers(min_value=0), coll=st.sampled_from(COLLECTIONS + (None,)))
    def move(self, pick, coll):
        name = self._pick(pick)
        self._all_agree(
            f"move {name!r} -> {coll!r}",
            lambda c: c.move_file_to_collection(name, coll),
        )

    @rule(pick=st.integers(min_value=0))
    def delete(self, pick):
        name = self._pick(pick)
        ok, _ = self._all_agree(
            f"delete {name!r}", lambda c: c.delete_file(name)
        )
        if ok and name in self.names:
            self.names.remove(name)

    @rule(
        pick=st.integers(min_value=0),
        s=st.sampled_from(STR_VALUES),
        i=st.sampled_from(INT_VALUES),
    )
    def set_attrs(self, pick, s, i):
        name = self._pick(pick)
        self._all_agree(
            f"set_attributes {name!r}",
            lambda c: c.set_attributes(
                ObjectType.FILE, name, {"a_str": s, "a_int": i}
            ),
        )

    @rule(
        n=st.integers(min_value=1, max_value=5),
        poison=st.booleans(),
        coll=st.sampled_from(COLLECTIONS),
        s=st.sampled_from(STR_VALUES),
    )
    def bulk_create(self, n, poison, coll, s):
        """Non-atomic bulk with interleaved failures: the per-item ok
        vector (in submission order) must match the single engine's."""
        entries = [
            {
                "name": self._fresh_name(),
                "collection": COLLECTIONS[(k + n) % len(COLLECTIONS)],
                "attributes": {"a_str": s},
            }
            for k in range(n)
        ]
        if poison and self.names:
            entries.insert(
                len(entries) // 2,
                {"name": self.names[0], "collection": coll,
                 "attributes": {"a_str": s}},
            )
        per_catalog = [
            c.bulk_create_files(entries, atomic=False) for c in self.catalogs
        ]
        base = [(ok, type(val).__name__ if not ok else None)
                for ok, val in per_catalog[0]]
        for shards, outcomes in zip(SHARD_COUNTS, per_catalog[1:]):
            got = [(ok, type(val).__name__ if not ok else None)
                   for ok, val in outcomes]
            assert got == base, (
                f"bulk outcomes diverge on {shards} shards: {got} != {base}"
            )
        for (ok, _), entry in zip(per_catalog[0], entries):
            if ok:
                self.names.append(entry["name"])

    @rule(
        s=st.sampled_from(STR_VALUES + (None,)),
        descending=st.booleans(),
        limit=st.sampled_from((None, 1, 2, 3, 10)),
        offset=st.sampled_from((None, 1, 2, 5)),
    )
    def ordered_query(self, s, descending, limit, offset):
        def run(catalog):
            query = ObjectQuery().order_by("name", descending=descending)
            if s is not None:
                query = query.where("a_str", "=", s)
            return catalog.query(query.limit(limit).offset(offset))

        self._all_agree(f"ordered query a_str={s!r}", run)

    @rule(s=st.sampled_from(STR_VALUES), coll=st.sampled_from(COLLECTIONS))
    def unordered_query(self, s, coll):
        self._all_agree(
            f"collection query {coll!r}",
            lambda c: sorted(
                c.query(
                    ObjectQuery(collection=coll).where("a_str", "=", s)
                )
            ),
        )

    @rule(coll=st.sampled_from(COLLECTIONS))
    def list_collection(self, coll):
        self._all_agree(
            f"list_collection {coll!r}", lambda c: c.list_collection(coll)
        )

    @rule(statement=st.sampled_from(MQL_STATEMENTS))
    def mql_query(self, statement):
        self._all_agree(
            f"mql {statement!r}", lambda c: c.query_mql(statement)
        )

    @rule()
    def analyze(self):
        """Exact per-shard statistics recompute; answers must not move."""
        self._all_agree("analyze", lambda c: bool(c.analyze_attributes()))

    # -- invariants ----------------------------------------------------------

    @invariant()
    def same_file_count(self):
        counts = [c.stats()["files"] for c in self.catalogs]
        assert len(set(counts)) == 1, f"file counts diverge: {counts}"

    @invariant()
    def same_attributes(self):
        for name in self.names[-3:]:
            base = self.single.get_attributes(ObjectType.FILE, name)
            for shards, catalog in zip(SHARD_COUNTS, self.sharded):
                got = catalog.get_attributes(ObjectType.FILE, name)
                assert got == base, (
                    f"{name!r} attrs diverge on {shards} shards: "
                    f"{got} != {base}"
                )


TestShardedEquivalence = ShardedEquivalenceMachine.TestCase
TestShardedEquivalence.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
