"""The ``pytest -m sanitizer`` lane: the existing bulk/cache concurrency
stress suites re-run with the runtime lock-order sanitizer installed.

The stress tests assert their own invariants (no stale reads, no torn
batches, no wedged threads); this lane adds the sanitizer's: while all
of that ran, no code path ever acquired engine locks in contradictory
orders, and no acquisition timed out.
"""

from __future__ import annotations

import pytest

from repro.analysis import sanitizer
from repro.core import MCSService

from tests.cache.test_cache_concurrency import (
    test_readers_never_see_stale_values_under_write_churn as _cache_churn,
)
from tests.integration.test_bulk_concurrency import (
    test_bulk_writers_never_expose_torn_batches as _bulk_torn,
)

pytestmark = pytest.mark.sanitizer


@pytest.fixture()
def san():
    with sanitizer.enabled() as active:
        yield active


def test_cache_churn_under_sanitizer(san) -> None:
    _cache_churn()
    assert san.violations == 0
    assert san.timeouts_observed == 0
    assert san.order_graph(), "stress never touched instrumented locks"


def test_bulk_concurrency_under_sanitizer(san) -> None:
    service = MCSService()
    service.catalog.define_attribute("batch_tag", "string")
    service.catalog.define_attribute("state", "string")
    _bulk_torn(service)
    assert san.violations == 0
    assert san.timeouts_observed == 0
    assert san.order_graph(), "stress never touched instrumented locks"
