"""Unit tests for the cache building blocks: GenerationMap and LRUCache."""

import threading

import pytest

from repro.cache import GenerationMap, LRUCache

pytestmark = pytest.mark.cache


class TestGenerationMap:
    def test_unknown_table_is_generation_zero(self):
        gens = GenerationMap()
        assert gens.get("never_written") == 0
        assert gens.snapshot(("a", "b")) == (0, 0)

    def test_bump_is_monotonic_and_per_table(self):
        gens = GenerationMap()
        gens.bump(("a",))
        gens.bump(("a", "b"))
        assert gens.get("a") == 2
        assert gens.get("b") == 1
        assert gens.get("c") == 0

    def test_snapshot_order_matches_tables(self):
        gens = GenerationMap()
        gens.bump(("x",))
        assert gens.snapshot(("x", "y")) == (1, 0)
        assert gens.snapshot(("y", "x")) == (0, 1)

    def test_as_dict(self):
        gens = GenerationMap()
        gens.bump(("t1", "t2"))
        gens.bump(("t1",))
        assert gens.as_dict() == {"t1": 2, "t2": 1}

    def test_concurrent_bumps_never_lose_updates(self):
        gens = GenerationMap()
        n_threads, n_bumps = 8, 200

        def bump():
            for _ in range(n_bumps):
                gens.bump(("t",))

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gens.get("t") == n_threads * n_bumps


class TestLRUCache:
    def test_put_get_roundtrip(self):
        lru = LRUCache(4)
        lru.put("k", 42)
        assert lru.get("k") == 42
        assert lru.get("missing") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh "a"; "b" is now LRU
        lru.put("c", 3)
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        assert lru.evictions == 1

    def test_overwrite_does_not_evict(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("a", 2)
        lru.put("b", 3)
        assert len(lru) == 2
        assert lru.evictions == 0
        assert lru.get("a") == 2

    def test_discard_and_clear(self):
        lru = LRUCache(4)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.discard("a")
        lru.discard("a")  # idempotent
        assert lru.get("a") is None
        lru.clear()
        assert len(lru) == 0
        assert lru.get("b") is None
