"""Concurrency stress: zero stale reads under reader/writer churn.

One writer advances a monotonically increasing attribute value on a
single file (each ``set_attributes`` replaces the value, so exactly one
value matches at any instant) while reader threads hammer the same
cached queries.  Before each probe a reader snapshots the writer's
committed floor ``c``; since the value only ever grows, a query for any
value ``< c`` must return nothing — a non-empty answer could only come
from a stale cache entry.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery

pytestmark = pytest.mark.cache

ROUNDS = 120
READERS = 4


def test_readers_never_see_stale_values_under_write_churn():
    service = MCSService()
    catalog = service.catalog
    catalog.define_attribute("v", "int")
    catalog.create_file("hot", attributes={"v": 0})

    committed = [0]  # highest value whose write has returned
    errors: list[BaseException] = []
    done = threading.Event()

    def writer() -> None:
        client = MCSClient.in_process(service, caller="writer")
        try:
            for j in range(1, ROUNDS + 1):
                client.set_attributes("file", "hot", {"v": j})
                committed[0] = j  # publish after the commit returned
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        finally:
            done.set()

    def reader(r: int) -> None:
        client = MCSClient.in_process(service, caller=f"reader-{r}")
        try:
            while not done.is_set():
                floor = committed[0]
                if floor >= 1:
                    stale = client.query(ObjectQuery().where("v", "=", floor - 1))
                    # v was already > floor-1 before this query began and
                    # never decreases: any hit is a stale cached read.
                    assert stale == [], (
                        f"stale read: v={floor - 1} still visible at "
                        f"floor {floor}: {stale}"
                    )
                # Racing probe at the floor itself: [] (writer moved on)
                # or ["hot"] are both legal; it exists to keep the cache
                # hot on the exact entries the writer is invalidating.
                client.query(ObjectQuery().where("v", "=", floor))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(r,)) for r in range(READERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "thread wedged (possible deadlock)"
    assert not errors, f"failures under churn: {errors!r}"
    assert committed[0] == ROUNDS

    # The stress only proves anything if the cache actually served reads.
    # Readers racing a fast writer can (rarely) miss every probe, so
    # prime-and-probe deterministically now that the churn is over: with
    # no further invalidations, the repeated query must come from cache.
    prober = MCSClient.in_process(service, caller="prober")
    prober.query(ObjectQuery().where("v", "=", ROUNDS))
    prober.query(ObjectQuery().where("v", "=", ROUNDS))
    stats = catalog.cache.stats()["query"]
    assert stats["hits"] > 0, "stress never exercised the cache"
