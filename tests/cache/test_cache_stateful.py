"""Stateful property test: cached catalog vs uncached ground truth.

Two identical catalogs receive the same operation stream — single
writes, deletes, bulk atomic and non-atomic batches (including poisoned
batches that exercise whole-transaction rollback and per-item savepoint
rollback) — but one runs with the read cache enabled and one with it
disabled.  After every step, every query answer must match: the cache
may only ever change performance, never results.

Queries are issued inside the rules as well as the invariants so cache
entries are hot (and therefore *could* serve stale data) at the moment
each write lands.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import MetadataCatalog, ObjectQuery, ObjectType

pytestmark = pytest.mark.cache

STR_VALUES = ("x", "y", "z")
INT_VALUES = (1, 2, 3)


def _make_catalog(cache: bool) -> MetadataCatalog:
    catalog = MetadataCatalog(cache=cache)
    catalog.define_attribute("a_str", "string")
    catalog.define_attribute("a_int", "int")
    return catalog


def _queries():
    for s in STR_VALUES:
        yield ObjectQuery().where("a_str", "=", s)
    for i in INT_VALUES:
        yield ObjectQuery().where("a_str", "=", "x").where("a_int", "=", i)
    yield ObjectQuery().where_field("name", "=", "file-0001")
    yield ObjectQuery().where("a_int", ">", 1).order_by("name")
    yield ObjectQuery().where("a_int", ">=", 1).limit(3)


class CachedEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cached = _make_catalog(cache=True)
        self.plain = _make_catalog(cache=False)
        self.names: list[str] = []
        self._counter = 0

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"file-{self._counter:04d}"

    def _both(self, fn):
        """Apply one operation to both catalogs; outcomes must agree."""
        results = []
        for catalog in (self.cached, self.plain):
            try:
                results.append((True, fn(catalog)))
            except Exception as exc:  # noqa: BLE001 - equivalence oracle
                results.append((False, type(exc)))
        assert results[0][0] == results[1][0], (
            f"cached ok={results[0]} plain ok={results[1]}"
        )
        return results[0]

    # -- rules ----------------------------------------------------------------

    @rule(s=st.sampled_from(STR_VALUES), i=st.sampled_from(INT_VALUES))
    def create_one(self, s, i):
        name = self._fresh_name()
        ok, _ = self._both(
            lambda c: c.create_file(name, attributes={"a_str": s, "a_int": i})
        )
        if ok:
            self.names.append(name)

    @rule(s=st.sampled_from(STR_VALUES))
    def set_attrs(self, s):
        if not self.names:
            return
        name = self.names[len(self.names) // 2]
        self._both(
            lambda c: c.set_attributes(ObjectType.FILE, name, {"a_str": s})
        )

    @rule()
    def delete_one(self):
        if not self.names:
            return
        name = self.names.pop(0)
        self._both(lambda c: c.delete_file(name))

    @rule(
        n=st.integers(min_value=1, max_value=5),
        poison=st.booleans(),
        atomic=st.booleans(),
        s=st.sampled_from(STR_VALUES),
    )
    def bulk_create(self, n, poison, atomic, s):
        entries = [
            {"name": self._fresh_name(), "attributes": {"a_str": s}}
            for _ in range(n)
        ]
        if poison and self.names:
            # Duplicate mid-batch: atomic -> whole-transaction rollback,
            # non-atomic -> savepoint rollback of just this item.  Either
            # way the cache must not serve answers from the reverted rows.
            entries.insert(
                len(entries) // 2,
                {"name": self.names[0], "attributes": {"a_str": s}},
            )
        ok, value = self._both(
            lambda c: c.bulk_create_files(entries, atomic=atomic)
        )
        if ok:
            for (item_ok, _), entry in zip(value, entries):
                if item_ok and entry["name"] not in self.names:
                    self.names.append(entry["name"])

    @rule(poison=st.booleans(), atomic=st.booleans(),
          i=st.sampled_from(INT_VALUES))
    def bulk_set(self, poison, atomic, i):
        if not self.names:
            return
        items = [
            {"name": name, "attributes": {"a_int": i}}
            for name in self.names[:3]
        ]
        if poison:
            items.insert(1, {"name": "no-such-file", "attributes": {"a_int": i}})
        self._both(lambda c: c.bulk_set_attributes(items, atomic=atomic))

    @rule()
    def warm_queries(self):
        # Populate cache entries so later writes have something to
        # invalidate; answers are checked by the invariant right after.
        for query in _queries():
            self.cached.query(query)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def cached_equals_uncached(self):
        for query in _queries():
            got = self.cached.query(query)
            want = self.plain.query(query)
            assert got == want, f"cached {got} != uncached {want}"

    @invariant()
    def per_file_attributes_match(self):
        for name in self.names[-3:]:
            assert self.cached.get_attributes(
                ObjectType.FILE, name
            ) == self.plain.get_attributes(ObjectType.FILE, name)


TestCachedEquivalence = CachedEquivalenceMachine.TestCase
TestCachedEquivalence.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
