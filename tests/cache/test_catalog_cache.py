"""Behavioral tests for the generation-stamped catalog read cache.

The contract under test is the paper's strict consistency (§4): a cached
answer must be indistinguishable from re-running the query — across
single writes, bulk transactions, savepoint rollbacks, runtime
enable/disable, and replication apply.
"""

import pytest

from repro.core import MetadataCatalog, ObjectQuery, ObjectType
from repro.core.errors import DuplicateObjectError
from repro.core.replicated import ReplicatedMCS

pytestmark = pytest.mark.cache


@pytest.fixture
def cat():
    cat = MetadataCatalog()
    cat.define_attribute("exp", "string")
    cat.define_attribute("run", "int")
    cat.create_file("f1", attributes={"exp": "pulsar", "run": 1})
    cat.create_file("f2", attributes={"exp": "pulsar", "run": 2})
    return cat


def _pulsar_query():
    return ObjectQuery().where("exp", "=", "pulsar")


class TestQueryCache:
    def test_repeat_query_hits(self, cat):
        first = cat.query(_pulsar_query())
        before = cat.cache.stats()["query"]["hits"]
        second = cat.query(_pulsar_query())
        assert second == first == ["f1", "f2"]
        assert cat.cache.stats()["query"]["hits"] == before + 1

    def test_committed_write_invalidates(self, cat):
        assert cat.query(_pulsar_query()) == ["f1", "f2"]
        cat.query(_pulsar_query())  # warm: second call is a hit
        cat.create_file("f3", attributes={"exp": "pulsar"})
        assert cat.query(_pulsar_query()) == ["f1", "f2", "f3"]

    def test_delete_invalidates(self, cat):
        cat.query(_pulsar_query())
        cat.query(_pulsar_query())
        cat.delete_file("f1")
        assert cat.query(_pulsar_query()) == ["f2"]

    def test_attribute_change_invalidates(self, cat):
        cat.query(_pulsar_query())
        cat.set_attributes(ObjectType.FILE, "f2", {"exp": "burst"})
        assert cat.query(_pulsar_query()) == ["f1"]

    def test_unrelated_table_write_keeps_entry_valid(self, cat):
        cat.query(_pulsar_query())
        before = cat.cache.stats()["query"]["hits"]
        # Annotations live in their own table; the query result does not
        # depend on it, so the entry must survive.
        cat.annotate(ObjectType.FILE, "f1", "still cached", creator="t")
        cat.query(_pulsar_query())
        assert cat.cache.stats()["query"]["hits"] == before + 1


class TestAttrDefAndObjectCaches:
    def test_attr_def_cache_hits_and_invalidates(self, cat):
        cat.get_attribute_def("exp")
        before = cat.cache.stats()["attr_def"]["hits"]
        assert cat.get_attribute_def("exp").name == "exp"
        assert cat.cache.stats()["attr_def"]["hits"] == before + 1
        # A schema write bumps attribute_def; next read must re-miss.
        cat.define_attribute("fresh", "float")
        misses = cat.cache.stats()["attr_def"]["misses"]
        assert cat.get_attribute_def("exp").value_type.value == "string"
        assert cat.cache.stats()["attr_def"]["misses"] == misses + 1

    def test_object_cache_survives_delete_recreate(self, cat):
        # Warm the name -> id mapping, then delete and recreate the file;
        # the stale id must not resurface.
        cat.set_attributes(ObjectType.FILE, "f1", {"run": 7})
        cat.delete_file("f1")
        cat.create_file("f1", attributes={"exp": "burst"})
        cat.set_attributes(ObjectType.FILE, "f1", {"run": 9})
        assert cat.get_attributes(ObjectType.FILE, "f1") == {
            "exp": "burst", "run": 9,
        }


class TestEnabledFlag:
    def test_disabled_catalog_never_hits(self):
        cat = MetadataCatalog(cache=False)
        cat.define_attribute("exp", "string")
        cat.create_file("f1", attributes={"exp": "x"})
        q = ObjectQuery().where("exp", "=", "x")
        assert cat.query(q) == ["f1"]
        assert cat.query(q) == ["f1"]
        stats = cat.cache.stats()
        assert stats["enabled"] is False
        assert stats["query"]["hits"] == 0
        assert stats["query"]["bypasses"] >= 2

    def test_runtime_toggle_revalidates(self, cat):
        cat.query(_pulsar_query())
        cat.cache.enabled = False
        cat.create_file("f3", attributes={"exp": "pulsar"})
        assert cat.query(_pulsar_query()) == ["f1", "f2", "f3"]
        cat.cache.enabled = True
        # The pre-toggle entry is stale; generations catch it.
        assert cat.query(_pulsar_query()) == ["f1", "f2", "f3"]


class TestTransactionSemantics:
    def test_mid_transaction_reads_bypass_and_rollback_leaves_no_trace(self, cat):
        baseline = cat.query(_pulsar_query())
        conn = cat._conn
        conn.begin()
        try:
            conn.lock_tables(
                read=("logical_collection", "attribute_def"),
                write=("logical_file", "attribute_value"),
            )
            cat.create_file("txn-file", attributes={"exp": "pulsar"})
            bypasses = cat.cache.stats()["query"]["bypasses"]
            # The transaction sees its own uncommitted write...
            assert cat.query(_pulsar_query()) == ["f1", "f2", "txn-file"]
            # ...via a bypass, never through the shared cache.
            assert cat.cache.stats()["query"]["bypasses"] == bypasses + 1
        finally:
            conn.rollback()
        assert cat.query(_pulsar_query()) == baseline

    def test_atomic_bulk_failure_publishes_nothing(self, cat):
        cat.query(_pulsar_query())
        gen_before = cat.db.generations.get("logical_file")
        hits_before = cat.cache.stats()["query"]["hits"]
        with pytest.raises(DuplicateObjectError):
            cat.bulk_create_files(
                [
                    {"name": "new-a", "attributes": {"exp": "pulsar"}},
                    {"name": "f1"},  # duplicate: poisons the batch
                ],
                atomic=True,
            )
        assert cat.db.generations.get("logical_file") == gen_before
        assert cat.query(_pulsar_query()) == ["f1", "f2"]
        assert cat.cache.stats()["query"]["hits"] == hits_before + 1

    def test_savepoint_rollback_publishes_no_invalidations(self, cat):
        cat.query(_pulsar_query())
        gen_before = cat.db.generations.get("logical_file")
        outcomes = cat.bulk_create_files(
            [{"name": "f1"}, {"name": "f2"}],  # every item a duplicate
            atomic=False,
        )
        assert [ok for ok, _ in outcomes] == [False, False]
        # All work was reverted via savepoints; the commit carries no
        # records for logical_file, so no invalidation is published.
        assert cat.db.generations.get("logical_file") == gen_before
        hits_before = cat.cache.stats()["query"]["hits"]
        assert cat.query(_pulsar_query()) == ["f1", "f2"]
        assert cat.cache.stats()["query"]["hits"] == hits_before + 1

    def test_partial_savepoint_rollback_publishes_survivors(self, cat):
        cat.query(_pulsar_query())
        outcomes = cat.bulk_create_files(
            [
                {"name": "f1"},  # duplicate: rolled back
                {"name": "f3", "attributes": {"exp": "pulsar"}},  # survives
            ],
            atomic=False,
        )
        assert [ok for ok, _ in outcomes] == [False, True]
        assert cat.query(_pulsar_query()) == ["f1", "f2", "f3"]


class TestReplicaInvalidation:
    def test_replica_cache_invalidated_on_apply(self):
        cluster = ReplicatedMCS(replicas=1, synchronous=True)
        try:
            writer = cluster.write_client(caller="w")
            reader = cluster.replica_client(0, caller="r")
            writer.define_attribute("k", "int")
            writer.create_logical_file("f1", attributes={"k": 1})
            q = ObjectQuery().where("k", "=", 1)
            assert reader.query(q) == ["f1"]
            assert reader.query(q) == ["f1"]  # warm the replica cache
            writer.create_logical_file("f2", attributes={"k": 1})
            # Synchronous apply bumped the replica's generations.
            assert reader.query(q) == ["f1", "f2"]
        finally:
            cluster.close()


class TestStatsSurfaces:
    def test_cache_stats_shape(self, cat):
        cat.query(_pulsar_query())
        stats = cat.cache.stats()
        assert stats["enabled"] is True
        for name in ("attr_def", "object", "query"):
            section = stats[name]
            assert set(section) == {
                "hits", "misses", "bypasses", "hit_ratio", "entries",
                "evictions",
            }
        assert stats["query"]["entries"] >= 1

    def test_op_stats_exposes_cache_section(self, cat):
        from repro.core.service import MCSService

        service = MCSService(cat)
        stats = service.handle("stats", {"caller": "t"})
        assert stats["cache"]["enabled"] is True
        assert "query" in stats["cache"]

    def test_metrics_families_registered(self, cat):
        from repro.obs.metrics import get_registry

        cat.query(_pulsar_query())
        cat.query(_pulsar_query())
        snapshot = get_registry().snapshot()
        assert "mcs_cache_requests_total" in snapshot
        assert "mcs_cache_hit_ratio" in snapshot
        assert "mcs_cache_invalidations_total" in snapshot
