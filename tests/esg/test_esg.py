"""Tests for the ESG integration (Dublin Core, netCDF XML, shredder)."""

import datetime as dt

import pytest

from repro.core import MCSClient, MCSService, ObjectQuery
from repro.esg import (
    DUBLIN_CORE_ELEMENTS,
    DatasetMetadata,
    ESGShredder,
    VariableMetadata,
    generate_dataset,
    register_dublin_core,
)
from repro.esg.dublincore import dc_attribute


@pytest.fixture
def client():
    return MCSClient.in_process(MCSService(), caller="esg-loader")


class TestDublinCore:
    def test_fifteen_elements(self):
        assert len(DUBLIN_CORE_ELEMENTS) == 15

    def test_registration_idempotent(self, client):
        assert register_dublin_core(client) == 15
        assert register_dublin_core(client) == 0

    def test_date_element_is_date_typed(self, client):
        register_dublin_core(client)
        defs = {d.name: d.value_type.value for d in client.list_attribute_defs()}
        assert defs["dc_date"] == "date"
        assert defs["dc_title"] == "string"

    def test_unknown_element_rejected(self):
        with pytest.raises(ValueError):
            dc_attribute("nonsense")


class TestNetcdfXml:
    def test_round_trip(self):
        dataset = DatasetMetadata(
            "esg.test.1",
            global_attributes={
                "model": "CCSM2",
                "run_number": 7,
                "resolution_degrees": 1.0,
                "start_date": dt.date(1990, 1, 1),
            },
            variables=[
                VariableMetadata("TS", "surface_temperature", "K",
                                 {"cell_methods": "time: mean"})
            ],
        )
        restored = DatasetMetadata.from_xml(dataset.to_xml())
        assert restored.dataset_id == "esg.test.1"
        assert restored.global_attributes == dataset.global_attributes
        assert restored.variables[0].units == "K"
        assert restored.variables[0].attributes == {"cell_methods": "time: mean"}

    def test_generator_deterministic(self):
        a = generate_dataset(5, seed=1)
        b = generate_dataset(5, seed=1)
        assert a.to_xml() == b.to_xml()
        c = generate_dataset(6, seed=1)
        assert c.dataset_id != a.dataset_id

    def test_generator_fields_present(self):
        dataset = generate_dataset(0)
        assert {"model", "experiment", "institution", "start_date"} <= set(
            dataset.global_attributes
        )
        assert dataset.variables


class TestShredder:
    def test_shred_registers_file_with_attributes(self, client):
        shredder = ESGShredder(client)
        dataset = generate_dataset(1)
        name = shredder.shred(dataset)
        attrs = client.get_attributes("file", name)
        assert attrs["esg_model"] == dataset.global_attributes["model"]
        assert attrs["dc_title"] == dataset.dataset_id
        for variable in dataset.variables:
            assert attrs[f"var_{variable.name}"] == 1

    def test_shred_from_xml_bytes(self, client):
        shredder = ESGShredder(client)
        name = shredder.shred_xml(generate_dataset(2).to_xml())
        assert client.get_logical_file(name)["data_type"] == "netcdf"

    def test_collection_per_model(self, client):
        shredder = ESGShredder(client)
        dataset = generate_dataset(3)
        name = shredder.shred(dataset)
        model = dataset.global_attributes["model"]
        assert name in client.list_collection(f"esg-{model}")

    def test_reshred_updates(self, client):
        shredder = ESGShredder(client)
        dataset = generate_dataset(4)
        shredder.shred(dataset)
        dataset.global_attributes["model"] = "PCM"
        shredder.shred(dataset)  # no DuplicateObjectError escape
        attrs = client.get_attributes("file", dataset.dataset_id)
        assert attrs["esg_model"] == "PCM"

    def test_discovery_by_shredded_attributes(self, client):
        shredder = ESGShredder(client)
        names = shredder.shred_many([generate_dataset(i) for i in range(25)])
        target = generate_dataset(7)
        matches = client.query_files_by_attributes(
            {"esg_model": target.global_attributes["model"],
             "esg_experiment": target.global_attributes["experiment"]}
        )
        assert target.dataset_id in matches
        assert set(matches) <= set(names)

    def test_numeric_range_discovery(self, client):
        shredder = ESGShredder(client)
        shredder.shred_many([generate_dataset(i) for i in range(25)])
        q = ObjectQuery().where("esg_years_simulated", ">=", 50)
        results = client.query(q)
        for name in results:
            attrs = client.get_attributes("file", name)
            assert attrs["esg_years_simulated"] >= 50

    def test_without_dublin_core(self, client):
        shredder = ESGShredder(client, use_dublin_core=False)
        name = shredder.shred(generate_dataset(8))
        attrs = client.get_attributes("file", name)
        assert not any(k.startswith("dc_") for k in attrs)
