"""Tests for the benchmark harness itself (small, fast configurations)."""

import pytest

from repro.bench import BenchConfig, BenchEnvironment, run_closed_loop
from repro.bench.hosts import run_host_groups
from repro.bench.report import format_series, shape_checks
from repro.bench.timing import RateResult, count_until_stopped, run_workers
from repro.workloads import PopulationSpec


@pytest.fixture(scope="module")
def env():
    environment = BenchEnvironment(
        PopulationSpec(total_files=60, files_per_collection=20, value_cardinality=5)
    )
    yield environment
    environment.close()


class TestTiming:
    def test_run_workers_counts(self):
        def worker(stop):
            return count_until_stopped(lambda i: None, stop)

        result = run_workers([worker, worker], duration=0.05)
        assert result.workers == 2
        assert result.operations > 0
        assert result.rate > 0

    def test_rate_result_zero_seconds(self):
        assert RateResult(operations=10, seconds=0, workers=1).rate == 0.0


class TestDrivers:
    def test_direct_simple_queries(self, env):
        result = run_closed_loop(
            env, "direct", env.simple_query_op, threads=2, duration=0.05
        )
        assert result.operations > 0
        assert result.errors == 0

    def test_soap_simple_queries(self, env):
        result = run_closed_loop(
            env, "soap", env.simple_query_op, threads=2, duration=0.05
        )
        assert result.operations > 0

    def test_add_delete_keeps_size(self, env):
        before = env.catalog.stats()["files"]
        run_closed_loop(env, "direct", env.add_delete_op, threads=2, duration=0.05)
        assert env.catalog.stats()["files"] == before

    def test_complex_query_op(self, env):
        result = run_closed_loop(
            env, "direct",
            lambda c, w: env.complex_query_op(c, w, num_attributes=3),
            threads=1, duration=0.05,
        )
        assert result.operations > 0

    def test_host_groups(self, env):
        result = run_host_groups(
            env, "direct", env.simple_query_op, hosts=2,
            threads_per_host=2, duration=0.05,
        )
        assert result.workers == 4
        assert result.operations > 0

    def test_unknown_mode(self, env):
        with pytest.raises(ValueError):
            env.make_client("carrier-pigeon")

    def test_direct_faster_than_soap(self, env):
        direct = run_closed_loop(
            env, "direct", env.simple_query_op, threads=2, duration=0.1
        )
        soap = run_closed_loop(
            env, "soap", env.simple_query_op, threads=2, duration=0.1
        )
        # The paper's central observation: the web service layer costs a
        # large constant factor.
        assert direct.rate > soap.rate


class TestConfig:
    def test_default_sizes_ratio(self):
        config = BenchConfig()
        a, b, c = config.db_sizes
        assert b == 10 * a and c == 50 * a

    def test_spec_layout(self):
        config = BenchConfig()
        spec = config.spec(400)
        assert spec.total_files == 400
        assert spec.files_per_collection == config.files_per_collection


class TestReport:
    def test_format_series(self):
        rows = [
            {"db_size": 100, "mode": "direct", "x": 1, "rate": 50.0},
            {"db_size": 100, "mode": "soap", "x": 1, "rate": 10.0},
            {"db_size": 100, "mode": "direct", "x": 2, "rate": 90.0},
        ]
        text = format_series("Figure X", "threads", rows)
        assert "Figure X" in text
        assert "100/direct" in text
        assert "50.0" in text
        assert "-" in text  # missing (2, soap) point

    def test_shape_checks(self):
        rows = [
            {"mode": "direct", "rate": 100.0},
            {"mode": "soap", "rate": 20.0},
        ]
        checks = shape_checks(rows)
        assert checks["direct_over_soap_peak"] == 5.0
