"""Smoke tests for the per-figure sweep runners at tiny scale.

The real measurements live in benchmarks/; these tests only verify that
each sweep produces well-formed rows so a broken harness fails fast in
the unit suite rather than midway through a long benchmark run.
"""

import pytest

from repro.bench import (
    BenchConfig,
    sweep_figure5,
    sweep_figure5_batched,
    sweep_figure6,
    sweep_figure7,
    sweep_figure8,
    sweep_figure8_batched,
    sweep_figure9,
    sweep_figure10,
    sweep_figure11,
)
from repro.bench.report import format_series
from repro.bench.sweeps import clear_environments, get_environment


@pytest.fixture(scope="module")
def tiny_config():
    config = BenchConfig(
        db_sizes=(60,),
        thread_counts=(1, 2),
        host_counts=(1, 2),
        duration=0.05,
        files_per_collection=20,
        value_cardinality=5,
        soap_latency_s=0.0,
    )
    yield config
    clear_environments()


def check_rows(rows, x_values):
    assert rows, "sweep returned nothing"
    for row in rows:
        assert set(row) >= {"db_size", "mode", "x", "rate", "operations"}
        assert row["rate"] >= 0
    assert {row["x"] for row in rows} >= set(x_values)


class TestThreadSweeps:
    def test_figure5(self, tiny_config):
        check_rows(sweep_figure5(tiny_config), (1, 2))

    def test_figure6(self, tiny_config):
        rows = sweep_figure6(tiny_config)
        check_rows(rows, (1, 2))
        assert {row["mode"] for row in rows} == {"direct", "soap"}

    def test_figure7(self, tiny_config):
        check_rows(sweep_figure7(tiny_config), (1, 2))


class TestHostSweeps:
    def test_figure8(self, tiny_config):
        check_rows(sweep_figure8(tiny_config), (1, 2))

    def test_figure9_extends_host_counts(self, tiny_config):
        rows = sweep_figure9(tiny_config)
        assert {row["x"] for row in rows} >= {1, 2, 8, 10}

    def test_figure10(self, tiny_config):
        check_rows(sweep_figure10(tiny_config), (1, 2))


class TestBatchedSweeps:
    def test_figure5_batched_covers_batch_axis(self, tiny_config):
        rows = sweep_figure5_batched(tiny_config, modes=("direct",), threads=2)
        check_rows(rows, tiny_config.batch_sizes)
        # Rates are per-operation, so batch-32 iterations must report
        # operations counts, not iteration counts.
        for row in rows:
            assert row["operations"] % row["x"] == 0

    def test_figure8_batched_covers_batch_axis(self, tiny_config):
        rows = sweep_figure8_batched(tiny_config, hosts=2, modes=("direct",))
        check_rows(rows, tiny_config.batch_sizes)

    def test_soap_batching_amortizes_round_trips(self):
        # With a fixed per-round-trip latency, a batch of 32 pays one
        # round trip where 32 single calls pay 32.  At 20 ms per round
        # trip the wire cost dominates server-side per-item work, so the
        # paper-style >= 3x speedup target is deterministic here.
        config = BenchConfig(
            db_sizes=(60,),
            thread_counts=(1,),
            host_counts=(1,),
            duration=0.5,
            files_per_collection=20,
            value_cardinality=5,
            soap_latency_s=0.02,
            batch_sizes=(1, 32),
        )
        try:
            rows = sweep_figure5_batched(config, modes=("soap",), threads=2)
        finally:
            clear_environments()
        rate = {row["x"]: row["rate"] for row in rows}
        assert rate[1] > 0
        assert rate[32] >= 3 * rate[1], (
            f"batch-32 rate {rate[32]:.1f} < 3x batch-1 rate {rate[1]:.1f}"
        )


class TestAttributeSweep:
    def test_figure11(self, tiny_config):
        rows = sweep_figure11(tiny_config, attribute_counts=(1, 3))
        check_rows(rows, (1, 3))
        assert all(row["mode"] == "direct" for row in rows)


class TestEnvironmentCache:
    def test_environment_reused_per_size(self, tiny_config):
        a = get_environment(tiny_config, 60)
        b = get_environment(tiny_config, 60)
        assert a is b

    def test_rows_render(self, tiny_config):
        rows = sweep_figure11(tiny_config, attribute_counts=(1,))
        text = format_series("t", "attrs", rows)
        assert "attrs" in text
