"""Unit tests for column types and coercion."""

import datetime as dt

import pytest

from repro.db.errors import TypeMismatchError
from repro.db.types import ColumnType, coerce, format_value, sort_key


class TestFromName:
    def test_canonical_names(self):
        assert ColumnType.from_name("INTEGER") is ColumnType.INTEGER
        assert ColumnType.from_name("string") is ColumnType.STRING

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("INT", ColumnType.INTEGER),
            ("BIGINT", ColumnType.INTEGER),
            ("DOUBLE", ColumnType.FLOAT),
            ("REAL", ColumnType.FLOAT),
            ("TEXT", ColumnType.STRING),
            ("VARCHAR", ColumnType.STRING),
            ("BOOL", ColumnType.BOOLEAN),
            ("TIMESTAMP", ColumnType.DATETIME),
        ],
    )
    def test_aliases(self, alias, expected):
        assert ColumnType.from_name(alias) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.from_name("BLOB9")


class TestCoerceInteger:
    def test_int_passthrough(self):
        assert coerce(5, ColumnType.INTEGER) == 5

    def test_integral_float(self):
        assert coerce(5.0, ColumnType.INTEGER) == 5

    def test_nonintegral_float_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(5.5, ColumnType.INTEGER)

    def test_string_parse(self):
        assert coerce(" 42 ", ColumnType.INTEGER) == 42

    def test_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("abc", ColumnType.INTEGER)

    def test_bool_becomes_int(self):
        assert coerce(True, ColumnType.INTEGER) == 1

    def test_none_passthrough(self):
        assert coerce(None, ColumnType.INTEGER) is None


class TestCoerceFloat:
    def test_int(self):
        assert coerce(3, ColumnType.FLOAT) == 3.0

    def test_string(self):
        assert coerce("2.5", ColumnType.FLOAT) == 2.5

    def test_bad(self):
        with pytest.raises(TypeMismatchError):
            coerce("x", ColumnType.FLOAT)


class TestCoerceString:
    def test_passthrough(self):
        assert coerce("hi", ColumnType.STRING) == "hi"

    def test_int(self):
        assert coerce(7, ColumnType.STRING) == "7"

    def test_date(self):
        assert coerce(dt.date(2003, 11, 15), ColumnType.STRING) == "2003-11-15"


class TestCoerceBoolean:
    @pytest.mark.parametrize("value", ["true", "T", "1", "yes", 1, True])
    def test_truthy(self, value):
        assert coerce(value, ColumnType.BOOLEAN) is True

    @pytest.mark.parametrize("value", ["false", "F", "0", "no", 0, False])
    def test_falsy(self, value):
        assert coerce(value, ColumnType.BOOLEAN) is False

    def test_bad_int(self):
        with pytest.raises(TypeMismatchError):
            coerce(2, ColumnType.BOOLEAN)

    def test_bad_string(self):
        with pytest.raises(TypeMismatchError):
            coerce("maybe", ColumnType.BOOLEAN)


class TestCoerceTemporal:
    def test_date_from_string(self):
        assert coerce("2003-11-15", ColumnType.DATE) == dt.date(2003, 11, 15)

    def test_date_from_datetime(self):
        assert coerce(dt.datetime(2003, 11, 15, 10), ColumnType.DATE) == dt.date(2003, 11, 15)

    def test_time_from_string(self):
        assert coerce("10:30:00", ColumnType.TIME) == dt.time(10, 30)

    def test_datetime_both_formats(self):
        expected = dt.datetime(2003, 11, 15, 10, 30, 0)
        assert coerce("2003-11-15 10:30:00", ColumnType.DATETIME) == expected
        assert coerce("2003-11-15T10:30:00", ColumnType.DATETIME) == expected

    def test_datetime_from_date(self):
        assert coerce(dt.date(2003, 1, 2), ColumnType.DATETIME) == dt.datetime(2003, 1, 2)

    def test_bad_date(self):
        with pytest.raises(TypeMismatchError):
            coerce("15/11/2003", ColumnType.DATE)


class TestFormatValue:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_bool(self):
        assert format_value(True) == "true"

    def test_datetime(self):
        assert format_value(dt.datetime(2003, 11, 15, 1, 2, 3)) == "2003-11-15 01:02:03"

    def test_round_trip_date(self):
        d = dt.date(2003, 11, 15)
        assert coerce(format_value(d), ColumnType.DATE) == d


class TestSortKey:
    def test_null_sorts_first(self):
        assert sort_key(None) < sort_key(0)
        assert sort_key(None) < sort_key("")

    def test_numbers_before_strings(self):
        assert sort_key(10**9) < sort_key("a")

    def test_mixed_int_float(self):
        assert sort_key(1) < sort_key(1.5) < sort_key(2)

    def test_strings_natural(self):
        assert sort_key("a") < sort_key("b")

    def test_dates_comparable(self):
        assert sort_key(dt.date(2003, 1, 1)) < sort_key(dt.date(2004, 1, 1))

    def test_total_order_on_mixture(self):
        values = ["z", 3, None, 2.5, dt.date(2003, 1, 1), True, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None  # NULL first
        # Sorting must not raise and must be deterministic
        assert sorted(values, key=sort_key) == ordered
