"""Tests for EXPLAIN plan descriptions."""

import pytest

from repro.db import Database
from repro.db.errors import SQLSyntaxError


@pytest.fixture
def conn():
    db = Database()
    c = db.connect()
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a STRING, b INTEGER)")
    c.execute("CREATE INDEX t_a ON t (a)")
    c.execute("CREATE TABLE u (tid INTEGER, v STRING)")
    c.execute("CREATE INDEX u_tid ON u (tid)")
    return c


def lines(conn, sql, params=()):
    return [row[0] for row in conn.execute(sql, params)]


class TestExplain:
    def test_index_lookup_shown(self, conn):
        plan = lines(conn, "EXPLAIN SELECT b FROM t WHERE a = 'x'")
        assert plan[0].startswith("INDEX LOOKUP t")
        assert "t_a" in plan[0]

    def test_seq_scan_shown(self, conn):
        plan = lines(conn, "EXPLAIN SELECT a FROM t WHERE b = 1")
        assert plan[0].startswith("SEQ SCAN t")
        assert "FILTER" in plan[0]

    def test_range_scan_shown(self, conn):
        plan = lines(conn, "EXPLAIN SELECT a FROM t WHERE id BETWEEN 2 AND 9")
        assert "INDEX RANGE SCAN" in plan[0]

    def test_join_strategy_shown(self, conn):
        plan = lines(
            conn, "EXPLAIN SELECT u.v FROM t JOIN u ON u.tid = t.id"
        )
        assert any("INDEX NESTED LOOP JOIN" in line for line in plan)

    def test_left_join_label(self, conn):
        plan = lines(
            conn,
            "EXPLAIN SELECT t.a FROM t LEFT JOIN u ON u.tid = t.id "
            "WHERE u.v IS NULL",
        )
        assert any(line.startswith("LEFT INDEX NESTED LOOP") for line in plan)
        assert any("POST-FILTER" in line for line in plan)

    def test_aggregate_and_sort_shown(self, conn):
        plan = lines(
            conn,
            "EXPLAIN SELECT a, COUNT(*) c FROM t GROUP BY a "
            "HAVING c > 1 ORDER BY a LIMIT 3",
        )
        joined = "\n".join(plan)
        assert "AGGREGATE BY" in joined
        assert "HAVING" in joined
        assert "SORT BY" in joined
        assert "LIMIT 3" in joined

    def test_parameters_bound(self, conn):
        plan = lines(conn, "EXPLAIN SELECT b FROM t WHERE a = ?", ("val",))
        assert "'val'" in plan[0] or "val" in plan[0]

    def test_projection_listed(self, conn):
        plan = lines(conn, "EXPLAIN SELECT a, b FROM t")
        assert plan[-1] == "PROJECT a, b"

    def test_explain_non_select_rejected(self, conn):
        with pytest.raises(SQLSyntaxError):
            conn.execute("EXPLAIN DELETE FROM t")

    def test_explain_does_not_mutate(self, conn):
        conn.execute("INSERT INTO t (id, a, b) VALUES (1, 'x', 1)")
        conn.execute("EXPLAIN SELECT * FROM t")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1
