"""Tests for the native XML database and its XPath engine."""

import xml.etree.ElementTree as ET

import pytest

from repro.xmldb import XMLDatabase, XPath, XPathError


DOC = b"""
<dataset id="d1">
  <globalAttributes>
    <attribute name="model" type="string">CCSM2</attribute>
    <attribute name="runs" type="int">7</attribute>
  </globalAttributes>
  <variables>
    <variable name="TS" units="K"><attribute name="cm">time: mean</attribute></variable>
    <variable name="PS" units="Pa"/>
  </variables>
</dataset>
"""


def root():
    return ET.fromstring(DOC)


class TestXPathParsing:
    def test_simple_path(self):
        assert len(XPath("/dataset/variables/variable").steps) == 3

    def test_requires_leading_slash(self):
        with pytest.raises(XPathError):
            XPath("dataset/variable")

    def test_empty_rejected(self):
        with pytest.raises(XPathError):
            XPath("/")

    def test_bad_predicate(self):
        with pytest.raises(XPathError):
            XPath("/a[=]")

    def test_unclosed_predicate(self):
        with pytest.raises(XPathError):
            XPath("/a[@b")


class TestXPathSelection:
    def test_child_steps(self):
        matches = XPath("/dataset/variables/variable").select(root())
        assert [m.get("name") for m in matches] == ["TS", "PS"]

    def test_wildcard(self):
        matches = XPath("/dataset/*").select(root())
        assert [m.tag for m in matches] == ["globalAttributes", "variables"]

    def test_descendant_axis(self):
        matches = XPath("//attribute").select(root())
        assert len(matches) == 3

    def test_attr_eq_predicate(self):
        matches = XPath("//variable[@name='TS']").select(root())
        assert len(matches) == 1 and matches[0].get("units") == "K"

    def test_attr_ne_predicate(self):
        matches = XPath("//variable[@name!='TS']").select(root())
        assert [m.get("name") for m in matches] == ["PS"]

    def test_attr_exists_predicate(self):
        matches = XPath("//variable[@units]").select(root())
        assert len(matches) == 2

    def test_own_text_predicate(self):
        matches = XPath("//attribute[text()='CCSM2']").select(root())
        assert len(matches) == 1 and matches[0].get("name") == "model"

    def test_child_text_predicate(self):
        matches = XPath("/dataset/globalAttributes[attribute='CCSM2']").select(root())
        assert len(matches) == 1

    def test_position_predicate(self):
        matches = XPath("/dataset/variables/variable[2]").select(root())
        assert [m.get("name") for m in matches] == ["PS"]

    def test_stacked_predicates(self):
        matches = XPath("//attribute[@name='model'][text()='CCSM2']").select(root())
        assert len(matches) == 1
        assert XPath("//attribute[@name='model'][text()='PCM']").select(root()) == []

    def test_no_match(self):
        assert XPath("/nonexistent").select(root()) == []
        assert not XPath("/nonexistent").matches(root())


class TestXMLDatabase:
    def make(self, **kwargs):
        db = XMLDatabase(**kwargs)
        db.store("d1", DOC)
        db.store(
            "d2",
            b"<dataset id='d2'><globalAttributes>"
            b"<attribute name='model'>PCM</attribute>"
            b"</globalAttributes></dataset>",
        )
        return db

    def test_store_get_delete(self):
        db = self.make()
        assert len(db) == 2
        assert db.get("d1").tag == "dataset"
        assert db.delete("d1") is True
        assert db.delete("d1") is False
        assert db.get("d1") is None

    def test_malformed_document_rejected(self):
        db = XMLDatabase()
        with pytest.raises(ValueError):
            db.store("bad", b"<unclosed")

    def test_replace_document(self):
        db = self.make()
        db.store("d1", b"<dataset id='d1'/>")
        assert len(db.get("d1")) == 0

    def test_query_pairs(self):
        db = self.make()
        hits = db.query("//attribute[@name='model']")
        assert {name for name, _ in hits} == {"d1", "d2"}

    def test_query_names(self):
        db = self.make()
        assert db.query_names("//attribute[text()='CCSM2']") == ["d1"]
        assert db.query_names("//attribute[text()='PCM']") == ["d2"]

    def test_conjunctive_query(self):
        db = self.make()
        names = db.query_names_all(
            ["//attribute[text()='CCSM2']", "//variable[@name='TS']"]
        )
        assert names == ["d1"]
        assert db.query_names_all(
            ["//attribute[text()='PCM']", "//variable[@name='TS']"]
        ) == []

    def test_attribute_index_candidates(self):
        db = self.make(index_attributes=("name",))
        # The index narrows candidates without changing results.
        assert db.query_names("//attribute[@name='model'][text()='PCM']") == ["d2"]
        path = XPath("//attribute[@name='model']")
        assert set(db._candidates(path)) == {"d1", "d2"}

    def test_index_updated_on_delete_and_replace(self):
        db = self.make(index_attributes=("name",))
        db.delete("d2")
        assert db.query_names("//attribute[@name='model']") == ["d1"]
        db.store("d1", b"<dataset/>")
        assert db.query_names("//attribute[@name='model']") == []


class TestXmlMetadataBackend:
    def test_mirror_of_relational_semantics(self):
        import datetime as dt

        from repro.core.errors import DuplicateObjectError, ObjectNotFoundError
        from repro.core.xmlbackend import XmlMetadataBackend

        backend = XmlMetadataBackend()
        backend.create_file(
            "f1", data_type="binary", collection="c1",
            attributes={"s": "x", "i": 3, "f": 2.5, "d": dt.date(2003, 1, 1)},
        )
        assert backend.get_file("f1")["data_type"] == "binary"
        assert backend.get_attributes("f1") == {
            "s": "x", "i": 3, "f": 2.5, "d": dt.date(2003, 1, 1)
        }
        assert backend.query_files_by_attributes({"s": "x", "i": 3}) == ["f1"]
        assert backend.query_files_by_attributes({"s": "x", "i": 4}) == []
        assert backend.simple_query("f1") == ["f1"]
        with pytest.raises(DuplicateObjectError):
            backend.create_file("f1")
        backend.delete_file("f1")
        with pytest.raises(ObjectNotFoundError):
            backend.get_file("f1")
        with pytest.raises(ObjectNotFoundError):
            backend.delete_file("f1")

    def test_agreement_with_relational_backend(self):
        """Both backends answer the same workload queries identically."""
        from repro.core import MetadataCatalog
        from repro.core.xmlbackend import XmlMetadataBackend
        from repro.workloads import (
            PopulationSpec,
            QueryWorkload,
            attribute_values_for,
            populate_catalog,
        )

        spec = PopulationSpec(total_files=60, files_per_collection=20,
                              value_cardinality=5)
        relational = MetadataCatalog()
        populate_catalog(relational, spec)
        xml = XmlMetadataBackend()
        for index in range(spec.total_files):
            xml.create_file(
                spec.file_name(index),
                data_type="binary",
                attributes=attribute_values_for(index, spec),
            )
        workload = QueryWorkload(spec, seed=11)
        for _ in range(10):
            conditions = workload.complex_query_conditions(10)
            assert sorted(relational.query_files_by_attributes(conditions)) == \
                   xml.query_files_by_attributes(conditions)
