"""Durability tests: snapshot, WAL replay, crash recovery."""

import datetime as dt
import json
import os

import pytest

from repro.db import Database
from repro.db.wal import (
    WAL_NAME,
    decode_row,
    decode_value,
    encode_row,
    encode_value,
    load_snapshot,
    replay_wal,
    table_def_from_dict,
    table_def_to_dict,
    write_snapshot,
)
from repro.db.schema import Column, TableDef
from repro.db.storage import Catalog
from repro.db.types import ColumnType


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            2.5,
            "text",
            True,
            dt.date(2003, 11, 15),
            dt.time(10, 30, 5),
            dt.datetime(2003, 11, 15, 10, 30, 5, 123),
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_row_round_trip(self):
        row = (1, "x", dt.date(2003, 1, 1), None)
        assert decode_row(encode_row(row)) == row


class TestSchemaCodec:
    def test_table_def_round_trip(self):
        definition = TableDef(
            "t",
            [
                Column("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
                Column("v", ColumnType.STRING, default="d"),
            ],
            primary_key=("id",),
            unique=[("v",)],
        )
        restored = table_def_from_dict(table_def_to_dict(definition))
        assert restored.name == "t"
        assert restored.primary_key == ("id",)
        assert restored.columns[1].default == "d"
        assert restored.columns[0].autoincrement


class TestSnapshot:
    def test_snapshot_round_trip(self, tmp_path):
        catalog = Catalog()
        table = catalog.create_table(
            TableDef("t", [Column("a", ColumnType.INTEGER)])
        )
        table.insert({"a": 1})
        table.insert({"a": 2})
        write_snapshot(catalog, str(tmp_path))
        restored = Catalog()
        assert load_snapshot(restored, str(tmp_path))
        assert sorted(r[0] for r in restored.table("t").rows.values()) == [1, 2]

    def test_load_missing_returns_false(self, tmp_path):
        assert not load_snapshot(Catalog(), str(tmp_path))

    def test_user_indexes_restored(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (a INTEGER)")
        c.execute("CREATE INDEX i ON t (a)")
        c.execute("INSERT INTO t (a) VALUES (5)")
        db.checkpoint()
        db.close()
        db2 = Database(directory=str(tmp_path))
        table = db2.catalog.table("t")
        assert "i" in table.indexes
        assert table.indexes["i"].get((5,)) != []


class TestRecovery:
    def test_recover_from_wal_only(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
        c.execute("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
        c.execute("UPDATE t SET v = 'B' WHERE id = 2")
        c.execute("DELETE FROM t WHERE id = 1")
        db.close()
        db2 = Database(directory=str(tmp_path))
        rows = db2.connect().execute("SELECT id, v FROM t").fetchall()
        assert rows == [(2, "B")]

    def test_recover_snapshot_plus_wal(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        c.execute("INSERT INTO t (id) VALUES (1)")
        db.checkpoint()
        c.execute("INSERT INTO t (id) VALUES (2)")
        db.close()
        db2 = Database(directory=str(tmp_path))
        rows = db2.connect().execute("SELECT id FROM t ORDER BY id").fetchall()
        assert rows == [(1,), (2,)]

    def test_uncommitted_txn_not_recovered(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        c.execute("BEGIN")
        c.execute("INSERT INTO t (id) VALUES (1)")
        # No COMMIT: connection dropped (crash); WAL has no records at all
        # because records are only appended at commit time.
        db.close()
        db2 = Database(directory=str(tmp_path))
        assert db2.connect().execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_rolled_back_txn_not_recovered(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        c.execute("BEGIN")
        c.execute("INSERT INTO t (id) VALUES (1)")
        c.execute("ROLLBACK")
        db.close()
        db2 = Database(directory=str(tmp_path))
        assert db2.connect().execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_torn_tail_is_discarded(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        c.execute("INSERT INTO t (id) VALUES (1)")
        db.close()
        # Simulate a crash mid-append: garbage JSON at the tail.
        wal_path = os.path.join(str(tmp_path), WAL_NAME)
        with open(wal_path, "a", encoding="utf-8") as fh:
            fh.write('{"txn": 99, "op": "insert", "table": "t", "rowi')
        db2 = Database(directory=str(tmp_path))
        assert db2.connect().execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_checkpoint_truncates_wal(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        c.execute("INSERT INTO t (id) VALUES (1)")
        db.checkpoint()
        wal_path = os.path.join(str(tmp_path), WAL_NAME)
        assert os.path.getsize(wal_path) == 0
        db.close()

    def test_autoincrement_continues_after_recovery(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v STRING)")
        c.execute("INSERT INTO t (v) VALUES ('a')")
        c.execute("INSERT INTO t (v) VALUES ('b')")
        db.close()
        db2 = Database(directory=str(tmp_path))
        result = db2.connect().execute("INSERT INTO t (v) VALUES ('c')")
        assert result.lastrowid == 3

    def test_ddl_recovered(self, tmp_path):
        db = Database(directory=str(tmp_path))
        c = db.connect()
        c.execute("CREATE TABLE a (x INTEGER)")
        c.execute("CREATE TABLE b (x INTEGER)")
        c.execute("DROP TABLE b")
        db.close()
        db2 = Database(directory=str(tmp_path))
        assert db2.catalog.has_table("a")
        assert not db2.catalog.has_table("b")
