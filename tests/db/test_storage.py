"""Tests for the row heap, constraints and index maintenance."""

import pytest

from repro.db.errors import IntegrityError, SchemaError, TypeMismatchError
from repro.db.schema import Column, ForeignKey, IndexDef, TableDef
from repro.db.storage import Catalog, ForeignKeyEnforcer, Table
from repro.db.types import ColumnType


def users_def():
    return TableDef(
        "users",
        [
            Column("id", ColumnType.INTEGER, autoincrement=True, nullable=False),
            Column("name", ColumnType.STRING, nullable=False),
            Column("age", ColumnType.INTEGER),
        ],
        primary_key=("id",),
        unique=[("name",)],
    )


class TestInsert:
    def test_autoincrement(self):
        table = Table(users_def())
        rid1, row1 = table.insert({"name": "a"})
        rid2, row2 = table.insert({"name": "b"})
        assert row1[0] == 1 and row2[0] == 2

    def test_explicit_id_advances_counter(self):
        table = Table(users_def())
        table.insert({"id": 10, "name": "a"})
        _, row = table.insert({"name": "b"})
        assert row[0] == 11

    def test_not_null_enforced(self):
        table = Table(users_def())
        with pytest.raises(TypeMismatchError):
            table.insert({"age": 5})

    def test_unknown_column_rejected(self):
        table = Table(users_def())
        with pytest.raises(SchemaError):
            table.insert({"name": "a", "oops": 1})

    def test_unique_violation(self):
        table = Table(users_def())
        table.insert({"name": "a"})
        with pytest.raises(IntegrityError):
            table.insert({"name": "a"})

    def test_nulls_never_collide_on_unique(self):
        definition = TableDef(
            "t",
            [Column("a", ColumnType.INTEGER)],
            unique=[("a",)],
        )
        table = Table(definition)
        table.insert({"a": None})
        table.insert({"a": None})  # allowed
        assert len(table) == 2

    def test_default_applied(self):
        definition = TableDef(
            "t", [Column("a", ColumnType.STRING, default="dflt")]
        )
        table = Table(definition)
        _, row = table.insert({})
        assert row[0] == "dflt"


class TestUpdateDelete:
    def test_update_changes_indexes(self):
        table = Table(users_def())
        rid, _ = table.insert({"name": "a", "age": 1})
        table.create_index(IndexDef("by_age", "users", ("age",)))
        table.update(rid, {"age": 2})
        assert table.indexes["by_age"].get((2,)) == [rid]
        assert table.indexes["by_age"].get((1,)) == []

    def test_update_unique_violation(self):
        table = Table(users_def())
        table.insert({"name": "a"})
        rid, _ = table.insert({"name": "b"})
        with pytest.raises(IntegrityError):
            table.update(rid, {"name": "a"})

    def test_update_to_same_value_is_noop(self):
        table = Table(users_def())
        rid, _ = table.insert({"name": "a", "age": 5})
        old, new = table.update(rid, {"age": 5})
        assert old == new

    def test_update_not_null(self):
        table = Table(users_def())
        rid, _ = table.insert({"name": "a"})
        with pytest.raises(IntegrityError):
            table.update(rid, {"name": None})

    def test_delete_removes_from_indexes(self):
        table = Table(users_def())
        rid, _ = table.insert({"name": "a"})
        table.delete(rid)
        assert len(table) == 0
        assert table.indexes[f"__uq_users_0"].get(("a",)) == []

    def test_delete_missing(self):
        table = Table(users_def())
        with pytest.raises(IntegrityError):
            table.delete(99)

    def test_reinsert_after_delete_ok(self):
        table = Table(users_def())
        rid, _ = table.insert({"name": "a"})
        table.delete(rid)
        table.insert({"name": "a"})  # unique key free again


class TestIndexes:
    def test_create_index_backfills(self):
        table = Table(users_def())
        for name in ("x", "y", "z"):
            table.insert({"name": name, "age": 30})
        table.create_index(IndexDef("by_age", "users", ("age",)))
        assert sorted(table.indexes["by_age"].get((30,))) == [1, 2, 3]

    def test_duplicate_index_name(self):
        table = Table(users_def())
        table.create_index(IndexDef("i", "users", ("age",)))
        with pytest.raises(SchemaError):
            table.create_index(IndexDef("i", "users", ("age",)))

    def test_index_unknown_column(self):
        table = Table(users_def())
        with pytest.raises(SchemaError):
            table.create_index(IndexDef("i", "users", ("nope",)))

    def test_drop_index(self):
        table = Table(users_def())
        table.create_index(IndexDef("i", "users", ("age",)))
        table.drop_index("i")
        assert "i" not in table.indexes

    def test_cannot_drop_implicit(self):
        table = Table(users_def())
        with pytest.raises(SchemaError):
            table.drop_index("__pk_users")

    def test_find_index_on_prefix(self):
        table = Table(users_def())
        table.create_index(IndexDef("ab", "users", ("age", "name")))
        assert table.find_index_on(("age",)) == "ab"
        assert table.find_index_on(("age", "name")) == "ab"
        assert table.find_index_on(("name", "age")) is None  # not a leading prefix of ab; __uq covers ("name",) only


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table(users_def())
        assert catalog.has_table("users")
        assert catalog.table("users").name == "users"

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.create_table(users_def())
        with pytest.raises(SchemaError):
            catalog.create_table(users_def())

    def test_missing_table(self):
        with pytest.raises(SchemaError):
            Catalog().table("nope")

    def test_fk_requires_parent(self):
        catalog = Catalog()
        child = TableDef(
            "child",
            [Column("pid", ColumnType.INTEGER)],
            foreign_keys=[ForeignKey(("pid",), "parent", ("id",))],
        )
        with pytest.raises(SchemaError):
            catalog.create_table(child)

    def test_drop_blocked_by_fk(self):
        catalog = Catalog()
        catalog.create_table(users_def())
        child = TableDef(
            "child",
            [Column("uid", ColumnType.INTEGER)],
            foreign_keys=[ForeignKey(("uid",), "users", ("id",))],
        )
        catalog.create_table(child)
        with pytest.raises(SchemaError):
            catalog.drop_table("users")
        catalog.drop_table("child")
        catalog.drop_table("users")


class TestForeignKeyEnforcer:
    def setup_method(self):
        self.catalog = Catalog()
        self.users = self.catalog.create_table(users_def())
        self.pets = self.catalog.create_table(
            TableDef(
                "pets",
                [
                    Column("id", ColumnType.INTEGER, autoincrement=True),
                    Column("owner", ColumnType.INTEGER),
                ],
                primary_key=("id",),
                foreign_keys=[ForeignKey(("owner",), "users", ("id",))],
            )
        )
        self.fk = ForeignKeyEnforcer(self.catalog)

    def test_insert_requires_parent(self):
        rid, row = self.pets.insert({"owner": 1})
        with pytest.raises(IntegrityError):
            self.fk.check_insert(self.pets, row)
        self.pets.delete(rid)
        self.users.insert({"name": "a"})
        _, row = self.pets.insert({"owner": 1})
        self.fk.check_insert(self.pets, row)  # no raise

    def test_null_fk_allowed(self):
        _, row = self.pets.insert({"owner": None})
        self.fk.check_insert(self.pets, row)

    def test_delete_blocked_by_child(self):
        _, urow = self.users.insert({"name": "a"})
        self.pets.insert({"owner": 1})
        with pytest.raises(IntegrityError):
            self.fk.check_delete(self.users, urow)

    def test_delete_ok_without_children(self):
        _, urow = self.users.insert({"name": "a"})
        self.fk.check_delete(self.users, urow)
