"""Unit tests for access-path selection and join planning."""

import pytest

from repro.db import Database
from repro.db.engine import _bind_select
from repro.db.planner import choose_access_path, plan_select
from repro.db.errors import ProgrammingError


@pytest.fixture
def db():
    db = Database()
    conn = db.connect()
    conn.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "a STRING, b INTEGER, c FLOAT)"
    )
    conn.execute("CREATE INDEX t_a ON t (a)")
    conn.execute("CREATE INDEX t_ab ON t (a, b)")
    conn.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "tid INTEGER, label STRING)"
    )
    conn.execute("CREATE INDEX u_tid ON u (tid)")
    for i in range(20):
        conn.execute(
            "INSERT INTO t (a, b, c) VALUES (?, ?, ?)",
            (f"k{i % 4}", i % 5, float(i)),
        )
        conn.execute("INSERT INTO u (tid, label) VALUES (?, ?)", (i + 1, f"l{i}"))
    return db


def plan_of(db, sql, params=()):
    stmt = db.parse(sql)
    bound = _bind_select(stmt, tuple(params))
    return plan_select(db.catalog, bound)


class TestAccessPathSelection:
    def test_pk_equality_uses_unique_index(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE id = 5")
        assert plan.base.kind == "index_eq"
        assert plan.base.index == "__pk_t"
        assert plan.base.residual is None

    def test_secondary_index_equality(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a = 'k1'")
        assert plan.base.kind == "index_eq"
        assert plan.base.index in ("t_a", "t_ab")
        assert plan.base.residual is None

    def test_composite_prefix_plus_second_column(self, db):
        plan = plan_of(db, "SELECT c FROM t WHERE a = 'k1' AND b = 2")
        assert plan.base.kind == "index_eq"
        assert plan.base.index == "t_ab"
        assert plan.base.eq_values == ("k1", 2)
        assert plan.base.residual is None

    def test_fully_covered_index_preferred_over_wider_prefix(self, db):
        # a = ? matches t_a fully and t_ab as a prefix: prefer t_a.
        plan = plan_of(db, "SELECT b FROM t WHERE a = ?", ["k0"])
        assert plan.base.index == "t_a"

    def test_range_after_prefix(self, db):
        plan = plan_of(db, "SELECT c FROM t WHERE a = 'k1' AND b > 1")
        assert plan.base.kind == "index_range"
        assert plan.base.index == "t_ab"
        assert plan.base.low == 1 and not plan.base.low_inclusive

    def test_pure_range(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE id >= 3 AND id <= 7")
        assert plan.base.kind == "index_range"
        assert plan.base.low == 3 and plan.base.high == 7

    def test_between_is_range(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE id BETWEEN 3 AND 7")
        assert plan.base.kind == "index_range"

    def test_in_list_on_indexed_column(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a IN ('k1', 'k2')")
        assert plan.base.kind == "index_in"
        assert set(plan.base.in_values) == {"k1", "k2"}
        assert plan.base.residual is None

    def test_unindexed_predicate_is_seq_scan(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE c > 5.0")
        assert plan.base.kind == "seq"
        assert plan.base.residual is not None

    def test_residual_keeps_extra_conditions(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE a = 'k1' AND c > 5.0")
        assert plan.base.kind == "index_eq"
        assert plan.base.residual is not None
        assert "c" in str(plan.base.residual)

    def test_or_disables_index(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE a = 'k1' OR b = 2")
        assert plan.base.kind == "seq"

    def test_null_comparison_not_sargable(self, db):
        # a = NULL can never match; must not be turned into an index probe
        # that would bypass three-valued logic.
        plan = plan_of(db, "SELECT a FROM t WHERE a = ?", [None])
        assert plan.base.kind == "seq"


class TestJoinPlanning:
    def test_index_nested_loop_on_pk(self, db):
        plan = plan_of(
            db, "SELECT t.a FROM u JOIN t ON t.id = u.tid"
        )
        assert plan.joins[0].kind == "index_nl"
        assert plan.joins[0].access.index == "__pk_t"

    def test_index_nested_loop_on_secondary(self, db):
        plan = plan_of(
            db, "SELECT u.label FROM t JOIN u ON u.tid = t.id"
        )
        assert plan.joins[0].kind == "index_nl"
        assert plan.joins[0].access.index == "u_tid"

    def test_hash_join_without_inner_index(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE w (x INTEGER, y STRING)")
        conn.execute("INSERT INTO w (x, y) VALUES (1, 'a')")
        plan = plan_of(db, "SELECT w.y FROM t JOIN w ON w.x = t.b")
        assert plan.joins[0].kind == "hash"

    def test_cross_join_is_nested(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE w2 (x INTEGER)")
        plan = plan_of(db, "SELECT t.a FROM t, w2")
        assert plan.joins[0].kind == "nested"

    def test_where_pushed_into_join(self, db):
        plan = plan_of(
            db,
            "SELECT u.label FROM t JOIN u ON u.tid = t.id WHERE u.label = 'l3'",
        )
        step = plan.joins[0]
        assert step.kind == "index_nl"
        assert step.condition is not None and "label" in str(step.condition)

    def test_left_join_where_becomes_post_filter(self, db):
        plan = plan_of(
            db,
            "SELECT t.a FROM t LEFT JOIN u ON u.tid = t.id WHERE u.label IS NULL",
        )
        step = plan.joins[0]
        assert step.left_outer
        assert step.post_filter is not None

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(ProgrammingError):
            plan_of(db, "SELECT 1 FROM t x JOIN u x ON x.id = x.id")


class TestNameResolution:
    def test_unqualified_resolution(self, db):
        plan = plan_of(db, "SELECT a FROM t WHERE b = 1")
        # resolved to qualified column
        assert plan.items[0].expr.table == "t"

    def test_alias_resolution(self, db):
        plan = plan_of(db, "SELECT z.a FROM t z")
        assert plan.items[0].expr.table == "z"

    def test_unknown_alias_rejected(self, db):
        with pytest.raises(ProgrammingError):
            plan_of(db, "SELECT q.a FROM t")

    def test_output_names(self, db):
        plan = plan_of(db, "SELECT a, b AS bee, COUNT(*) FROM t GROUP BY a, b")
        assert plan.output_names == ("a", "bee", "count(*)")


class TestRangeIntersection:
    def test_redundant_lower_bounds_intersect(self, db):
        # Regression: a > 5 AND a > 1 must keep the *tighter* bound, and
        # dropping both comparisons from the residual must stay correct.
        conn = db.connect()
        got = conn.execute(
            "SELECT COUNT(*) FROM t WHERE id > 5 AND id > 1"
        ).scalar()
        want = conn.execute("SELECT COUNT(*) FROM t WHERE id > 5").scalar()
        assert got == want

    def test_reversed_order_same_result(self, db):
        conn = db.connect()
        a = conn.execute("SELECT COUNT(*) FROM t WHERE id > 1 AND id > 5").scalar()
        b = conn.execute("SELECT COUNT(*) FROM t WHERE id > 5 AND id > 1").scalar()
        assert a == b

    def test_between_and_comparison_intersect(self, db):
        conn = db.connect()
        got = conn.execute(
            "SELECT COUNT(*) FROM t WHERE id BETWEEN 1 AND 15 AND id <= 8"
        ).scalar()
        want = conn.execute(
            "SELECT COUNT(*) FROM t WHERE id BETWEEN 1 AND 8"
        ).scalar()
        assert got == want

    def test_contradictory_bounds_empty(self, db):
        conn = db.connect()
        assert conn.execute(
            "SELECT COUNT(*) FROM t WHERE id > 10 AND id < 5"
        ).scalar() == 0


class TestLikePrefixOptimization:
    def test_prefix_like_uses_index_range(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a LIKE 'k1%'")
        assert plan.base.kind == "index_range"
        assert plan.base.low == "k1"
        # LIKE stays as residual for exactness
        assert plan.base.residual is not None

    def test_prefix_like_results_correct(self, db):
        conn = db.connect()
        got = sorted(conn.execute("SELECT id FROM t WHERE a LIKE 'k1%'").fetchall())
        want = sorted(
            (i + 1,) for i in range(20) if f"k{i % 4}".startswith("k1")
        )
        assert got == want

    def test_wildcard_in_middle_not_optimized(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a LIKE 'k%1'")
        assert plan.base.kind == "seq"

    def test_underscore_not_optimized(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a LIKE 'k_'")
        assert plan.base.kind == "seq"

    def test_bare_percent_not_optimized(self, db):
        plan = plan_of(db, "SELECT b FROM t WHERE a LIKE '%'")
        assert plan.base.kind == "seq"

    def test_underscore_semantics_preserved(self, db):
        conn = db.connect()
        conn.execute("INSERT INTO t (a, b, c) VALUES ('k1x', 99, 0.0)")
        # 'k1_' must match exactly 3 characters even though the range scan
        # would admit longer strings.
        got = conn.execute("SELECT COUNT(*) FROM t WHERE a LIKE 'k1%' AND b = 99").scalar()
        assert got == 1
