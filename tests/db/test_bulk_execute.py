"""Batched execution paths: executemany, lastrowids, savepoints."""

import pytest

from repro.db import Database
from repro.db.errors import (
    IntegrityError,
    ProgrammingError,
    TransactionError,
)


@pytest.fixture()
def db():
    database = Database()
    conn = database.connect()
    conn.execute(
        "CREATE TABLE t ("
        "id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "name STRING NOT NULL UNIQUE, "
        "score INTEGER)"
    )
    conn.close()
    return database


class TestExecutemany:
    def test_inserts_all_rows(self, db):
        conn = db.connect()
        result = conn.executemany(
            "INSERT INTO t (name, score) VALUES (?, ?)",
            [("a", 1), ("b", 2), ("c", 3)],
        )
        assert result.rowcount == 3
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 3

    def test_lastrowids_in_insertion_order(self, db):
        conn = db.connect()
        result = conn.executemany(
            "INSERT INTO t (name) VALUES (?)", [("a",), ("b",), ("c",)]
        )
        assert len(result.lastrowids) == 3
        assert result.lastrowids == sorted(result.lastrowids)
        assert result.lastrowid == result.lastrowids[-1]
        rows = conn.execute("SELECT id, name FROM t").fetchall()
        assert {row[0] for row in rows} == set(result.lastrowids)

    def test_empty_sequence_is_noop(self, db):
        conn = db.connect()
        result = conn.executemany("INSERT INTO t (name) VALUES (?)", [])
        assert result.rowcount == 0
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_all_or_nothing_on_mid_batch_failure(self, db):
        conn = db.connect()
        conn.execute("INSERT INTO t (name) VALUES ('taken')")
        with pytest.raises(IntegrityError):
            conn.executemany(
                "INSERT INTO t (name) VALUES (?)",
                [("fresh-1",), ("taken",), ("fresh-2",)],
            )
        names = {row[0] for row in conn.execute("SELECT name FROM t").fetchall()}
        assert names == {"taken"}, "partial batch leaked past a failure"

    def test_rejects_non_insert(self, db):
        conn = db.connect()
        with pytest.raises(ProgrammingError):
            conn.executemany("SELECT name FROM t", [()])

    def test_rejects_closed_connection(self, db):
        conn = db.connect()
        conn.close()
        with pytest.raises(ProgrammingError):
            conn.executemany("INSERT INTO t (name) VALUES (?)", [("a",)])

    def test_single_row_matches_execute(self, db):
        conn = db.connect()
        many = conn.executemany("INSERT INTO t (name) VALUES (?)", [("a",)])
        one = conn.execute("INSERT INTO t (name) VALUES ('b')")
        assert many.rowcount == one.rowcount == 1
        assert one.lastrowid == many.lastrowid + 1


class TestLockTables:
    def test_requires_explicit_transaction(self, db):
        conn = db.connect()
        with pytest.raises(TransactionError):
            conn.lock_tables(write=("t",))

    def test_serializes_read_then_write_transactions(self, db):
        """Two txns that read t before writing it deadlock on the lock
        upgrade unless both take the write lock eagerly."""
        import threading

        done = []

        def contender(name):
            conn = db.connect()
            conn.execute("BEGIN")
            conn.lock_tables(write=("t",))
            conn.execute("SELECT COUNT(*) FROM t").scalar()
            conn.execute(f"INSERT INTO t (name) VALUES ('{name}')")
            conn.execute("COMMIT")
            conn.close()
            done.append(name)

        threads = [
            threading.Thread(target=contender, args=(f"c{i}",))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert sorted(done) == ["c0", "c1", "c2"]
        conn = db.connect()
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 3


class TestSavepoints:
    def test_requires_explicit_transaction(self, db):
        conn = db.connect()
        with pytest.raises(TransactionError):
            conn.savepoint()
        with pytest.raises(TransactionError):
            conn.rollback_to_savepoint((0, 0))

    def test_rollback_reverts_work_after_mark(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (name) VALUES ('kept')")
        token = conn.savepoint()
        conn.execute("INSERT INTO t (name) VALUES ('doomed-1')")
        conn.execute("INSERT INTO t (name) VALUES ('doomed-2')")
        conn.rollback_to_savepoint(token)
        conn.execute("COMMIT")
        names = {row[0] for row in conn.execute("SELECT name FROM t").fetchall()}
        assert names == {"kept"}

    def test_nested_savepoints_unwind_independently(self, db):
        conn = db.connect()
        conn.execute("BEGIN")
        outer = conn.savepoint()
        conn.execute("INSERT INTO t (name) VALUES ('outer')")
        inner = conn.savepoint()
        conn.execute("INSERT INTO t (name) VALUES ('inner')")
        conn.rollback_to_savepoint(inner)
        conn.execute("INSERT INTO t (name) VALUES ('retry')")
        conn.execute("COMMIT")
        del outer
        names = {row[0] for row in conn.execute("SELECT name FROM t").fetchall()}
        assert names == {"outer", "retry"}

    def test_savepoint_isolates_executemany_failure(self, db):
        conn = db.connect()
        conn.execute("INSERT INTO t (name) VALUES ('taken')")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (name) VALUES ('pre')")
        token = conn.savepoint()
        with pytest.raises(IntegrityError):
            conn.executemany(
                "INSERT INTO t (name) VALUES (?)", [("new",), ("taken",)]
            )
        conn.rollback_to_savepoint(token)
        conn.execute("INSERT INTO t (name) VALUES ('post')")
        conn.execute("COMMIT")
        names = {row[0] for row in conn.execute("SELECT name FROM t").fetchall()}
        assert names == {"taken", "pre", "post"}
