"""Scalar and aggregate SQL function coverage through the engine."""

import pytest

from repro.db import Database
from repro.db.errors import ProgrammingError
from repro.db.functions import (
    AvgAgg,
    CountAgg,
    MaxAgg,
    MinAgg,
    SumAgg,
    make_aggregate,
)


@pytest.fixture
def conn():
    db = Database()
    c = db.connect()
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s STRING, n FLOAT)")
    rows = [(1, "Alpha", 1.5), (2, "beta", -2.0), (3, None, None), (4, "Gamma", 4.0)]
    for r in rows:
        c.execute("INSERT INTO t (id, s, n) VALUES (?, ?, ?)", r)
    return c


class TestScalarFunctions:
    def test_lower_upper(self, conn):
        assert conn.execute("SELECT LOWER(s) FROM t WHERE id = 1").scalar() == "alpha"
        assert conn.execute("SELECT UPPER(s) FROM t WHERE id = 2").scalar() == "BETA"

    def test_null_propagation(self, conn):
        assert conn.execute("SELECT LOWER(s) FROM t WHERE id = 3").scalar() is None
        assert conn.execute("SELECT ABS(n) FROM t WHERE id = 3").scalar() is None

    def test_length(self, conn):
        assert conn.execute("SELECT LENGTH(s) FROM t WHERE id = 1").scalar() == 5

    def test_abs(self, conn):
        assert conn.execute("SELECT ABS(n) FROM t WHERE id = 2").scalar() == 2.0

    def test_coalesce(self, conn):
        assert conn.execute(
            "SELECT COALESCE(s, 'fallback') FROM t WHERE id = 3"
        ).scalar() == "fallback"
        assert conn.execute(
            "SELECT COALESCE(s, 'fallback') FROM t WHERE id = 1"
        ).scalar() == "Alpha"

    def test_substr_one_based(self, conn):
        assert conn.execute("SELECT SUBSTR(s, 2, 3) FROM t WHERE id = 1").scalar() == "lph"
        assert conn.execute("SELECT SUBSTR(s, 3) FROM t WHERE id = 1").scalar() == "pha"

    def test_trim_concat(self, conn):
        assert conn.execute("SELECT TRIM('  x  ') FROM t WHERE id = 1").scalar() == "x"
        assert conn.execute(
            "SELECT CONCAT(s, '-', id) FROM t WHERE id = 1"
        ).scalar() == "Alpha-1"

    def test_ifnull(self, conn):
        assert conn.execute("SELECT IFNULL(n, 0.0) FROM t WHERE id = 3").scalar() == 0.0

    def test_least_greatest(self, conn):
        assert conn.execute("SELECT LEAST(3, 1, 2) FROM t WHERE id = 1").scalar() == 1
        assert conn.execute("SELECT GREATEST(3, 1, 2) FROM t WHERE id = 1").scalar() == 3

    def test_function_in_where(self, conn):
        rows = conn.execute(
            "SELECT id FROM t WHERE LOWER(s) = 'alpha'"
        ).fetchall()
        assert rows == [(1,)]

    def test_unknown_function(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT FROBNICATE(s) FROM t")


class TestAggregates:
    def test_count_star_vs_column(self, conn):
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 4
        # COUNT(col) skips NULLs
        assert conn.execute("SELECT COUNT(s) FROM t").scalar() == 3

    def test_sum_avg_skip_nulls(self, conn):
        assert conn.execute("SELECT SUM(n) FROM t").scalar() == 3.5
        assert conn.execute("SELECT AVG(n) FROM t").scalar() == pytest.approx(3.5 / 3)

    def test_min_max(self, conn):
        assert conn.execute("SELECT MIN(n), MAX(n) FROM t").fetchone() == (-2.0, 4.0)

    def test_empty_aggregates(self, conn):
        row = conn.execute(
            "SELECT COUNT(*), SUM(n), MIN(n), AVG(n) FROM t WHERE id > 99"
        ).fetchone()
        assert row == (0, None, None, None)

    def test_aggregate_over_expression(self, conn):
        assert conn.execute("SELECT SUM(id * 2) FROM t").scalar() == 20


class TestAggregateClasses:
    def test_count_star_counts_nulls(self):
        agg = CountAgg(count_star=True)
        for v in (None, 1, None):
            agg.add(v)
        assert agg.result() == 3

    def test_sum_empty_is_none(self):
        assert SumAgg().result() is None

    def test_avg_empty_is_none(self):
        assert AvgAgg().result() is None

    def test_min_max_ignore_nulls(self):
        mn, mx = MinAgg(), MaxAgg()
        for v in (None, 5, 2, None, 9):
            mn.add(v)
            mx.add(v)
        assert mn.result() == 2 and mx.result() == 9

    def test_make_aggregate_unknown(self):
        with pytest.raises(ProgrammingError):
            make_aggregate("MEDIAN")
