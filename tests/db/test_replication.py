"""Tests for WAL-shipping replication at the database level."""

import threading

import pytest

from repro.db import Database
from repro.db.replication import Replica, ReplicationPublisher, seed_replica


@pytest.fixture
def primary():
    return Database()


def attach(primary, name="r0", asynchronous=False):
    publisher = ReplicationPublisher(primary)
    replica = Replica(name, asynchronous=asynchronous)
    publisher.add_replica(replica)
    return publisher, replica


class TestSynchronousShipping:
    def test_ddl_and_dml_replicate(self, primary):
        publisher, replica = attach(primary)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v STRING)")
        conn.execute("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
        conn.execute("UPDATE t SET v = 'B' WHERE id = 2")
        conn.execute("DELETE FROM t WHERE id = 1")
        rows = replica.database.connect().execute(
            "SELECT id, v FROM t ORDER BY id"
        ).fetchall()
        assert rows == [(2, "B")]
        publisher.close()

    def test_indexes_replicate(self, primary):
        publisher, replica = attach(primary)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE INDEX i ON t (a)")
        conn.execute("INSERT INTO t (a) VALUES (5)")
        table = replica.database.catalog.table("t")
        assert table.indexes["i"].get((5,)) != []
        publisher.close()

    def test_transaction_ships_as_one_batch(self, primary):
        publisher, replica = attach(primary)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        before = publisher.batches_published
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        conn.execute("INSERT INTO t (a) VALUES (2)")
        conn.execute("COMMIT")
        assert publisher.batches_published == before + 1
        assert replica.database.connect().execute(
            "SELECT COUNT(*) FROM t"
        ).scalar() == 2
        publisher.close()

    def test_rolled_back_txn_not_shipped(self, primary):
        publisher, replica = attach(primary)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        conn.execute("ROLLBACK")
        assert replica.database.connect().execute(
            "SELECT COUNT(*) FROM t"
        ).scalar() == 0
        publisher.close()

    def test_autoincrement_continues_on_replica(self, primary):
        publisher, replica = attach(primary)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v STRING)")
        conn.execute("INSERT INTO t (v) VALUES ('a')")
        # If promoted, the replica must continue the sequence correctly.
        result = replica.database.connect().execute("INSERT INTO t (v) VALUES ('b')")
        assert result.lastrowid == 2
        publisher.close()


class TestAsynchronousShipping:
    def test_lag_and_flush(self, primary):
        publisher, replica = attach(primary, asynchronous=True)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        for i in range(20):
            conn.execute("INSERT INTO t (a) VALUES (?)", (i,))
        replica.flush()
        assert replica.lag() == 0
        assert replica.database.connect().execute(
            "SELECT COUNT(*) FROM t"
        ).scalar() == 20
        publisher.close()

    def test_order_preserved(self, primary):
        publisher, replica = attach(primary, asynchronous=True)
        conn = primary.connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        conn.execute("INSERT INTO t (id, v) VALUES (1, 0)")
        for i in range(50):
            conn.execute("UPDATE t SET v = ? WHERE id = 1", (i,))
        replica.flush()
        assert replica.database.connect().execute(
            "SELECT v FROM t WHERE id = 1"
        ).scalar() == 49
        publisher.close()

    def test_concurrent_writers_replicate_consistently(self, primary):
        publisher, replica = attach(primary, asynchronous=True)
        primary.connect().execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, w INTEGER)"
        )

        def writer(w):
            conn = primary.connect()
            for i in range(25):
                conn.execute(
                    "INSERT INTO t (id, w) VALUES (?, ?)", (w * 100 + i, w)
                )

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        replica.flush()
        primary_rows = sorted(primary.connect().execute("SELECT id FROM t").fetchall())
        replica_rows = sorted(
            replica.database.connect().execute("SELECT id FROM t").fetchall()
        )
        assert primary_rows == replica_rows and len(primary_rows) == 100
        publisher.close()


class TestSeeding:
    def test_seed_copies_existing_state(self, primary):
        conn = primary.connect()
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v STRING)")
        conn.execute("CREATE INDEX by_v ON t (v)")
        conn.execute("INSERT INTO t (v) VALUES ('pre')")
        publisher = ReplicationPublisher(primary)
        replica = Replica("late")
        seed_replica(primary, replica)
        publisher.add_replica(replica)
        conn.execute("INSERT INTO t (v) VALUES ('post')")
        rows = replica.database.connect().execute(
            "SELECT v FROM t ORDER BY id"
        ).fetchall()
        assert rows == [("pre",), ("post",)]
        assert "by_v" in replica.database.catalog.table("t").indexes
        publisher.close()

    def test_seed_requires_empty_replica(self, primary):
        replica = Replica("r")
        replica.database.connect().execute("CREATE TABLE x (a INTEGER)")
        with pytest.raises(ValueError):
            seed_replica(primary, replica)

    def test_duplicate_replica_name_rejected(self, primary):
        publisher, replica = attach(primary)
        with pytest.raises(ValueError):
            publisher.add_replica(Replica("r0"))
        publisher.close()


class TestFlushTimeout:
    def test_flush_timeout_when_apply_stuck(self, primary):
        """A replica whose apply thread is wedged must raise on flush."""
        publisher = ReplicationPublisher(primary)
        replica = Replica("slow", asynchronous=True)
        publisher.add_replica(replica)
        # Wedge the apply loop by making it wait on the schema lock.
        blocker = object()
        replica.database.locks.schema_lock.acquire_write(blocker, 1)
        try:
            conn = primary.connect()
            conn.execute("CREATE TABLE t (a INTEGER)")
            with pytest.raises(TimeoutError):
                replica.flush(timeout=0.2)
        finally:
            replica.database.locks.schema_lock.release(blocker, True)
            replica.flush()
            publisher.close()

    def test_flush_noop_for_synchronous(self, primary):
        publisher, replica = attach(primary)
        replica.flush()  # must not raise
        publisher.close()
