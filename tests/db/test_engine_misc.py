"""Engine edge cases: scripts, context managers, cache, misc paths."""

import threading

import pytest

from repro.db import Database
from repro.db.engine import split_statements
from repro.db.errors import (
    IntegrityError,
    LockTimeoutError,
    ProgrammingError,
    SQLSyntaxError,
)


class TestSplitStatements:
    def test_basic_split(self):
        pieces = split_statements("SELECT 1 FROM a; SELECT 2 FROM b;")
        assert len(pieces) == 2

    def test_semicolon_in_string_not_split(self):
        pieces = split_statements("INSERT INTO t (v) VALUES ('a;b'); SELECT v FROM t")
        assert len(pieces) == 2
        assert "'a;b'" in pieces[0]

    def test_trailing_whitespace_and_empty(self):
        assert split_statements("  ;; ; ") == []
        assert split_statements("") == []

    def test_comments_preserved_position(self):
        pieces = split_statements("SELECT 1 FROM a -- note; not a split\n; SELECT 2 FROM b")
        assert len(pieces) == 2


class TestConnectionLifecycle:
    def test_exit_with_exception_rolls_back(self):
        db = Database()
        db.connect().execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(RuntimeError):
            with db.connect() as conn:
                conn.execute("BEGIN")
                conn.execute("INSERT INTO t (a) VALUES (1)")
                raise RuntimeError("boom")
        assert db.connect().execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_close_rolls_back_open_txn(self):
        db = Database()
        db.connect().execute("CREATE TABLE t (a INTEGER)")
        conn = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        conn.close()
        assert db.connect().execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_in_transaction_property(self):
        db = Database()
        conn = db.connect()
        assert not conn.in_transaction
        conn.execute("BEGIN")
        assert conn.in_transaction
        conn.execute("COMMIT")
        assert not conn.in_transaction

    def test_checkpoint_noop_without_directory(self):
        Database().checkpoint()  # must not raise


class TestStatementCache:
    def test_cache_shared_across_connections(self):
        db = Database()
        db.connect().execute("CREATE TABLE t (a INTEGER)")
        sql = "SELECT a FROM t WHERE a = ?"
        db.connect().execute(sql, (1,))
        cached = db.parse(sql)
        assert db.parse(sql) is cached

    def test_cache_bounded(self):
        db = Database()
        db.connect().execute("CREATE TABLE t (a INTEGER)")
        for i in range(4100):
            db.parse(f"SELECT a FROM t WHERE a = {i}")
        assert len(db._stmt_cache) <= 4101


class TestLockTimeouts:
    def test_writer_blocks_writer_with_timeout_error(self):
        db = Database(lock_timeout=0.05)
        conn1 = db.connect()
        conn1.execute("CREATE TABLE t (a INTEGER)")
        conn1.execute("BEGIN")
        conn1.execute("INSERT INTO t (a) VALUES (1)")
        conn2 = db.connect()
        with pytest.raises(LockTimeoutError):
            conn2.execute("INSERT INTO t (a) VALUES (2)")
        conn1.execute("ROLLBACK")
        conn2.execute("INSERT INTO t (a) VALUES (2)")  # now succeeds

    def test_reader_not_blocked_by_reader(self):
        db = Database(lock_timeout=0.2)
        conn1 = db.connect()
        conn1.execute("CREATE TABLE t (a INTEGER)")
        conn1.execute("BEGIN")
        conn1.execute("SELECT COUNT(*) FROM t")  # read lock held by txn
        conn2 = db.connect()
        assert conn2.execute("SELECT COUNT(*) FROM t").scalar() == 0
        conn1.execute("COMMIT")


class TestMultiRowAndDefaults:
    def test_insert_with_expression_values(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t (a) VALUES (1 + 2 * 3)")
        assert conn.execute("SELECT a FROM t").scalar() == 7

    def test_update_without_where_touches_all(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert conn.execute("UPDATE t SET a = 0").rowcount == 3

    def test_delete_without_where_clears(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t (a) VALUES (1), (2)")
        assert conn.execute("DELETE FROM t").rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_default_in_ddl(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER, b STRING DEFAULT 'dflt')")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        assert conn.execute("SELECT b FROM t").scalar() == "dflt"

    def test_negative_default(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER DEFAULT -5)")
        conn.execute("INSERT INTO t (a) VALUES (NULL)")
        # NULL explicitly provided stays NULL; default only fills missing
        assert conn.execute("SELECT a FROM t").scalar() is None
        conn.execute("INSERT INTO t (a) VALUES (-5)")


class TestErrorMessages:
    def test_syntax_error_carries_position(self):
        db = Database()
        with pytest.raises(SQLSyntaxError) as excinfo:
            db.connect().execute("SELECT FROM WHERE")
        assert "offset" in str(excinfo.value)

    def test_too_few_parameters(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(ProgrammingError):
            conn.execute("INSERT INTO t (a) VALUES (?)")

    def test_unique_violation_names_constraint(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (a INTEGER UNIQUE)")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        with pytest.raises(IntegrityError) as excinfo:
            conn.execute("INSERT INTO t (a) VALUES (1)")
        assert "unique" in str(excinfo.value).lower()
