"""Tests for the SQL parser."""

import pytest

from repro.db.errors import SQLSyntaxError
from repro.db.expr import (
    And,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
)
from repro.db.sql.ast import (
    BeginTransaction,
    CommitTransaction,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Insert,
    RollbackTransaction,
    Select,
    Update,
)
from repro.db.sql.parser import parse_statement
from repro.db.types import ColumnType


class TestCreateTable:
    def test_basic(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, "
            "name STRING NOT NULL, score FLOAT DEFAULT 1.5)"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "t"
        assert stmt.primary_key == ("id",)
        assert stmt.columns[0].autoincrement
        assert not stmt.columns[1].nullable
        assert stmt.columns[2].default == 1.5

    def test_table_level_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b INTEGER, c INTEGER, "
            "PRIMARY KEY (a, b), UNIQUE (c), "
            "FOREIGN KEY (c) REFERENCES other (x))"
        )
        assert stmt.primary_key == ("a", "b")
        assert stmt.unique == [("c",)]
        assert stmt.foreign_keys[0].ref_table == "other"

    def test_column_level_references(self):
        stmt = parse_statement("CREATE TABLE t (a INTEGER REFERENCES p (id))")
        assert stmt.foreign_keys[0].columns == ("a",)

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert stmt.if_not_exists

    def test_type_aliases(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b TEXT, c DOUBLE, d TIMESTAMP)")
        assert [c.ctype for c in stmt.columns] == [
            ColumnType.INTEGER,
            ColumnType.STRING,
            ColumnType.FLOAT,
            ColumnType.DATETIME,
        ]

    def test_duplicate_pk_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER PRIMARY KEY)")


class TestCreateDropIndex:
    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX i ON t (a, b)")
        assert isinstance(stmt, CreateIndex)
        assert stmt.columns == ("a", "b")
        assert not stmt.unique

    def test_create_unique_index(self):
        assert parse_statement("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTable) and stmt.if_exists

    def test_drop_index(self):
        stmt = parse_statement("DROP INDEX i ON t")
        assert isinstance(stmt, DropIndex) and stmt.table == "t"


class TestInsert:
    def test_single_row(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, Insert)
        assert stmt.columns == ("a", "b")
        assert stmt.rows[0][0] == Literal(1)

    def test_multi_row(self):
        stmt = parse_statement("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_parameters_numbered_in_order(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.rows[0] == (Parameter(0), Parameter(1))

    def test_arity_mismatch(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("INSERT INTO t (a, b) VALUES (1)")


class TestUpdateDelete:
    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = ?")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0][0] == "a"
        assert isinstance(stmt.where, Comparison)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 5")
        assert isinstance(stmt, Delete)

    def test_delete_no_where(self):
        assert parse_statement("DELETE FROM t").where is None


class TestSelect:
    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].star_table == "t"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.table.alias == "u"

    def test_joins(self):
        stmt = parse_statement(
            "SELECT a FROM t JOIN u ON t.id = u.tid LEFT JOIN v ON v.x = u.id"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_comma_join_is_cross(self):
        stmt = parse_statement("SELECT a FROM t, u WHERE t.id = u.tid")
        assert stmt.joins[0].kind == "cross"

    def test_join_requires_on(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t JOIN u")

    def test_group_having_order_limit(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) c FROM t GROUP BY a HAVING c > 1 "
            "ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert stmt.group_by and stmt.having is not None
        assert stmt.order_by[0].descending
        assert stmt.limit == 10 and stmt.offset == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_aggregates(self):
        stmt = parse_statement("SELECT COUNT(*), MIN(a), MAX(a), SUM(a), AVG(a) FROM t")
        assert stmt.items[0].count_star
        assert [i.aggregate for i in stmt.items] == ["COUNT", "MIN", "MAX", "SUM", "AVG"]


class TestExpressions:
    def where(self, text):
        return parse_statement(f"SELECT a FROM t WHERE {text}").where

    def test_precedence_and_over_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.parts[1], And)

    def test_not(self):
        assert isinstance(self.where("NOT a = 1"), Not)

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, InList) and len(expr.options) == 3

    def test_not_in(self):
        assert self.where("a NOT IN (1)").negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between)

    def test_like(self):
        expr = self.where("a LIKE 'x%'")
        assert isinstance(expr, Like)

    def test_is_null(self):
        assert isinstance(self.where("a IS NULL"), IsNull)
        assert self.where("a IS NOT NULL").negated

    def test_qualified_column(self):
        expr = self.where("t.a = 1")
        assert expr.left == ColumnRef("a", table="t")

    def test_arithmetic_precedence(self):
        expr = self.where("a = 1 + 2 * 3")
        # right side: 1 + (2 * 3)
        assert expr.right.op == "+"
        assert expr.right.right.op == "*"

    def test_unary_minus_literal_folded(self):
        expr = self.where("a = -5")
        assert expr.right == Literal(-5)

    def test_function_call(self):
        expr = self.where("LOWER(a) = 'x'")
        assert expr.left.name == "LOWER"

    def test_boolean_literals(self):
        expr = self.where("a = TRUE")
        assert expr.right == Literal(True)


class TestTransactions:
    def test_begin_commit_rollback(self):
        assert isinstance(parse_statement("BEGIN"), BeginTransaction)
        assert isinstance(parse_statement("COMMIT"), CommitTransaction)
        assert isinstance(parse_statement("ROLLBACK TRANSACTION"), RollbackTransaction)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT a FROM t extra junk ( ")

    def test_empty(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("")

    def test_unsupported(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("TRUE")

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse_statement("SELECT a FROM t;"), Select)
