"""Tests for the SQL tokenizer."""

import pytest

from repro.db.errors import SQLSyntaxError
from repro.db.sql.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasics:
    def test_keywords_uppercased(self):
        assert kinds("select from") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("myTable") == [(TokenType.IDENT, "myTable")]

    def test_backtick_identifier_never_keyword(self):
        assert kinds("`select`") == [(TokenType.IDENT, "select")]

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


class TestLiterals:
    def test_string(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER and token.value == 42

    def test_float(self):
        assert tokenize("3.5")[0].value == 3.5

    def test_scientific(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%"])
    def test_each_operator(self, op):
        token = tokenize(op)[0]
        assert token.type is TokenType.OPERATOR

    def test_diamond_normalized(self):
        assert tokenize("<>")[0].text == "!="

    def test_parameter(self):
        token = tokenize("?")[0]
        assert token.type is TokenType.PUNCT and token.text == "?"


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- comment\n 1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.NUMBER, "1"),
        ]

    def test_block_comment(self):
        assert kinds("1 /* x */ 2") == [
            (TokenType.NUMBER, "1"),
            (TokenType.NUMBER, "2"),
        ]

    def test_unterminated_block(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* forever")


class TestErrors:
    def test_unexpected_char(self):
        with pytest.raises(SQLSyntaxError) as exc:
            tokenize("select @")
        assert exc.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("a = 1")
        assert [t.position for t in tokens[:3]] == [0, 2, 4]
