"""Tests for locks, undo and multi-threaded access."""

import threading
import time

import pytest

from repro.db import Database
from repro.db.errors import LockTimeoutError
from repro.db.txn import LockManager, RWLock, UndoLog
from repro.db.schema import Column, TableDef
from repro.db.storage import Catalog
from repro.db.types import ColumnType


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock("t")
        lock.acquire_read("a", 1)
        lock.acquire_read("b", 1)
        assert lock.held_by("a") == (1, 0)
        lock.release("a", False)
        lock.release("b", False)

    def test_writer_excludes_reader(self):
        lock = RWLock("t")
        lock.acquire_write("w", 1)
        with pytest.raises(LockTimeoutError):
            lock.acquire_read("r", 0.05)
        lock.release("w", True)

    def test_waiting_writer_gates_new_readers(self):
        """Write preference: overlapping readers cannot starve a writer."""
        lock = RWLock("t")
        lock.acquire_read("r1", 1)
        writer_acquired = threading.Event()

        def writer():
            lock.acquire_write("w", 5)
            writer_acquired.set()
            lock.release("w", True)

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)  # let the writer start waiting
        # A fresh reader must now queue behind the waiting writer...
        with pytest.raises(LockTimeoutError):
            lock.acquire_read("r2", 0.05)
        # ...but the existing holder still re-enters (upgrade safety).
        lock.acquire_read("r1", 0.05)
        lock.release("r1", False)
        lock.release("r1", False)
        thread.join(timeout=5)
        assert writer_acquired.is_set()
        # Once the writer is done, new readers proceed normally.
        lock.acquire_read("r2", 1)
        lock.release("r2", False)

    def test_writer_timeout_reopens_reader_gate(self):
        lock = RWLock("t")
        lock.acquire_read("r1", 1)

        def failing_writer():
            with pytest.raises(LockTimeoutError):
                lock.acquire_write("w", 0.1)

        thread = threading.Thread(target=failing_writer)
        thread.start()
        thread.join(timeout=5)
        # The timed-out writer must not leave new readers gated forever.
        lock.acquire_read("r2", 0.5)
        lock.release("r2", False)
        lock.release("r1", False)
        lock.acquire_read("r", 1)

    def test_reader_excludes_writer(self):
        lock = RWLock("t")
        lock.acquire_read("r", 1)
        with pytest.raises(LockTimeoutError):
            lock.acquire_write("w", 0.05)
        lock.release("r", False)

    def test_reentrant_write(self):
        lock = RWLock("t")
        lock.acquire_write("w", 1)
        lock.acquire_write("w", 1)
        lock.release("w", True)
        assert lock.held_by("w") == (0, 1)
        lock.release("w", True)

    def test_same_owner_read_then_write_upgrade(self):
        lock = RWLock("t")
        lock.acquire_read("a", 1)
        lock.acquire_write("a", 1)  # sole reader upgrades
        lock.release("a", True)
        lock.release("a", False)

    def test_write_then_read_same_owner(self):
        lock = RWLock("t")
        lock.acquire_write("a", 1)
        lock.acquire_read("a", 1)
        lock.release("a", False)
        lock.release("a", True)

    def test_release_not_held_raises(self):
        lock = RWLock("t")
        from repro.db.errors import TransactionError

        with pytest.raises(TransactionError):
            lock.release("x", False)

    def test_writer_wakes_waiting_reader(self):
        lock = RWLock("t")
        lock.acquire_write("w", 1)
        got = []

        def reader():
            lock.acquire_read("r", 2)
            got.append(True)
            lock.release("r", False)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        lock.release("w", True)
        thread.join(2)
        assert got == [True]


class TestLockManager:
    def test_acquire_all_or_nothing(self):
        manager = LockManager(timeout=0.05)
        blocker = object()
        manager.lock_for("b").acquire_write(blocker, 1)
        owner = object()
        with pytest.raises(LockTimeoutError):
            manager.acquire(owner, {"a"}, {"b"})
        # 'a' must not be left held
        probe = object()
        manager.lock_for("a").acquire_write(probe, 0.05)
        manager.lock_for("a").release(probe, True)

    def test_sorted_acquisition_order(self):
        manager = LockManager()
        owner = object()
        held = manager.acquire(owner, {"zeta"}, {"alpha"})
        assert [lock.name for lock, _ in held] == ["alpha", "zeta"]
        LockManager.release(owner, held)


class TestUndoLog:
    def setup_method(self):
        self.catalog = Catalog()
        self.table = self.catalog.create_table(
            TableDef("t", [Column("a", ColumnType.INTEGER)])
        )

    def test_rollback_insert(self):
        undo = UndoLog()
        rid, _ = self.table.insert({"a": 1})
        undo.record_insert("t", rid)
        undo.rollback(self.catalog)
        assert len(self.table) == 0

    def test_rollback_update(self):
        undo = UndoLog()
        rid, _ = self.table.insert({"a": 1})
        old, _ = self.table.update(rid, {"a": 2})
        undo.record_update("t", rid, old)
        undo.rollback(self.catalog)
        assert self.table.rows[rid] == (1,)

    def test_rollback_delete(self):
        undo = UndoLog()
        rid, _ = self.table.insert({"a": 1})
        row = self.table.delete(rid)
        undo.record_delete("t", rid, row)
        undo.rollback(self.catalog)
        assert self.table.rows[rid] == (1,)

    def test_rollback_to_mark(self):
        undo = UndoLog()
        rid1, _ = self.table.insert({"a": 1})
        undo.record_insert("t", rid1)
        mark = undo.mark()
        rid2, _ = self.table.insert({"a": 2})
        undo.record_insert("t", rid2)
        undo.rollback_to(self.catalog, mark)
        assert len(self.table) == 1 and rid1 in self.table.rows
        assert len(undo) == mark

    def test_rollback_order_is_reverse(self):
        undo = UndoLog()
        rid, _ = self.table.insert({"a": 1})
        old1, _ = self.table.update(rid, {"a": 2})
        undo.record_update("t", rid, old1)
        old2, _ = self.table.update(rid, {"a": 3})
        undo.record_update("t", rid, old2)
        undo.rollback(self.catalog)
        assert self.table.rows[rid] == (1,)


class TestConcurrentAccess:
    def test_parallel_inserts_distinct_keys(self):
        db = Database()
        db.connect().execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, thread INTEGER)"
        )
        errors = []

        def worker(tid):
            conn = db.connect()
            try:
                for i in range(50):
                    conn.execute(
                        "INSERT INTO t (id, thread) VALUES (?, ?)",
                        (tid * 1000 + i, tid),
                    )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert db.connect().execute("SELECT COUNT(*) FROM t").scalar() == 200

    def test_readers_run_during_reads(self):
        db = Database()
        c = db.connect()
        c.execute("CREATE TABLE t (a INTEGER)")
        for i in range(100):
            c.execute("INSERT INTO t (a) VALUES (?)", (i,))
        results = []

        def reader():
            conn = db.connect()
            for _ in range(20):
                results.append(conn.execute("SELECT COUNT(*) FROM t").scalar())

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r == 100 for r in results)

    def test_explicit_txn_blocks_conflicting_writer(self):
        db = Database(lock_timeout=0.1)
        c1 = db.connect()
        c1.execute("CREATE TABLE t (a INTEGER)")
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t (a) VALUES (1)")
        c2 = db.connect()
        with pytest.raises(LockTimeoutError):
            c2.execute("INSERT INTO t (a) VALUES (2)")
        c1.execute("COMMIT")
        c2.execute("INSERT INTO t (a) VALUES (2)")
        assert c2.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_mixed_read_write_consistency(self):
        db = Database()
        c = db.connect()
        c.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
        c.execute("INSERT INTO acct (id, bal) VALUES (1, 100), (2, 100)")
        stop = threading.Event()
        anomalies = []

        def transfer():
            conn = db.connect()
            for _ in range(30):
                conn.execute("BEGIN")
                conn.execute("UPDATE acct SET bal = bal - 1 WHERE id = 1")
                conn.execute("UPDATE acct SET bal = bal + 1 WHERE id = 2")
                conn.execute("COMMIT")

        def auditor():
            conn = db.connect()
            while not stop.is_set():
                total = conn.execute("SELECT SUM(bal) FROM acct").scalar()
                if total != 200:
                    anomalies.append(total)

        audit_thread = threading.Thread(target=auditor)
        audit_thread.start()
        workers = [threading.Thread(target=transfer) for _ in range(2)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        audit_thread.join(2)
        assert not anomalies
        conn = db.connect()
        assert conn.execute("SELECT bal FROM acct WHERE id = 1").scalar() == 40
        assert conn.execute("SELECT bal FROM acct WHERE id = 2").scalar() == 160
