"""End-to-end SQL tests through Database/Connection."""

import datetime as dt

import pytest

from repro.db import Database
from repro.db.errors import (
    IntegrityError,
    ProgrammingError,
    SchemaError,
    TransactionError,
)


@pytest.fixture
def conn():
    db = Database()
    c = db.connect()
    c.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "name STRING NOT NULL, dept STRING, salary FLOAT, hired DATE)"
    )
    c.execute("CREATE INDEX emp_dept ON emp (dept)")
    rows = [
        ("ann", "eng", 100.0, "2001-01-01"),
        ("bob", "eng", 90.0, "2002-02-02"),
        ("cat", "ops", 80.0, "2003-03-03"),
        ("dan", "ops", 70.0, "2003-04-04"),
        ("eve", "hr", 60.0, "2003-05-05"),
    ]
    for r in rows:
        c.execute(
            "INSERT INTO emp (name, dept, salary, hired) VALUES (?, ?, ?, ?)", r
        )
    return c


class TestSelect:
    def test_where_eq_via_index(self, conn):
        rows = conn.execute("SELECT name FROM emp WHERE dept = 'eng' ORDER BY name").fetchall()
        assert rows == [("ann",), ("bob",)]

    def test_where_range(self, conn):
        rows = conn.execute("SELECT name FROM emp WHERE salary >= 80 ORDER BY salary").fetchall()
        assert rows == [("cat",), ("bob",), ("ann",)]

    def test_pk_lookup(self, conn):
        assert conn.execute("SELECT name FROM emp WHERE id = 3").scalar() == "cat"

    def test_star(self, conn):
        result = conn.execute("SELECT * FROM emp WHERE id = 1")
        assert result.columns == ("id", "name", "dept", "salary", "hired")
        assert result.fetchone()[1] == "ann"

    def test_date_comparison(self, conn):
        rows = conn.execute(
            "SELECT name FROM emp WHERE hired > ? ORDER BY name", (dt.date(2003, 1, 1),)
        ).fetchall()
        assert rows == [("cat",), ("dan",), ("eve",)]

    def test_order_desc_limit_offset(self, conn):
        rows = conn.execute(
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1"
        ).fetchall()
        assert rows == [("bob",), ("cat",)]

    def test_group_by(self, conn):
        rows = conn.execute(
            "SELECT dept, COUNT(*) n, AVG(salary) a FROM emp GROUP BY dept ORDER BY dept"
        ).fetchall()
        assert rows == [("eng", 2, 95.0), ("hr", 1, 60.0), ("ops", 2, 75.0)]

    def test_having(self, conn):
        rows = conn.execute(
            "SELECT dept, COUNT(*) n FROM emp GROUP BY dept HAVING n > 1 ORDER BY dept"
        ).fetchall()
        assert rows == [("eng", 2), ("ops", 2)]

    def test_count_empty(self, conn):
        assert conn.execute("SELECT COUNT(*) FROM emp WHERE dept = 'nope'").scalar() == 0

    def test_distinct(self, conn):
        rows = conn.execute("SELECT DISTINCT dept FROM emp ORDER BY dept").fetchall()
        assert rows == [("eng",), ("hr",), ("ops",)]

    def test_in_list_uses_index(self, conn):
        rows = conn.execute(
            "SELECT name FROM emp WHERE dept IN ('hr', 'ops') ORDER BY name"
        ).fetchall()
        assert rows == [("cat",), ("dan",), ("eve",)]

    def test_is_null(self, conn):
        conn.execute("INSERT INTO emp (name) VALUES ('zed')")
        rows = conn.execute("SELECT name FROM emp WHERE dept IS NULL").fetchall()
        assert rows == [("zed",)]

    def test_like(self, conn):
        rows = conn.execute("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name").fetchall()
        assert rows == [("ann",), ("cat",), ("dan",)]

    def test_unknown_column(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT nope FROM emp")

    def test_unknown_table(self, conn):
        with pytest.raises(SchemaError):
            conn.execute("SELECT a FROM missing")


class TestJoin:
    @pytest.fixture
    def jconn(self, conn):
        conn.execute(
            "CREATE TABLE dept (code STRING PRIMARY KEY, label STRING)"
        )
        for code, label in [("eng", "Engineering"), ("ops", "Operations")]:
            conn.execute("INSERT INTO dept (code, label) VALUES (?, ?)", (code, label))
        return conn

    def test_inner_join(self, jconn):
        rows = jconn.execute(
            "SELECT e.name, d.label FROM emp e JOIN dept d ON e.dept = d.code "
            "WHERE d.code = 'eng' ORDER BY e.name"
        ).fetchall()
        assert rows == [("ann", "Engineering"), ("bob", "Engineering")]

    def test_left_join_pads_nulls(self, jconn):
        rows = jconn.execute(
            "SELECT e.name, d.label FROM emp e LEFT JOIN dept d ON e.dept = d.code "
            "WHERE d.label IS NULL ORDER BY e.name"
        ).fetchall()
        assert rows == [("eve", None)]

    def test_cross_join_with_where(self, jconn):
        rows = jconn.execute(
            "SELECT e.name FROM emp e, dept d WHERE e.dept = d.code AND d.code = 'ops' "
            "ORDER BY e.name"
        ).fetchall()
        assert rows == [("cat",), ("dan",)]

    def test_ambiguous_column(self, jconn):
        jconn.execute("CREATE TABLE emp2 (name STRING)")
        with pytest.raises(ProgrammingError):
            jconn.execute("SELECT name FROM emp, emp2")

    def test_three_way_join(self, jconn):
        jconn.execute("CREATE TABLE loc (dcode STRING, city STRING)")
        jconn.execute("INSERT INTO loc (dcode, city) VALUES ('eng', 'LA')")
        rows = jconn.execute(
            "SELECT e.name, l.city FROM emp e "
            "JOIN dept d ON e.dept = d.code "
            "JOIN loc l ON l.dcode = d.code ORDER BY e.name"
        ).fetchall()
        assert rows == [("ann", "LA"), ("bob", "LA")]


class TestDML:
    def test_update_rowcount(self, conn):
        result = conn.execute("UPDATE emp SET salary = salary * 2 WHERE dept = 'ops'")
        assert result.rowcount == 2
        assert conn.execute("SELECT salary FROM emp WHERE name = 'cat'").scalar() == 160.0

    def test_delete_rowcount(self, conn):
        assert conn.execute("DELETE FROM emp WHERE dept = 'hr'").rowcount == 1
        assert conn.execute("SELECT COUNT(*) FROM emp").scalar() == 4

    def test_insert_lastrowid(self, conn):
        result = conn.execute("INSERT INTO emp (name) VALUES ('fred')")
        assert result.lastrowid == 6

    def test_unique_pk_violation(self, conn):
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")

    def test_multi_row_insert_atomic(self, conn):
        # Second row violates PK; the first must be rolled back too.
        with pytest.raises(IntegrityError):
            conn.execute(
                "INSERT INTO emp (id, name) VALUES (100, 'ok'), (1, 'dup')"
            )
        assert conn.execute("SELECT COUNT(*) FROM emp WHERE id = 100").scalar() == 0

    def test_update_atomic_on_unique_violation(self, conn):
        conn.execute("CREATE TABLE u (k INTEGER UNIQUE, v INTEGER)")
        conn.execute("INSERT INTO u (k, v) VALUES (1, 1), (2, 2), (10, 3)")
        with pytest.raises(IntegrityError):
            conn.execute("UPDATE u SET k = k + 1 WHERE k < 5")  # 1->2 collides
        assert sorted(conn.execute("SELECT k FROM u").fetchall()) == [(1,), (2,), (10,)]


class TestTransactions:
    def test_commit_persists(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO emp (name) VALUES ('tmp')")
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM emp").scalar() == 6

    def test_rollback_reverts_all(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO emp (name) VALUES ('tmp')")
        conn.execute("UPDATE emp SET salary = 0 WHERE name = 'ann'")
        conn.execute("DELETE FROM emp WHERE name = 'bob'")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        assert conn.execute("SELECT salary FROM emp WHERE name = 'ann'").scalar() == 100.0
        assert conn.execute("SELECT COUNT(*) FROM emp WHERE name = 'bob'").scalar() == 1

    def test_nested_begin_rejected(self, conn):
        conn.execute("BEGIN")
        with pytest.raises(TransactionError):
            conn.execute("BEGIN")
        conn.execute("ROLLBACK")

    def test_commit_without_begin(self, conn):
        with pytest.raises(TransactionError):
            conn.execute("COMMIT")

    def test_ddl_rejected_in_txn(self, conn):
        conn.execute("BEGIN")
        with pytest.raises(TransactionError):
            conn.execute("CREATE TABLE t2 (a INTEGER)")
        conn.execute("ROLLBACK")

    def test_failed_statement_inside_txn_keeps_earlier_work(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO emp (name) VALUES ('keep')")
        with pytest.raises(IntegrityError):
            conn.execute("INSERT INTO emp (id, name) VALUES (1, 'dup')")
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM emp WHERE name = 'keep'").scalar() == 1

    def test_context_manager_commits(self):
        db = Database()
        with db.connect() as c:
            c.execute("CREATE TABLE t (a INTEGER)")
            c.execute("BEGIN")
            c.execute("INSERT INTO t (a) VALUES (1)")
        assert db.connect().execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_closed_connection_rejects(self, conn):
        conn.close()
        with pytest.raises(ProgrammingError):
            conn.execute("SELECT 1 FROM emp")


class TestDDL:
    def test_if_not_exists(self, conn):
        conn.execute("CREATE TABLE IF NOT EXISTS emp (x INTEGER)")  # no error
        conn.execute("CREATE INDEX IF NOT EXISTS emp_dept ON emp (dept)")

    def test_drop_table(self, conn):
        conn.execute("CREATE TABLE scratch (a INTEGER)")
        conn.execute("DROP TABLE scratch")
        with pytest.raises(SchemaError):
            conn.execute("SELECT a FROM scratch")

    def test_drop_index_by_name_only(self, conn):
        conn.execute("DROP INDEX emp_dept")
        # Query still works, just unindexed
        assert conn.execute("SELECT COUNT(*) FROM emp WHERE dept = 'eng'").scalar() == 2

    def test_drop_missing_index(self, conn):
        with pytest.raises(SchemaError):
            conn.execute("DROP INDEX nope")
        conn.execute("DROP INDEX IF EXISTS nope")


class TestScript:
    def test_executescript(self):
        db = Database()
        c = db.connect()
        c.executescript(
            """
            CREATE TABLE a (x INTEGER);
            INSERT INTO a (x) VALUES (1);
            INSERT INTO a (x) VALUES (2);
            """
        )
        assert c.execute("SELECT SUM(x) FROM a").scalar() == 3

    def test_semicolon_inside_string(self):
        db = Database()
        c = db.connect()
        c.executescript("CREATE TABLE a (x STRING); INSERT INTO a (x) VALUES ('a;b')")
        assert c.execute("SELECT x FROM a").scalar() == "a;b"


class TestResultSet:
    def test_iteration_and_fetch(self, conn):
        result = conn.execute("SELECT name FROM emp ORDER BY name")
        assert result.fetchone() == ("ann",)
        rest = list(result)
        assert rest[0] == ("bob",) and len(rest) == 4
        assert result.fetchone() is None

    def test_as_dicts(self, conn):
        dicts = conn.execute("SELECT name, dept FROM emp WHERE id = 1").as_dicts()
        assert dicts == [{"name": "ann", "dept": "eng"}]

    def test_len(self, conn):
        assert len(conn.execute("SELECT name FROM emp")) == 5
