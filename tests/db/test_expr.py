"""Tests for expression evaluation (three-valued logic, binding)."""

import pytest

from repro.db.errors import ProgrammingError
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
    bind_parameters,
    conjuncts,
    count_parameters,
    like_to_regex,
)


def col(name):
    return ColumnRef(name)


class TestComparison:
    def test_equality(self):
        assert Comparison("=", col("a"), Literal(1)).eval({"a": 1}) is True
        assert Comparison("=", col("a"), Literal(1)).eval({"a": 2}) is False

    def test_null_is_unknown(self):
        assert Comparison("=", col("a"), Literal(1)).eval({"a": None}) is None

    def test_ordering(self):
        assert Comparison("<", col("a"), Literal(5)).eval({"a": 3}) is True
        assert Comparison(">=", col("a"), Literal(5)).eval({"a": 5}) is True

    def test_cross_type_equality_false(self):
        assert Comparison("=", col("a"), Literal("1")).eval({"a": 1}) is False

    def test_cross_type_ordering_total(self):
        # ints sort before strings in the engine's total order
        assert Comparison("<", col("a"), Literal("x")).eval({"a": 10**6}) is True


class TestLogic:
    def test_and_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        eq = lambda v: Comparison("=", v, Literal(True))
        assert And((eq(t), eq(t))).eval({}) is True
        assert And((eq(t), eq(f))).eval({}) is False
        # False AND NULL is False (short-circuit semantics)
        assert And((eq(f), eq(n))).eval({}) is False
        assert And((eq(t), eq(n))).eval({}) is None

    def test_or_truth_table(self):
        t, f, n = Literal(True), Literal(False), Literal(None)
        eq = lambda v: Comparison("=", v, Literal(True))
        assert Or((eq(f), eq(t))).eval({}) is True
        assert Or((eq(f), eq(f))).eval({}) is False
        assert Or((eq(t), eq(n))).eval({}) is True
        assert Or((eq(f), eq(n))).eval({}) is None

    def test_not(self):
        eq = Comparison("=", col("a"), Literal(1))
        assert Not(eq).eval({"a": 2}) is True
        assert Not(eq).eval({"a": None}) is None


class TestPredicates:
    def test_is_null(self):
        assert IsNull(col("a")).eval({"a": None}) is True
        assert IsNull(col("a")).eval({"a": 1}) is False
        assert IsNull(col("a"), negated=True).eval({"a": 1}) is True

    def test_in_list(self):
        expr = InList(col("a"), (Literal(1), Literal(2)))
        assert expr.eval({"a": 1}) is True
        assert expr.eval({"a": 3}) is False
        assert expr.eval({"a": None}) is None

    def test_in_list_with_null_option(self):
        expr = InList(col("a"), (Literal(1), Literal(None)))
        assert expr.eval({"a": 1}) is True
        assert expr.eval({"a": 3}) is None  # unknown, per SQL

    def test_not_in(self):
        expr = InList(col("a"), (Literal(1),), negated=True)
        assert expr.eval({"a": 2}) is True
        assert expr.eval({"a": 1}) is False

    def test_between(self):
        expr = Between(col("a"), Literal(1), Literal(10))
        assert expr.eval({"a": 5}) is True
        assert expr.eval({"a": 11}) is False
        assert expr.eval({"a": None}) is None
        assert Between(col("a"), Literal(1), Literal(10), negated=True).eval({"a": 11}) is True

    def test_like(self):
        expr = Like(col("a"), Literal("ab%"))
        assert expr.eval({"a": "abc"}) is True
        assert expr.eval({"a": "xbc"}) is False
        assert Like(col("a"), Literal("a_c")).eval({"a": "abc"}) is True
        assert expr.eval({"a": None}) is None

    def test_like_special_chars_escaped(self):
        assert Like(col("a"), Literal("a.c")).eval({"a": "abc"}) is False
        assert Like(col("a"), Literal("a.c")).eval({"a": "a.c"}) is True

    def test_like_to_regex(self):
        assert like_to_regex("%x_z%").match("AAxYzBB")


class TestArithmetic:
    def test_ops(self):
        assert Arithmetic("+", Literal(2), Literal(3)).eval({}) == 5
        assert Arithmetic("*", Literal(2), Literal(3)).eval({}) == 6
        assert Arithmetic("/", Literal(7), Literal(2)).eval({}) == 3.5
        assert Arithmetic("%", Literal(7), Literal(2)).eval({}) == 1

    def test_null_propagates(self):
        assert Arithmetic("+", Literal(None), Literal(3)).eval({}) is None


class TestFunctions:
    def test_known(self):
        assert FunctionCall("LOWER", (Literal("AbC"),)).eval({}) == "abc"
        assert FunctionCall("COALESCE", (Literal(None), Literal(2))).eval({}) == 2

    def test_unknown(self):
        with pytest.raises(ProgrammingError):
            FunctionCall("NOPE", ()).eval({})


class TestColumnRef:
    def test_qualified_lookup(self):
        ref = ColumnRef("a", table="t")
        assert ref.eval({"t.a": 5}) == 5

    def test_qualified_falls_back_to_bare(self):
        ref = ColumnRef("a", table="t")
        assert ref.eval({"a": 5}) == 5

    def test_missing_raises(self):
        with pytest.raises(ProgrammingError):
            ColumnRef("a").eval({})


class TestBinding:
    def test_bind_simple(self):
        expr = Comparison("=", col("a"), Parameter(0))
        bound = bind_parameters(expr, (42,))
        assert bound.right == Literal(42)
        # Original untouched (statements are cached and shared)
        assert expr.right == Parameter(0)

    def test_bind_nested(self):
        expr = And((
            InList(col("a"), (Parameter(0), Parameter(1))),
            Between(col("b"), Parameter(2), Literal(10)),
        ))
        bound = bind_parameters(expr, (1, 2, 3))
        assert bound.parts[0].options == (Literal(1), Literal(2))
        assert bound.parts[1].low == Literal(3)

    def test_too_few_params(self):
        with pytest.raises(ProgrammingError):
            bind_parameters(Parameter(2), (1,))

    def test_unbound_parameter_eval_raises(self):
        with pytest.raises(ProgrammingError):
            Parameter(0).eval({})

    def test_count_parameters(self):
        expr = And((
            Comparison("=", col("a"), Parameter(0)),
            Like(col("b"), Parameter(3)),
        ))
        assert count_parameters(expr) == 4
        assert count_parameters(None) == 0


class TestConjuncts:
    def test_flattening(self):
        a = Comparison("=", col("a"), Literal(1))
        b = Comparison("=", col("b"), Literal(2))
        c = Comparison("=", col("c"), Literal(3))
        nested = And((a, And((b, c))))
        assert conjuncts(nested) == [a, b, c]

    def test_or_not_flattened(self):
        o = Or((Comparison("=", col("a"), Literal(1)),))
        assert conjuncts(o) == [o]

    def test_none(self):
        assert conjuncts(None) == []
