"""Unit + property tests for the B+tree index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.btree import BPlusTree
from repro.db.errors import IntegrityError


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(("x",)) == []
        assert list(tree.range()) == []

    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert(("a",), 1)
        tree.insert(("b",), 2)
        assert tree.get(("a",)) == [1]
        assert tree.get(("b",)) == [2]
        assert tree.get(("c",)) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        for rid in (3, 1, 2):
            tree.insert(("k",), rid)
        assert tree.get(("k",)) == [1, 2, 3]
        assert len(tree) == 3

    def test_duplicate_posting_idempotent(self):
        tree = BPlusTree()
        tree.insert(("k",), 1)
        tree.insert(("k",), 1)
        assert tree.get(("k",)) == [1]
        assert len(tree) == 1

    def test_unique_violation(self):
        tree = BPlusTree(unique=True, name="u")
        tree.insert(("k",), 1)
        with pytest.raises(IntegrityError):
            tree.insert(("k",), 2)

    def test_delete(self):
        tree = BPlusTree()
        tree.insert(("k",), 1)
        tree.insert(("k",), 2)
        assert tree.delete(("k",), 1) is True
        assert tree.get(("k",)) == [2]
        assert tree.delete(("k",), 1) is False
        assert tree.delete(("missing",), 9) is False

    def test_clear(self):
        tree = BPlusTree()
        tree.insert(("a",), 1)
        tree.clear()
        assert len(tree) == 0
        assert tree.get(("a",)) == []


class TestSplitsAndOrder:
    def test_many_inserts_stay_sorted(self):
        tree = BPlusTree(order=4)
        for i in range(500):
            tree.insert((i * 37 % 500,), i)
        tree.check_invariants()
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(tree) == 500

    def test_range_scan(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert((i,), i)
        assert sorted(tree.range((10,), (20,))) == list(range(10, 21))
        assert sorted(tree.range((10,), (20,), low_inclusive=False, high_inclusive=False)) == list(range(11, 20))
        assert sorted(tree.range(None, (5,))) == list(range(0, 6))
        assert sorted(tree.range((95,), None)) == list(range(95, 100))

    def test_prefix_scan_composite(self):
        tree = BPlusTree(order=4)
        for a in range(5):
            for b in range(10):
                tree.insert((a, b), a * 100 + b)
        assert sorted(tree.prefix((2,))) == [200 + b for b in range(10)]
        assert sorted(tree.prefix((2, 3))) == [203]
        assert list(tree.prefix((9,))) == []

    def test_scan_all_in_key_order(self):
        tree = BPlusTree(order=4)
        import random

        rng = random.Random(7)
        values = list(range(200))
        rng.shuffle(values)
        for v in values:
            tree.insert((v,), v)
        assert list(tree.scan_all()) == sorted(values)

    def test_null_keys_sort_first(self):
        tree = BPlusTree()
        tree.insert(("b",), 2)
        tree.insert((None,), 1)
        tree.insert(("a",), 3)
        assert list(tree.scan_all()) == [1, 3, 2]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=30),  # key
            st.integers(min_value=0, max_value=10),  # rowid
        ),
        max_size=300,
    )
)
def test_property_matches_dict_model(ops):
    """The tree behaves like a dict[key, set[rowid]] under random ops."""
    tree = BPlusTree(order=4)
    model: dict[int, set[int]] = {}
    for op, key, rid in ops:
        if op == "insert":
            tree.insert((key,), rid)
            model.setdefault(key, set()).add(rid)
        else:
            expected = key in model and rid in model[key]
            assert tree.delete((key,), rid) is expected
            if expected:
                model[key].discard(rid)
                if not model[key]:
                    del model[key]
    tree.check_invariants()
    for key, rids in model.items():
        assert set(tree.get((key,))) == rids
    assert len(tree) == sum(len(v) for v in model.values())
    assert list(tree.scan_all()) == [
        rid for key in sorted(model) for rid in sorted(model[key])
    ]


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200),
    bounds=st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000)),
)
def test_property_range_scan_equals_filter(keys, bounds):
    low, high = min(bounds), max(bounds)
    tree = BPlusTree(order=4)
    for i, key in enumerate(keys):
        tree.insert((key,), i)
    expected = sorted(
        (key, i) for i, key in enumerate(keys) if low <= key <= high
    )
    got = list(tree.range((low,), (high,)))
    assert [keys[rid] for rid in got] == [k for k, _ in expected]
