"""Fuzzing the SQL front end: arbitrary input must fail *cleanly*.

Whatever bytes arrive, the lexer/parser may only raise SQLSyntaxError —
never IndexError, RecursionError, or silent hangs — and valid statements
must round-trip through the statement cache deterministically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.errors import DatabaseError, SQLSyntaxError
from repro.db.sql.lexer import tokenize
from repro.db.sql.parser import parse_statement


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=120))
def test_lexer_total(text):
    """tokenize() either succeeds or raises SQLSyntaxError."""
    try:
        tokens = tokenize(text)
    except SQLSyntaxError:
        return
    assert tokens[-1].type.name == "EOF"


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=120))
def test_parser_total_on_arbitrary_text(text):
    try:
        parse_statement(text)
    except SQLSyntaxError:
        pass


_SQL_WORDS = st.sampled_from(
    "SELECT FROM WHERE AND OR NOT INSERT INTO VALUES UPDATE SET DELETE "
    "CREATE TABLE INDEX JOIN LEFT ON GROUP BY ORDER LIMIT ( ) , ; = < > "
    "* ? 'x' 1 2.5 t a b NULL LIKE IN BETWEEN IS AS DISTINCT COUNT".split()
)


@settings(max_examples=300, deadline=None)
@given(st.lists(_SQL_WORDS, max_size=25))
def test_parser_total_on_sql_shaped_soup(words):
    """Keyword soup — much better at hitting deep parser states."""
    text = " ".join(words)
    try:
        parse_statement(text)
    except SQLSyntaxError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.lists(_SQL_WORDS, max_size=20))
def test_execute_never_corrupts_engine(words):
    """Even statements that parse but fail to plan/execute must leave the
    database usable and raise only DatabaseError subclasses."""
    db = Database()
    conn = db.connect()
    conn.execute("CREATE TABLE t (a INTEGER)")
    conn.execute("INSERT INTO t (a) VALUES (1)")
    text = " ".join(words)
    try:
        conn.execute(text)
    except DatabaseError:
        pass
    # The engine must still work afterwards.
    assert conn.execute("SELECT COUNT(*) FROM t").scalar() >= 1
