"""Model-based property test: the engine vs a naive Python model.

Hypothesis drives random insert/update/delete/select operations against
one table through the SQL engine and a plain list-of-dicts model; any
divergence in query results or row counts is a bug in the engine (or the
model, which is simple enough to trust).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.db.types import sort_key

COLUMNS = ("k", "s")


def fresh():
    db = Database()
    conn = db.connect()
    conn.execute(
        "CREATE TABLE m (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "k INTEGER, s STRING)"
    )
    conn.execute("CREATE INDEX m_k ON m (k)")
    return conn


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(min_value=-5, max_value=5),
            st.sampled_from(["a", "b", "c", None]),
        ),
        st.tuples(st.just("delete_eq"), st.integers(-5, 5)),
        st.tuples(
            st.just("update"),
            st.integers(-5, 5),
            st.integers(-5, 5),
        ),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops, probe=st.integers(-5, 5))
def test_engine_matches_model(ops, probe):
    conn = fresh()
    model: list[dict] = []
    next_id = 1
    for op in ops:
        if op[0] == "insert":
            _, k, s = op
            conn.execute("INSERT INTO m (k, s) VALUES (?, ?)", (k, s))
            model.append({"id": next_id, "k": k, "s": s})
            next_id += 1
        elif op[0] == "delete_eq":
            _, k = op
            result = conn.execute("DELETE FROM m WHERE k = ?", (k,))
            expected = [r for r in model if r["k"] == k]
            assert result.rowcount == len(expected)
            model = [r for r in model if r["k"] != k]
        elif op[0] == "update":
            _, old, new = op
            result = conn.execute("UPDATE m SET k = ? WHERE k = ?", (new, old))
            expected = [r for r in model if r["k"] == old]
            assert result.rowcount == len(expected)
            for r in model:
                if r["k"] == old:
                    r["k"] = new

    # Full scan agreement
    got = conn.execute("SELECT id, k, s FROM m ORDER BY id").fetchall()
    want = [(r["id"], r["k"], r["s"]) for r in sorted(model, key=lambda r: r["id"])]
    assert got == want

    # Point query agreement (exercises the index)
    got = sorted(conn.execute("SELECT id FROM m WHERE k = ?", (probe,)).fetchall())
    want = sorted((r["id"],) for r in model if r["k"] == probe)
    assert got == want

    # Range query agreement
    got = sorted(conn.execute("SELECT id FROM m WHERE k >= ?", (probe,)).fetchall())
    want = sorted((r["id"],) for r in model if r["k"] is not None and r["k"] >= probe)
    assert got == want

    # Aggregate agreement
    count = conn.execute("SELECT COUNT(*) FROM m").scalar()
    assert count == len(model)
    if model and any(r["k"] is not None for r in model):
        got_min = conn.execute("SELECT MIN(k) FROM m").scalar()
        want_min = min(
            (r["k"] for r in model if r["k"] is not None), key=sort_key
        )
        assert got_min == want_min


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-3, 3), min_size=1, max_size=30),
    low=st.integers(-3, 3),
    high=st.integers(-3, 3),
)
def test_between_matches_filter(values, low, high):
    conn = fresh()
    for v in values:
        conn.execute("INSERT INTO m (k, s) VALUES (?, 'x')", (v,))
    got = conn.execute(
        "SELECT COUNT(*) FROM m WHERE k BETWEEN ? AND ?", (low, high)
    ).scalar()
    assert got == sum(1 for v in values if low <= v <= high)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["aa", "ab", "ba", "bb", ""]), max_size=25))
def test_like_matches_filter(strings):
    conn = fresh()
    for s in strings:
        conn.execute("INSERT INTO m (k, s) VALUES (0, ?)", (s,))
    got = conn.execute("SELECT COUNT(*) FROM m WHERE s LIKE 'a%'").scalar()
    assert got == sum(1 for s in strings if s.startswith("a"))
