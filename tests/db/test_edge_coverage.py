"""Edge-case coverage: recovery errors, B+tree boundaries, misc branches."""

import json
import os

import pytest

from repro.db import Database
from repro.db.btree import BPlusTree
from repro.db.errors import RecoveryError
from repro.db.wal import SNAPSHOT_NAME, load_snapshot
from repro.db.storage import Catalog


class TestRecoveryErrors:
    def test_corrupt_snapshot_raises_recovery_error(self, tmp_path):
        (tmp_path / SNAPSHOT_NAME).write_text("{not json")
        with pytest.raises(RecoveryError):
            load_snapshot(Catalog(), str(tmp_path))

    def test_unknown_wal_value_tag(self):
        from repro.db.wal import decode_value

        with pytest.raises(RecoveryError):
            decode_value({"t": "quaternion", "v": "1"})

    def test_unknown_wal_op(self, tmp_path):
        db = Database(directory=str(tmp_path))
        db.connect().execute("CREATE TABLE t (a INTEGER)")
        db.close()
        wal = tmp_path / "wal.log"
        with open(wal, "a") as fh:
            fh.write(json.dumps({"txn": 99, "op": "frobnicate", "table": "t"}) + "\n")
            fh.write(json.dumps({"txn": 99, "op": "commit"}) + "\n")
        with pytest.raises(RecoveryError):
            Database(directory=str(tmp_path))


class TestBTreeBoundaries:
    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)

    def test_prefix_on_empty_tree(self):
        assert list(BPlusTree().prefix(("x",))) == []

    def test_range_on_single_key(self):
        tree = BPlusTree()
        tree.insert((5,), 1)
        assert list(tree.range((5,), (5,))) == [1]
        assert list(tree.range((5,), (5,), low_inclusive=False)) == []
        assert list(tree.range((5,), (5,), high_inclusive=False)) == []

    def test_key_count_vs_len(self):
        tree = BPlusTree()
        tree.insert(("a",), 1)
        tree.insert(("a",), 2)
        tree.insert(("b",), 3)
        assert tree.key_count == 2
        assert len(tree) == 3

    def test_deep_tree_invariants_after_churn(self):
        tree = BPlusTree(order=4)
        for i in range(300):
            tree.insert((i % 40,), i)
        for i in range(0, 300, 3):
            tree.delete((i % 40,), i)
        tree.check_invariants()


class TestDatatypeEdges:
    def test_boolean_column_round_trip(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (flag BOOLEAN)")
        conn.execute("INSERT INTO t (flag) VALUES (TRUE), (FALSE), (NULL)")
        rows = conn.execute("SELECT flag FROM t").fetchall()
        assert rows == [(True,), (False,), (None,)]
        assert conn.execute(
            "SELECT COUNT(*) FROM t WHERE flag = TRUE"
        ).scalar() == 1

    def test_time_column(self):
        import datetime as dt

        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (at TIME)")
        conn.execute("INSERT INTO t (at) VALUES (?)", (dt.time(10, 30),))
        assert conn.execute("SELECT at FROM t").scalar() == dt.time(10, 30)

    def test_very_long_strings(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (v STRING)")
        big = "x" * 100_000
        conn.execute("INSERT INTO t (v) VALUES (?)", (big,))
        assert conn.execute("SELECT LENGTH(v) FROM t").scalar() == 100_000

    def test_unicode_strings_in_index(self):
        db = Database()
        conn = db.connect()
        conn.execute("CREATE TABLE t (v STRING)")
        conn.execute("CREATE INDEX i ON t (v)")
        conn.execute("INSERT INTO t (v) VALUES ('ünïcødé ✓')")
        assert conn.execute(
            "SELECT COUNT(*) FROM t WHERE v = 'ünïcødé ✓'"
        ).scalar() == 1


class TestConsistencyEdges:
    def test_propagate_with_single_copy(self):
        from repro.consistency import ConsistencyManager
        from repro.core import MCSClient, MCSService
        from repro.gridftp import GridFTPServer, StorageSite
        from repro.rls import LocalReplicaCatalog, ReplicaLocationIndex, RLSClient

        mcs = MCSClient.in_process(MCSService(), caller="c")
        site = StorageSite("only")
        gridftp = GridFTPServer({"only": site})
        lrcs = {"lrc-only": LocalReplicaCatalog("lrc-only")}
        rls = RLSClient(ReplicaLocationIndex(), lrcs)
        manager = ConsistencyManager(mcs, rls, gridftp)

        site.store("solo.dat", b"v1")
        mcs.create_logical_file("solo.dat")
        lrcs["lrc-only"].add_mapping("solo.dat", "gsiftp://only/solo.dat")
        rls.refresh_all()
        manager.designate_master("solo.dat", "gsiftp://only/solo.dat")
        # Master is its own sole replica: nothing to propagate or repair.
        assert manager.update_master("solo.dat", b"v2") == 0
        assert manager.repair("solo.dat") == 0
        states = manager.audit("solo.dat")
        assert len(states) == 1 and states[0].state.name == "MASTER"


class TestXmlBackendEdges:
    def test_xpath_cache_bounded(self):
        from repro.core.xmlbackend import XmlMetadataBackend

        backend = XmlMetadataBackend()
        backend.create_file("f", attributes={"a": 1})
        for i in range(4100):
            backend.query_files_by_attributes({"a": i})
        assert len(backend._xpath_cache) <= 4101

    def test_unindexed_backend_still_correct(self):
        from repro.core.xmlbackend import XmlMetadataBackend

        backend = XmlMetadataBackend(index_names=False)
        backend.create_file("f1", attributes={"a": 1})
        backend.create_file("f2", attributes={"a": 2})
        assert backend.query_files_by_attributes({"a": 2}) == ["f2"]
