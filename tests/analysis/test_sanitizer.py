"""Lock-order sanitizer: detection, reentrancy, installation hygiene."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import sanitizer
from repro.core import MCSClient, MCSService, ObjectQuery
from repro.db import txn as _txn
from repro.db.errors import LockTimeoutError


@pytest.fixture()
def san():
    with sanitizer.enabled() as active:
        yield active


class TestOrderGraph:
    def test_consistent_order_stays_silent(self, san) -> None:
        a, b = _txn.RWLock("a"), _txn.RWLock("b")
        for _ in range(3):
            a.acquire_write("o", 1.0)
            b.acquire_write("o", 1.0)
            b.release("o", True)
            a.release("o", True)
        assert san.violations == 0
        assert san.order_graph() == {"a": {"b"}}

    def test_seeded_inversion_raises_before_blocking(self, san) -> None:
        """The acceptance demo: a -> b established, then b -> a trips."""
        a, b = _txn.RWLock("a"), _txn.RWLock("b")
        a.acquire_write("o", 1.0)
        b.acquire_write("o", 1.0)
        b.release("o", True)
        a.release("o", True)

        b.acquire_write("o", 1.0)
        with pytest.raises(sanitizer.LockOrderViolation) as exc:
            a.acquire_write("o", 1.0)
        b.release("o", True)
        assert san.violations == 1
        assert set(exc.value.cycle) == {"a", "b"}
        # The violating acquisition never went through, so nothing hangs.
        a.acquire_write("o", 1.0)
        a.release("o", True)

    def test_transitive_inversion_detected(self, san) -> None:
        """a -> b and b -> c established; c -> a closes the cycle."""
        a, b, c = _txn.RWLock("a"), _txn.RWLock("b"), _txn.RWLock("c")
        a.acquire_read("o", 1.0)
        b.acquire_read("o", 1.0)
        c.acquire_read("o", 1.0)
        for lock in (c, b, a):
            lock.release("o", False)

        c.acquire_read("o", 1.0)
        with pytest.raises(sanitizer.LockOrderViolation) as exc:
            a.acquire_read("o", 1.0)
        c.release("o", False)
        cycle = list(exc.value.cycle)
        # The reported path runs a -> ... -> c and closes back on a;
        # whether it goes via b or the direct a -> c edge is unspecified.
        assert cycle[0] == "a" and cycle[-1] == "a" and "c" in cycle

    def test_reentrant_reacquire_is_not_an_inversion(self, san) -> None:
        a, b = _txn.RWLock("a"), _txn.RWLock("b")
        a.acquire_read("o", 1.0)
        b.acquire_read("o", 1.0)
        # Re-entering and upgrading a held lock must not re-enter the
        # order check (an upgrade of `a` while holding `b` would
        # otherwise look like b -> a).
        a.acquire_read("o", 1.0)
        a.acquire_write("o", 1.0)
        a.release("o", True)
        a.release("o", False)
        a.release("o", False)
        b.release("o", False)
        assert san.violations == 0

    def test_same_names_different_locks_do_not_collide(self, san) -> None:
        """Two databases share table names; ordering is per lock object."""
        a1, b1 = _txn.RWLock("t"), _txn.RWLock("u")
        a2, b2 = _txn.RWLock("u"), _txn.RWLock("t")
        a1.acquire_read("o", 1.0)
        b1.acquire_read("o", 1.0)
        b1.release("o", False)
        a1.release("o", False)
        # Opposite *name* order on unrelated locks: fine.
        a2.acquire_read("o", 1.0)
        b2.acquire_read("o", 1.0)
        b2.release("o", False)
        a2.release("o", False)
        assert san.violations == 0

    def test_held_by_current_thread_reports_names(self, san) -> None:
        a, b = _txn.RWLock("a"), _txn.RWLock("b")
        a.acquire_read("o", 1.0)
        b.acquire_read("o", 1.0)
        assert san.held_by_current_thread() == ("a", "b")
        b.release("o", False)
        a.release("o", False)
        assert san.held_by_current_thread() == ()

    def test_timeouts_are_counted(self, san) -> None:
        lock = _txn.RWLock("t")
        lock.acquire_write("owner-1", 1.0)
        with pytest.raises(LockTimeoutError):
            lock.acquire_write("owner-2", 0.01)
        lock.release("owner-1", True)
        assert san.timeouts_observed == 1
        assert san.violations == 0

    def test_reset_clears_graph_and_counters(self, san) -> None:
        a, b = _txn.RWLock("a"), _txn.RWLock("b")
        a.acquire_read("o", 1.0)
        b.acquire_read("o", 1.0)
        b.release("o", False)
        a.release("o", False)
        san.reset()
        assert san.order_graph() == {}
        assert san.violations == 0


class TestInstallation:
    def test_enabled_restores_pristine_methods(self) -> None:
        before = (
            _txn.RWLock.acquire_read,
            _txn.RWLock.acquire_write,
            _txn.RWLock.release,
        )
        with sanitizer.enabled():
            assert _txn.RWLock.acquire_read is not before[0]
            assert sanitizer.active() is not None
        assert (
            _txn.RWLock.acquire_read,
            _txn.RWLock.acquire_write,
            _txn.RWLock.release,
        ) == before
        assert sanitizer.active() is None

    def test_install_is_idempotent(self) -> None:
        first = sanitizer.install()
        try:
            assert sanitizer.install() is first
        finally:
            sanitizer.uninstall()
            sanitizer.uninstall()  # second uninstall is a no-op

    def test_install_from_env(self, monkeypatch: pytest.MonkeyPatch) -> None:
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert sanitizer.install_from_env() is None
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        try:
            assert sanitizer.install_from_env() is not None
            assert sanitizer.active() is not None
        finally:
            sanitizer.uninstall()


class TestEngineUnderSanitizer:
    def test_catalog_write_read_cycle_stays_clean(self, san) -> None:
        """A real multi-table workload through the engine: the sorted
        acquisition order must never trip the sanitizer."""
        service = MCSService()
        client = MCSClient.in_process(service, caller="san")
        client.define_attribute("k", "int")
        for i in range(5):
            client.create_logical_file(f"f{i}", attributes={"k": i})
        assert client.query(ObjectQuery().where("k", "=", 3)) == ["f3"]
        client.set_attributes("file", "f3", {"k": 30})
        client.delete_logical_file("f0")
        assert san.violations == 0
        # The engine really ran under instrumentation.
        assert san.order_graph()

    def test_concurrent_clients_stay_clean(self, san) -> None:
        service = MCSService()
        setup = MCSClient.in_process(service, caller="setup")
        setup.define_attribute("n", "int")
        errors: list[BaseException] = []

        def worker(w: int) -> None:
            client = MCSClient.in_process(service, caller=f"w{w}")
            try:
                for i in range(10):
                    client.create_logical_file(f"w{w}-{i}", attributes={"n": i})
                    client.query(ObjectQuery().where("n", "=", i))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, f"errors under sanitizer: {errors!r}"
        assert san.violations == 0
