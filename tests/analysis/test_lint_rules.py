"""Every rule flags its fixture at exactly the marked lines.

Each fixture under ``fixtures/repro/`` tags its violations with a
trailing ``# lint-expect: MCS0xx`` comment; the shared harness diffs
the linter's findings against those markers, so rule id, file *and*
line are all asserted exactly (and unmarked lines are asserted clean).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import rules as _rules  # noqa: F401 - populates registry
from repro.analysis.lint import run_paths

from tests.analysis.harness import (
    assert_findings_match,
    expected_markers,
    expected_tree_markers,
)

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

RULE_FIXTURES = [
    ("MCS001", "viol_storage_imports.py"),
    ("MCS002", "viol_commit_no_bump.py"),
    ("MCS003", "viol_cache_conn.py"),
    ("MCS004", "viol_fault_codes.py"),
    ("MCS005", "viol_metric_names.py"),
    ("MCS006", "viol_query_shims.py"),
    ("MCS007", "viol_raw_locks.py"),
    ("MCS008", "viol_print_logging.py"),
    ("MCS009", "viol_swallowed_transport.py"),
    ("MCS010", "viol_unspanned_dispatch.py"),
    ("MCS011", "viol_blocking_in_coroutine.py"),
]


@pytest.mark.parametrize("rule_id,fixture", RULE_FIXTURES)
def test_rule_flags_fixture_at_exact_lines(rule_id: str, fixture: str) -> None:
    path = FIXTURES / fixture
    expected = expected_markers(path)
    assert expected, f"fixture {fixture} carries no lint-expect markers"
    findings = run_paths([path], select=[rule_id])
    assert_findings_match(
        findings, {(fixture, line, rule) for line, rule in expected}
    )


def test_full_registry_run_matches_every_marker() -> None:
    """All rules together over the whole fixture tree: the union of the
    markers, nothing more (no rule bleeds onto another's fixture) and
    nothing less."""
    assert_findings_match(
        run_paths([FIXTURES]), expected_tree_markers(FIXTURES)
    )


def test_clean_fixture_has_no_findings() -> None:
    assert run_paths([FIXTURES / "clean_module.py"]) == []


def test_select_restricts_to_requested_rules() -> None:
    findings = run_paths([FIXTURES], select=["MCS006"])
    assert findings
    assert {f.rule_id for f in findings} == {"MCS006"}


def test_mcs011_flags_rwlock_acquire_in_coroutine(tmp_path: Path) -> None:
    """RWLock acquisition in a coroutine is MCS011 territory too.

    Not part of the fixture tree because the same line would also trip
    MCS007 (raw lock acquisition outside the engine), and the fixture
    tests assert exactly one rule per fixture.
    """
    module = tmp_path / "coroutine_locks.py"
    module.write_text(
        "async def bad(lock):\n"
        "    lock.acquire_read()\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        lock.release_read()\n"
    )
    findings = run_paths([module], select=["MCS011"])
    assert [(f.line, f.rule_id) for f in findings] == [(2, "MCS011")]


def test_src_tree_is_clean() -> None:
    """The acceptance gate: the shipped tree must lint clean."""
    src = Path(__file__).parents[2] / "src" / "repro"
    findings = run_paths([src])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_examples_are_clean() -> None:
    examples = Path(__file__).parents[2] / "examples"
    findings = run_paths([examples])
    assert findings == [], "\n".join(f.render() for f in findings)
