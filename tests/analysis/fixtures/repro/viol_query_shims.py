"""MCS006 fixture: callers of the deprecated 2003-era query shims."""


def discover(client):
    hits = client.query_files_by_attributes({"a": 1})  # lint-expect: MCS006
    more = client.simple_query("data_type", "gwf")  # lint-expect: MCS006
    return hits + more


def modern(client, query):
    return client.query(query)
