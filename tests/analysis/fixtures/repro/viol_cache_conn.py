"""MCS003 fixture: shared-cache lookups that defeat the bypass."""


def probe(cache, conn, key):
    cache.lookup_attr_def("exp")  # lint-expect: MCS003
    cache.lookup_object_id(None, "file", "f1")  # lint-expect: MCS003
    cache.lookup_query(conn=None, key=key)  # lint-expect: MCS003
    cache._lookup("query", key)  # lint-expect: MCS003

    cache.lookup_attr_def(conn, "exp")
    cache.lookup_object_id(conn, "file", "f1")
    cache.lookup_query(key, conn=conn)
