"""A module every rule must leave alone (the zero-findings control)."""

from repro.db import engine


def well_behaved(client, query, log):
    log.info("querying")
    return client.query(query), engine
