"""MCS004 fixture: fault-code literals minted outside the table."""


def handle(request, SoapFault):
    if request is None:
        raise SoapFault("MCS.Oops", "boom")  # lint-expect: MCS004
    code = "MCS.NotFound"  # lint-expect: MCS004
    prefix = "MCS."  # bare prefix is not a code
    label = "MCSomething"  # no dot: not a fault code
    return code, prefix, label
