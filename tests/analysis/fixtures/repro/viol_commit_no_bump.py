"""MCS002 fixture: commit paths that forget the generation bump.

Findings anchor at the ``def`` line of the offending function.
"""


class FakeEngine:
    def commit_without_bump(self, records):  # lint-expect: MCS002
        self.wal.wal_commit(records)
        self.release_locks()

    def bump_before_commit(self, records):  # lint-expect: MCS002
        # Bumping first is as wrong as not bumping: a reader between the
        # bump and the commit re-caches the pre-commit state.
        self.generations.bump(self.tables)
        self.wal.wal_commit(records)

    def commit_with_bump(self, records):
        self.wal.wal_commit(records)
        self.generations.bump(self.tables)
        self.release_locks()

    def commit_with_helper_bump(self, records):
        self.wal.wal_commit(records)
        self._bump_generations()

    def no_commit_here(self):
        self.release_locks()
