"""MCS009 fixture: handlers that swallow TransportError silently."""

from repro.soap.errors import TransportError


def fire_and_forget(transport):
    try:
        transport.call("ping", {})
    except TransportError:  # lint-expect: MCS009
        pass


def sweep(transports):
    alive = []
    for transport in transports:
        try:
            alive.append(transport.call("ping", {}))
        except (ValueError, TransportError):  # lint-expect: MCS009
            continue
    return alive


def documented_silence(transport):
    try:
        return transport.call("stats", {})
    except TransportError:  # lint-expect: MCS009
        """Failures here are fine, probably."""


def recorded(transport, log):
    try:
        return transport.call("ping", {})
    except TransportError as exc:
        log.warning("ping failed", extra={"error": str(exc)})
        return None


def reraised(transport):
    try:
        return transport.call("ping", {})
    except TransportError:
        raise
