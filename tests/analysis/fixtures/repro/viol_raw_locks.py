"""MCS007 fixture: raw lock acquisition outside the engine."""


def grab(lock, owner):
    lock.acquire_write(owner, 5.0)  # lint-expect: MCS007
    try:
        lock.acquire_read(owner, 5.0)  # lint-expect: MCS007
    finally:
        lock.release(owner, True)
