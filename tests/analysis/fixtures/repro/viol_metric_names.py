"""MCS005 fixture: metric families outside the declared registry."""


def build(counter, gauge, histogram):
    undeclared = counter(  # lint-expect: MCS005
        "mcs_fixture_only_total", "never declared"
    )
    misshapen = histogram("request_seconds", "no mcs_ prefix")  # lint-expect: MCS005
    shouting = gauge("mcs_UPPER_depth", "bad characters")  # lint-expect: MCS005
    declared = counter("mcs_soap_requests_total", "fine: declared")
    dynamic = counter(f"mcs_{build.__name__}_total", "non-literal: out of scope")
    return undeclared, misshapen, shouting, declared, dynamic
