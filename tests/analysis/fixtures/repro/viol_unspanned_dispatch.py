"""MCS010 fixture: dispatch/ship paths that never open a span."""

from repro.obs import trace as _trace


class FederatedMCS:
    def _subquery(self, catalog_id, member, query):  # lint-expect: MCS010
        return member.client.query(query)


class Replica:
    def _ship(self, records, bounded):  # lint-expect: MCS010
        self._apply_batch(records)

    def _apply_batch(self, records):
        return len(records)


class PeriodicUpdater:
    def tick(self):  # lint-expect: MCS010
        self.consumer(self.producer())
        return True


class SoapDispatcher:
    def dispatch(self, payload):  # lint-expect: MCS010
        return self.run(self.parse(payload))


class SpannedUpdater:
    def tick(self):
        with _trace.span("rls.update", updater="u"):
            self.consumer(self.producer())
            return True


class SpannedDispatcher(SoapDispatcher):
    def dispatch(self, payload):
        with _trace.span("soap.server", method="m"):
            return self.run(self.parse(payload))
