"""MCS011 fixture: blocking calls inside coroutine bodies.

Only the calls executed by the coroutine itself are violations; blocking
work wrapped in a nested ``def`` (the executor-handoff idiom) and plain
synchronous functions are fine.
"""

import asyncio
import socket
import time


async def bad_sleep():
    time.sleep(0.1)  # lint-expect: MCS011


async def bad_file_read(path):
    fh = open(path)  # lint-expect: MCS011
    return fh.read()


async def bad_dial(host, port):
    return socket.create_connection((host, port))  # lint-expect: MCS011


async def bad_listen():
    return socket.create_server(("127.0.0.1", 0))  # lint-expect: MCS011


async def bad_raw_socket():
    return socket.socket(socket.AF_INET, socket.SOCK_STREAM)  # lint-expect: MCS011


async def good_sleep():
    await asyncio.sleep(0.1)


async def good_executor_handoff(loop, path):
    def read():
        with open(path) as fh:
            return fh.read()

    return await loop.run_in_executor(None, read)


async def good_lambda_handoff(loop):
    return await loop.run_in_executor(None, lambda: time.sleep(0.0))


def sync_callers_are_fine(path):
    time.sleep(0.0)
    with open(path) as fh:
        return fh.read()
