"""MCS001 fixture: runtime imports of the engine's storage internals.

Never imported — parsed by the lint tests only.  Lines tagged
``lint-expect`` are the violations the rule must report, at exactly
those lines; untagged lines must stay clean.
"""

from typing import TYPE_CHECKING

from repro.db import storage  # lint-expect: MCS001
from repro.db.btree import BTree  # lint-expect: MCS001

import repro.db.storage  # lint-expect: MCS001

if TYPE_CHECKING:
    # Type-only imports are exempt: nothing runs through them.
    from repro.db.storage import Table

from repro.db import engine  # engine is the sanctioned entry point


def touch() -> None:
    storage, BTree, engine  # noqa: B018 - keep names referenced
