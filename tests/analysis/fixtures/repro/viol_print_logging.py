"""MCS008 fixture: stdout logging from library code."""


def serve(request, log):
    print("handling", request)  # lint-expect: MCS008
    log.info("handling", request=request)
