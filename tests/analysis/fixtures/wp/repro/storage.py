"""Storage shim: mints the exceptions the ops in service.py leak."""

from repro.core.errors import UnmappedError, WireTimeout


def read_blob(key):
    if not key:
        raise UnmappedError("no such blob")
    return b"blob:" + key.encode()


def relay(frame):
    if frame is None:
        raise WireTimeout("peer went away")
    return len(frame)
