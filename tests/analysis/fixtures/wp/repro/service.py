"""MCS014: exception flow from the storage shim to the SOAP boundary.

``op_fetch`` leaks an unregistered exception minted two modules away;
``op_guarded`` maps the same exception into the fault table and stays
clean; ``op_relay`` swallows a transport error its callee raises.
"""

from repro import storage
from repro.core.errors import KnownError, TransportError, UnmappedError


class SoapService:
    def op_fetch(self, key):
        return storage.read_blob(key)  # lint-expect: MCS014

    def op_guarded(self, key):
        try:
            return storage.read_blob(key)
        except UnmappedError as exc:
            raise KnownError(str(exc))  # clean: KnownError is in the table

    def op_relay(self, frame):
        try:
            return storage.relay(frame)
        except TransportError:  # lint-expect: MCS014
            pass
        return 0
