"""MCS012: the blocking call sits two sync frames below the coroutine.

No single module shows the bug: ``refresh`` looks clean in isolation
(it just calls a helper) and ``workers`` looks clean in isolation (no
coroutine in sight).  Only the call chain condemns it.  The offloaded
twin proves the thread handoff cuts the propagation.
"""

import asyncio

from repro import workers


async def refresh():
    return workers.warm_cache()  # lint-expect: MCS012


async def refresh_offloaded():
    # clean: to_thread is a color boundary — blocking is legal over there
    return await asyncio.to_thread(workers.warm_cache)
