"""MCS015: a module global mutated below a thread entry point.

``run`` is an entry point; ``_tally`` writes the shared dict with no
lock anywhere on the path, ``_tally_locked`` does the same write under
the guard.  Neither helper is suspicious on its own — reachability from
``run`` is what makes the first one a data race.
"""

import threading

_counters = {}
_guard = threading.Lock()


def run():
    _tally("requests")
    _tally_locked("requests")


def _tally(name):
    _counters[name] = _counters.get(name, 0) + 1  # lint-expect: MCS015


def _tally_locked(name):
    with _guard:
        _counters[name] = _counters.get(name, 0) + 1  # clean: guarded
