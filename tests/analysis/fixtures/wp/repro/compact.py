"""The other half of the MCS013 cycle: store before index."""

from repro.locks import lock_index, lock_store


def compact():
    with lock_store:
        with lock_index:
            pass
