"""Tracing shim — just enough span surface for the analyzer to see."""

import contextlib


@contextlib.contextmanager
def span(name, **attrs):
    yield name
