"""Whole-program fixture package (MCS012–MCS016).

Unlike the flat per-module fixtures next door, these modules form one
small program: every violation here needs facts from *at least two*
functions (usually two modules) before it becomes visible, which is
exactly what the interprocedural rules exist to prove.  Flagged lines
carry lint-expect markers consumed by the shared harness.
"""
