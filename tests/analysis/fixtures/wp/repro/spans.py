"""MCS016: a fault site reachable from dispatch with no span anywhere.

``dispatch`` opens no span and ``_probe`` opens none either, so the
fault site is invisible to tracing; ``_probe_covered`` wraps the same
site and stays clean.
"""

from repro import obs
from repro.core import faults


class SoapDispatcher:
    def __init__(self, handler):
        self._handler = handler

    def dispatch(self, name):
        _probe(name)
        _probe_covered(name)


def _probe(name):
    return faults.check("wp.dispatch", name)  # lint-expect: MCS016


def _probe_covered(name):
    with obs.span("wp.dispatch", op=name):
        return faults.check("wp.dispatch", name)  # clean: spanned
