"""Sync helpers whose blocking only matters two frames up (MCS012)."""

import time


def warm_cache():
    return _load()


def _load():
    time.sleep(0.01)
    return True
