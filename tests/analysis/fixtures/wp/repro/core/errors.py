"""Mini central fault table for the whole-program fixtures.

MCS014 parses ``fault_code_for``'s isinstance arms to learn which
exception families are registered, so this module doubles as the
fixture's registration surface: ``KnownError`` is mapped, everything
else is not.
"""


class KnownError(Exception):
    """Registered in the fault table below — ops may let it escape."""


class UnmappedError(Exception):
    """Never registered: an op letting it escape trips MCS014."""


class TransportError(Exception):
    """Wire-level failure; silently swallowing it trips MCS014."""


class WireTimeout(TransportError):
    """Concrete transport failure raised by the storage shim."""


def fault_code_for(exc):
    if isinstance(exc, KnownError):
        return "WP.Known"
    return "WP.Server"
