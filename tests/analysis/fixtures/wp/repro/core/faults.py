"""Fault-injection shim: ``faults.check(...)`` calls are MCS016 sites."""


def check(layer, op):
    return False
