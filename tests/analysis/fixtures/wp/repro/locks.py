"""One half of an MCS013 lock-order cycle.

``reindex`` acquires the index lock, then *calls into* a helper that
takes the store lock — the (index, store) ordering only exists
interprocedurally, via the call edge's held-locks set.
"""

import threading

lock_index = threading.Lock()
lock_store = threading.Lock()


def reindex():
    with lock_index:
        _flush_store()  # lint-expect: MCS013


def _flush_store():
    with lock_store:
        pass
