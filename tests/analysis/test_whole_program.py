"""Whole-program rules (MCS012–MCS016) against the wp fixture program.

The fixtures under ``fixtures/wp/`` form one small multi-module program
in which every violation needs facts from at least two functions — the
marker diff therefore proves each rule fires *only* through a call
chain, and the trace assertions prove the chain is reported.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.flow import run_whole_program
from repro.analysis.lint import Finding

from tests.analysis.harness import (
    assert_findings_match,
    expected_tree_markers,
)

WP = Path(__file__).parent / "fixtures" / "wp"

WP_RULES = ["MCS012", "MCS013", "MCS014", "MCS015", "MCS016"]


@pytest.fixture(scope="module")
def wp_findings() -> list[Finding]:
    """One program build for the whole module — it is the slow part."""
    return run_whole_program([WP])


@pytest.mark.parametrize("rule_id", WP_RULES)
def test_rule_fires_only_at_marked_lines(rule_id: str) -> None:
    expected = {
        (file, line, rule)
        for file, line, rule in expected_tree_markers(WP)
        if rule == rule_id
    }
    assert expected, f"wp fixtures carry no marker for {rule_id}"
    assert_findings_match(run_whole_program([WP], select=[rule_id]), expected)


def test_full_registry_matches_every_marker(wp_findings) -> None:
    assert_findings_match(wp_findings, expected_tree_markers(WP))


def test_every_finding_carries_a_call_path(wp_findings) -> None:
    """The trace is the point: each step is ``qual:line`` parseable and
    multi-step wherever the violation crosses functions."""
    assert wp_findings
    for finding in wp_findings:
        assert finding.trace, finding.render()
        for step in finding.trace:
            head = step.split(" (", 1)[0]
            if head.startswith("["):  # MCS013 witness-path labels
                continue
            qual, _, line = head.rpartition(":")
            assert qual and line.isdigit(), step


def test_mcs012_trace_spans_the_sync_chain(wp_findings) -> None:
    (finding,) = [f for f in wp_findings if f.rule_id == "MCS012"]
    assert len(finding.trace) >= 3  # coroutine -> helper -> blocking site
    assert "time.sleep" in finding.trace[-1]


def test_mcs013_reports_both_witness_paths(wp_findings) -> None:
    (finding,) = [f for f in wp_findings if f.rule_id == "MCS013"]
    labels = [s for s in finding.trace if s.startswith("[")]
    assert len(labels) == 2  # one label per direction of the cycle


def test_wp_ok_comment_suppresses(tmp_path: Path) -> None:
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "race.py").write_text(
        "_state = {}\n"
        "\n"
        "\n"
        "def run():\n"
        "    _bump()\n"
        "\n"
        "\n"
        "def _bump():\n"
        "    # wp-ok: MCS015 single-writer by construction\n"
        "    _state['x'] = 1\n"
    )
    assert run_whole_program([tmp_path], select=["MCS015"]) == []


def test_wp_ok_requires_a_reason(tmp_path: Path) -> None:
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "race.py").write_text(
        "_state = {}\n"
        "\n"
        "\n"
        "def run():\n"
        "    _bump()\n"
        "\n"
        "\n"
        "def _bump():\n"
        "    _state['x'] = 1  # wp-ok: MCS015\n"
    )
    findings = run_whole_program([tmp_path], select=["MCS015"])
    assert [f.rule_id for f in findings] == ["MCS015"]


def test_src_tree_is_clean_whole_program() -> None:
    """The acceptance gate: interprocedural rules, zero findings."""
    root = Path(__file__).parents[2]
    findings = run_whole_program([root / "src" / "repro", root / "examples"])
    assert findings == [], "\n".join(f.render_with_trace() for f in findings)
