"""Framework mechanics: registry, discovery, reporting, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import main as lint_main
from repro.analysis.lint import (
    DEFAULT_REGISTRY,
    Finding,
    Module,
    Registry,
    Rule,
    apply_baseline,
    load_baseline,
    load_module,
    render_report,
    run_paths,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestRegistry:
    def test_default_registry_has_all_rules(self) -> None:
        ids = [rule.id for rule in DEFAULT_REGISTRY.rules()]
        assert ids == sorted(ids)
        assert {f"MCS00{i}" for i in range(1, 9)} <= set(ids)

    def test_every_rule_documents_its_invariant(self) -> None:
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id and rule.name and rule.invariant

    def test_duplicate_rule_id_rejected(self) -> None:
        registry = Registry()

        class RuleA(Rule):
            id = "X001"
            name = "a"
            invariant = "a"

        registry.register(RuleA)
        with pytest.raises(ValueError, match="duplicate rule id"):
            registry.register(RuleA)

    def test_rule_without_id_rejected(self) -> None:
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule id"):
            Registry().register(Anonymous)


class TestDiscovery:
    def test_dotted_name_roots_at_repro(self, tmp_path: Path) -> None:
        file = tmp_path / "src" / "repro" / "db" / "thing.py"
        file.parent.mkdir(parents=True)
        file.write_text("x = 1\n")
        module = load_module(tmp_path, file)
        assert module.dotted == "repro.db.thing"
        assert module.in_package("repro.db")
        assert module.in_package("repro")
        assert not module.in_package("repro.dbx")

    def test_package_init_drops_the_suffix(self, tmp_path: Path) -> None:
        file = tmp_path / "repro" / "cache" / "__init__.py"
        file.parent.mkdir(parents=True)
        file.write_text("x = 1\n")
        assert load_module(tmp_path, file).dotted == "repro.cache"

    def test_non_package_file_uses_its_stem(self, tmp_path: Path) -> None:
        file = tmp_path / "script.py"
        file.write_text("x = 1\n")
        assert load_module(tmp_path, file).dotted == "script"

    def test_syntax_error_becomes_a_finding(self, tmp_path: Path) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        reported: list[Path] = []
        findings = run_paths(
            [broken], on_error=lambda path, exc: reported.append(path)
        )
        assert len(findings) == 1
        assert findings[0].rule_id == "LINT-SYNTAX"
        assert reported == [broken]

    def test_only_modules_gates_a_rule(self, tmp_path: Path) -> None:
        class LibraryOnly(Rule):
            id = "X100"
            name = "library-only"
            invariant = "x"
            only_modules = ("repro",)

            def check(self, module: Module):
                yield self.finding(module, module.tree, "flagged")

        registry = Registry()
        registry.register(LibraryOnly)
        inside = tmp_path / "repro" / "mod.py"
        inside.parent.mkdir()
        inside.write_text("x = 1\n")
        outside = tmp_path / "script.py"
        outside.write_text("x = 1\n")
        findings = run_paths([tmp_path], registry=registry)
        assert [f.file for f in findings] == ["repro/mod.py"]


class TestReporting:
    def test_text_report_lines_and_summary(self) -> None:
        findings = [
            Finding(file="a.py", line=3, rule_id="MCS001", message="bad"),
            Finding(file="b.py", line=7, rule_id="MCS004", message="worse"),
        ]
        report = render_report(findings)
        assert "a.py:3: MCS001 bad" in report
        assert report.endswith("2 findings")
        assert render_report(findings[:1]).endswith("1 finding")

    def test_empty_report_says_clean(self) -> None:
        assert render_report([]) == "clean: no findings"

    def test_json_report_round_trips(self) -> None:
        findings = [Finding(file="a.py", line=3, rule_id="MCS001", message="bad")]
        payload = json.loads(render_report(findings, fmt="json"))
        assert payload == [
            {"file": "a.py", "line": 3, "rule": "MCS001", "message": "bad"}
        ]

    def test_findings_sort_by_location(self) -> None:
        later = Finding(file="b.py", line=1, rule_id="MCS001", message="m")
        early = Finding(file="a.py", line=9, rule_id="MCS009", message="m")
        assert sorted([later, early]) == [early, later]

    def test_trace_rides_in_dict_and_text(self) -> None:
        finding = Finding(
            file="a.py", line=3, rule_id="MCS012", message="bad",
            trace=("pkg.f:3 (calls g)", "pkg.g:9 (time.sleep())"),
        )
        assert finding.to_dict()["trace"] == [
            "pkg.f:3 (calls g)", "pkg.g:9 (time.sleep())"
        ]
        rendered = finding.render_with_trace()
        assert rendered.splitlines()[1:] == [
            "    via pkg.f:3 (calls g)", "    via pkg.g:9 (time.sleep())"
        ]
        # a trace-less finding keeps the legacy payload exactly
        assert "trace" not in Finding(
            file="a.py", line=3, rule_id="MCS001", message="bad"
        ).to_dict()


class TestSarif:
    def _findings(self) -> list[Finding]:
        return [
            Finding(
                file="src/repro/a.py", line=3, rule_id="MCS012",
                message="bad", trace=("pkg.f:3 (calls g)",),
            ),
        ]

    def test_sarif_log_structure(self) -> None:
        payload = json.loads(
            render_report(
                self._findings(), fmt="sarif", rules=DEFAULT_REGISTRY.rules()
            )
        )
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "mcs-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(rule_ids)
        (result,) = run["results"]
        assert result["ruleId"] == "MCS012"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/a.py"
        assert location["region"]["startLine"] == 3
        assert "via pkg.f:3" in result["message"]["text"]

    def test_sarif_of_no_findings_is_an_empty_run(self) -> None:
        payload = json.loads(render_report([], fmt="sarif"))
        assert payload["runs"][0]["results"] == []


class TestBaseline:
    def _findings(self) -> list[Finding]:
        return [
            Finding(file="a.py", line=3, rule_id="MCS014", message="leak"),
            Finding(file="b.py", line=9, rule_id="MCS015", message="race"),
        ]

    def test_write_then_load_requires_justification(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        write_baseline(self._findings(), path)
        with pytest.raises(ValueError, match="justification"):
            load_baseline(path)

    def test_justified_baseline_suppresses_and_reports_unused(
        self, tmp_path: Path
    ) -> None:
        path = tmp_path / "baseline.json"
        write_baseline(self._findings(), path)
        data = json.loads(path.read_text())
        for entry in data["entries"]:
            entry["justification"] = "accepted until the storage rework"
        path.write_text(json.dumps(data))
        kept, suppressed, unused = apply_baseline(
            self._findings()[:1], load_baseline(path)
        )
        assert kept == [] and suppressed == 1
        assert [e["rule"] for e in unused] == ["MCS015"]

    def test_matching_ignores_line_numbers(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        write_baseline(self._findings(), path)
        data = json.loads(path.read_text())
        for entry in data["entries"]:
            entry["justification"] = "line drift must not invalidate this"
        path.write_text(json.dumps(data))
        moved = [
            Finding(file="a.py", line=77, rule_id="MCS014", message="leak")
        ]
        kept, suppressed, _ = apply_baseline(moved, load_baseline(path))
        assert kept == [] and suppressed == 1

    def test_malformed_baseline_is_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCli:
    def test_exit_one_on_findings(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES / "viol_query_shims.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "MCS006" in out

    def test_exit_zero_when_clean(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES / "clean_module.py")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_select_filters_rules(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES), "--select", "MCS007"])
        out = capsys.readouterr().out
        assert code == 1
        assert "MCS007" in out and "MCS006" not in out

    def test_json_output_parses(self, capsys: pytest.CaptureFixture) -> None:
        lint_main([str(FIXTURES / "viol_raw_locks.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert all(item["rule"] == "MCS007" for item in payload)

    def test_explain_lists_every_rule(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main(["--explain"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id in out

    def test_explain_covers_whole_program_rules(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        lint_main(["--explain"])
        out = capsys.readouterr().out
        for rule_id in ("MCS012", "MCS013", "MCS014", "MCS015", "MCS016"):
            assert rule_id in out

    def test_sarif_output_parses(self, capsys: pytest.CaptureFixture) -> None:
        lint_main([str(FIXTURES / "viol_raw_locks.py"), "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        results = payload["runs"][0]["results"]
        assert results and all(r["ruleId"] == "MCS007" for r in results)

    def test_whole_program_flag_reports_wp_findings(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        wp = Path(__file__).parent / "fixtures" / "wp"
        code = lint_main([str(wp), "--whole-program", "--select", "MCS012"])
        out = capsys.readouterr().out
        assert code == 1
        assert "MCS012" in out and "via" in out

    def test_baseline_cli_round_trip(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        fixture = str(FIXTURES / "viol_raw_locks.py")
        baseline = tmp_path / "baseline.json"
        assert lint_main([fixture, "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        # unjustified entries must refuse to load
        assert lint_main([fixture, "--baseline", str(baseline)]) == 2
        capsys.readouterr()
        data = json.loads(baseline.read_text())
        for entry in data["entries"]:
            entry["justification"] = "grandfathered pending the lock rework"
        baseline.write_text(json.dumps(data))
        assert lint_main([fixture, "--baseline", str(baseline)]) == 0
        assert "clean" in capsys.readouterr().out
