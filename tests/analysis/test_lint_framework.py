"""Framework mechanics: registry, discovery, reporting, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import main as lint_main
from repro.analysis.lint import (
    DEFAULT_REGISTRY,
    Finding,
    Module,
    Registry,
    Rule,
    load_module,
    render_report,
    run_paths,
)

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestRegistry:
    def test_default_registry_has_all_rules(self) -> None:
        ids = [rule.id for rule in DEFAULT_REGISTRY.rules()]
        assert ids == sorted(ids)
        assert {f"MCS00{i}" for i in range(1, 9)} <= set(ids)

    def test_every_rule_documents_its_invariant(self) -> None:
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id and rule.name and rule.invariant

    def test_duplicate_rule_id_rejected(self) -> None:
        registry = Registry()

        class RuleA(Rule):
            id = "X001"
            name = "a"
            invariant = "a"

        registry.register(RuleA)
        with pytest.raises(ValueError, match="duplicate rule id"):
            registry.register(RuleA)

    def test_rule_without_id_rejected(self) -> None:
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="no rule id"):
            Registry().register(Anonymous)


class TestDiscovery:
    def test_dotted_name_roots_at_repro(self, tmp_path: Path) -> None:
        file = tmp_path / "src" / "repro" / "db" / "thing.py"
        file.parent.mkdir(parents=True)
        file.write_text("x = 1\n")
        module = load_module(tmp_path, file)
        assert module.dotted == "repro.db.thing"
        assert module.in_package("repro.db")
        assert module.in_package("repro")
        assert not module.in_package("repro.dbx")

    def test_package_init_drops_the_suffix(self, tmp_path: Path) -> None:
        file = tmp_path / "repro" / "cache" / "__init__.py"
        file.parent.mkdir(parents=True)
        file.write_text("x = 1\n")
        assert load_module(tmp_path, file).dotted == "repro.cache"

    def test_non_package_file_uses_its_stem(self, tmp_path: Path) -> None:
        file = tmp_path / "script.py"
        file.write_text("x = 1\n")
        assert load_module(tmp_path, file).dotted == "script"

    def test_syntax_error_becomes_a_finding(self, tmp_path: Path) -> None:
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        reported: list[Path] = []
        findings = run_paths(
            [broken], on_error=lambda path, exc: reported.append(path)
        )
        assert len(findings) == 1
        assert findings[0].rule_id == "LINT-SYNTAX"
        assert reported == [broken]

    def test_only_modules_gates_a_rule(self, tmp_path: Path) -> None:
        class LibraryOnly(Rule):
            id = "X100"
            name = "library-only"
            invariant = "x"
            only_modules = ("repro",)

            def check(self, module: Module):
                yield self.finding(module, module.tree, "flagged")

        registry = Registry()
        registry.register(LibraryOnly)
        inside = tmp_path / "repro" / "mod.py"
        inside.parent.mkdir()
        inside.write_text("x = 1\n")
        outside = tmp_path / "script.py"
        outside.write_text("x = 1\n")
        findings = run_paths([tmp_path], registry=registry)
        assert [f.file for f in findings] == ["repro/mod.py"]


class TestReporting:
    def test_text_report_lines_and_summary(self) -> None:
        findings = [
            Finding(file="a.py", line=3, rule_id="MCS001", message="bad"),
            Finding(file="b.py", line=7, rule_id="MCS004", message="worse"),
        ]
        report = render_report(findings)
        assert "a.py:3: MCS001 bad" in report
        assert report.endswith("2 findings")
        assert render_report(findings[:1]).endswith("1 finding")

    def test_empty_report_says_clean(self) -> None:
        assert render_report([]) == "clean: no findings"

    def test_json_report_round_trips(self) -> None:
        findings = [Finding(file="a.py", line=3, rule_id="MCS001", message="bad")]
        payload = json.loads(render_report(findings, fmt="json"))
        assert payload == [
            {"file": "a.py", "line": 3, "rule": "MCS001", "message": "bad"}
        ]

    def test_findings_sort_by_location(self) -> None:
        later = Finding(file="b.py", line=1, rule_id="MCS001", message="m")
        early = Finding(file="a.py", line=9, rule_id="MCS009", message="m")
        assert sorted([later, early]) == [early, later]


class TestCli:
    def test_exit_one_on_findings(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES / "viol_query_shims.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "MCS006" in out

    def test_exit_zero_when_clean(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES / "clean_module.py")])
        assert code == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_select_filters_rules(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main([str(FIXTURES), "--select", "MCS007"])
        out = capsys.readouterr().out
        assert code == 1
        assert "MCS007" in out and "MCS006" not in out

    def test_json_output_parses(self, capsys: pytest.CaptureFixture) -> None:
        lint_main([str(FIXTURES / "viol_raw_locks.py"), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert all(item["rule"] == "MCS007" for item in payload)

    def test_explain_lists_every_rule(self, capsys: pytest.CaptureFixture) -> None:
        code = lint_main(["--explain"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in DEFAULT_REGISTRY.rules():
            assert rule.id in out
