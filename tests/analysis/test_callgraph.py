"""Unit tests for the call-graph builder's resolution rules.

Each test writes a minimal ``repro`` package into ``tmp_path`` and
asserts on the edges ``build_program`` produces — methods through
``self``, properties, decorators, ``super()``, aliased imports, and the
``asyncio.to_thread`` color boundary.  A hypothesis property test at
the bottom checks two structural invariants over random programs:
every CALL edge corresponds to a real call site on its recorded line,
and the SCC condensation is a DAG.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import CALL, HANDOFF, build_program
from repro.analysis.flow import summarize


def build_tree(tmp_path: Path, files: dict[str, str]):
    """Write *files* (relpath → source) under a ``repro`` package."""
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    init = tmp_path / "repro" / "__init__.py"
    if not init.exists():
        init.write_text("")
    return build_program([tmp_path])


def edges_of(program, qual):
    return {(e.callee, e.kind) for e in program.functions[qual].edges}


def test_method_call_through_self(tmp_path):
    program = build_tree(tmp_path, {
        "svc.py": (
            "class Service:\n"
            "    def outer(self):\n"
            "        return self.inner()\n"
            "\n"
            "    def inner(self):\n"
            "        return 1\n"
        ),
    })
    assert ("repro.svc.Service.inner", CALL) in edges_of(
        program, "repro.svc.Service.outer"
    )


def test_property_access_is_an_edge(tmp_path):
    program = build_tree(tmp_path, {
        "svc.py": (
            "class Box:\n"
            "    @property\n"
            "    def size(self):\n"
            "        return 3\n"
            "\n"
            "    def report(self):\n"
            "        return self.size + 1\n"
        ),
    })
    assert ("repro.svc.Box.size", CALL) in edges_of(
        program, "repro.svc.Box.report"
    )


def test_decorated_function_still_resolves(tmp_path):
    program = build_tree(tmp_path, {
        "deco.py": (
            "import functools\n"
            "\n"
            "\n"
            "def logged(fn):\n"
            "    @functools.wraps(fn)\n"
            "    def wrapper(*a, **k):\n"
            "        return fn(*a, **k)\n"
            "    return wrapper\n"
            "\n"
            "\n"
            "@logged\n"
            "def target():\n"
            "    return 1\n"
            "\n"
            "\n"
            "def caller():\n"
            "    return target()\n"
        ),
    })
    info = program.functions["repro.deco.target"]
    assert "logged" in info.decorators
    assert ("repro.deco.target", CALL) in edges_of(program, "repro.deco.caller")


def test_super_call_resolves_through_mro(tmp_path):
    program = build_tree(tmp_path, {
        "svc.py": (
            "class Base:\n"
            "    def ping(self):\n"
            "        return 0\n"
            "\n"
            "\n"
            "class Child(Base):\n"
            "    def ping(self):\n"
            "        return super().ping() + 1\n"
        ),
    })
    assert ("repro.svc.Base.ping", CALL) in edges_of(
        program, "repro.svc.Child.ping"
    )


def test_aliased_imports_resolve(tmp_path):
    program = build_tree(tmp_path, {
        "util.py": "def helper():\n    return 1\n",
        "a.py": (
            "from repro.util import helper as h\n"
            "\n"
            "\n"
            "def caller_a():\n"
            "    return h()\n"
        ),
        "b.py": (
            "import repro.util as u\n"
            "\n"
            "\n"
            "def caller_b():\n"
            "    return u.helper()\n"
        ),
    })
    assert ("repro.util.helper", CALL) in edges_of(program, "repro.a.caller_a")
    assert ("repro.util.helper", CALL) in edges_of(program, "repro.b.caller_b")


def test_to_thread_is_a_color_boundary(tmp_path):
    """The handoff edge exists, the target becomes a thread entry point,
    and — the point of the edge kind — blocking does NOT propagate back
    into the coroutine's summary."""
    program = build_tree(tmp_path, {
        "aio.py": (
            "import asyncio\n"
            "import time\n"
            "\n"
            "\n"
            "def work():\n"
            "    time.sleep(1)\n"
            "\n"
            "\n"
            "async def offload():\n"
            "    await asyncio.to_thread(work)\n"
        ),
    })
    assert ("repro.aio.work", HANDOFF) in edges_of(program, "repro.aio.offload")
    assert "repro.aio.work" in program.thread_entry_points
    summaries = summarize(program)
    assert summaries["repro.aio.work"].blocks
    assert not summaries["repro.aio.offload"].blocks


def test_imported_lock_keeps_its_identity(tmp_path):
    """``from repro.locks import guard`` must acquire the *same* lock id
    the defining module uses, or MCS013 cannot see cross-module cycles."""
    program = build_tree(tmp_path, {
        "locks.py": (
            "import threading\n"
            "\n"
            "guard = threading.Lock()\n"
            "\n"
            "\n"
            "def local_use():\n"
            "    with guard:\n"
            "        pass\n"
        ),
        "far.py": (
            "from repro.locks import guard\n"
            "\n"
            "\n"
            "def remote_use():\n"
            "    with guard:\n"
            "        pass\n"
        ),
    })
    local = program.functions["repro.locks.local_use"].acquires
    remote = program.functions["repro.far.remote_use"].acquires
    assert local and remote
    assert local[0].lock == remote[0].lock


# --------------------------------------------------------------------------
# structural invariants over random programs
# --------------------------------------------------------------------------

_calls = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    max_size=18,
)


def _render(n: int, calls: list[tuple[int, int]]) -> str:
    bodies: dict[int, list[str]] = {i: [] for i in range(n)}
    for caller, callee in calls:
        if caller < n and callee < n:
            bodies[caller].append(f"    f{callee}()")
    lines: list[str] = []
    for i in range(n):
        lines.append(f"def f{i}():")
        lines.extend(bodies[i] or ["    pass"])
    return "\n".join(lines) + "\n"


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), _calls)
def test_edges_are_real_call_sites_and_condensation_is_a_dag(
    tmp_path_factory, n, calls
):
    tmp = tmp_path_factory.mktemp("prog")
    source = _render(n, calls)
    (tmp / "prog.py").write_text(source, encoding="utf-8")
    program = build_program([tmp])
    lines = source.splitlines()

    # every CALL edge corresponds to a call expression on its line
    for qual, info in program.functions.items():
        for edge in info.edges:
            short = edge.callee.rsplit(".", 1)[1]
            assert f"{short}()" in lines[edge.line - 1], (qual, edge)

    # the condensation is a DAG covering every function exactly once
    components, dag = program.condensation()
    flat = [q for comp in components for q in comp]
    assert sorted(flat) == sorted(program.functions)
    state: dict[int, int] = {}

    def cyclic(node: int) -> bool:
        state[node] = 1
        for succ in dag[node]:
            if state.get(succ) == 1:
                return True
            if state.get(succ) is None and cyclic(succ):
                return True
        state[node] = 2
        return False

    assert not any(cyclic(i) for i in dag if state.get(i) is None)

    # reverse-topological order: a callee's component precedes its caller's
    comp_of = {q: i for i, comp in enumerate(components) for q in comp}
    for qual, info in program.functions.items():
        for edge in info.edges:
            if comp_of[qual] != comp_of[edge.callee]:
                assert comp_of[edge.callee] < comp_of[qual]
