"""Shared ``# lint-expect`` fixture harness.

A fixture marks every line the linter must flag with a trailing
``# lint-expect: MCS0xx`` comment.  The helpers here diff a finding set
against those markers, so every fixture test asserts rule id, file *and*
line exactly — and, just as important, that unmarked lines stay clean.

Both the per-module rule tests (``test_lint_rules``) and the
whole-program tests (``test_whole_program``) share this module instead
of re-implementing the marker scan and the set diff per rule.  A fixture
line may carry several markers (``# lint-expect: MCS014 MCS016``) when
two rules legitimately flag the same site.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.analysis.lint import Finding

#: Trailing marker; ``findall`` picks up every rule id on the line.
MARKER = re.compile(r"MCS\d+")
_MARKER_LINE = re.compile(r"#\s*lint-expect:\s*((?:MCS\d+\s*)+)")


def expected_markers(path: Path) -> set[tuple[int, str]]:
    """``(line, rule_id)`` pairs for every marker in *path*."""
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for group in _MARKER_LINE.findall(line):
            for rule_id in MARKER.findall(group):
                out.add((lineno, rule_id))
    return out


def expected_tree_markers(root: Path) -> set[tuple[str, int, str]]:
    """``(relpath, line, rule_id)`` for every marker under *root*.

    Recursive, unlike the single-directory glob the rule tests used to
    copy around — whole-program fixtures are packages, not flat files.
    """
    out: set[tuple[str, int, str]] = set()
    for file in sorted(root.rglob("*.py")):
        rel = file.relative_to(root).as_posix()
        for lineno, rule_id in expected_markers(file):
            out.add((rel, lineno, rule_id))
    return out


def assert_findings_match(
    findings: Iterable[Finding], expected: set[tuple[str, int, str]]
) -> None:
    """Exact diff with a readable message naming misses and extras."""
    got = {(f.file, f.line, f.rule_id) for f in findings}
    missing = expected - got
    extra = got - expected
    assert not missing and not extra, (
        "lint-expect mismatch:\n"
        + "".join(f"  missing: {m}\n" for m in sorted(missing))
        + "".join(f"  extra:   {e}\n" for e in sorted(extra))
    )
