"""Both directions of the MCS005 contract.

The lint rule checks emission sites against the declared registry; these
tests close the loop the rule cannot see per-file: every declared name
must still be emitted somewhere (no stale declarations), and the whole
emitted set must match the declared set exactly.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.rules import collect_metric_names
from repro.obs.metric_names import DECLARED_METRICS, METRIC_NAME_PATTERN

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_every_declared_name_matches_the_pattern() -> None:
    pattern = re.compile(METRIC_NAME_PATTERN)
    bad = sorted(name for name in DECLARED_METRICS if not pattern.match(name))
    assert not bad, f"declared metric names violate the shape: {bad}"


def test_emitted_and_declared_sets_match_exactly() -> None:
    emitted = collect_metric_names([SRC])
    undeclared = sorted(set(emitted) - DECLARED_METRICS)
    stale = sorted(DECLARED_METRICS - set(emitted))
    assert not undeclared, f"emitted but not declared: {undeclared}"
    assert not stale, f"declared but no longer emitted anywhere: {stale}"


def test_collect_reports_file_and_line_sites() -> None:
    emitted = collect_metric_names([SRC])
    sites = emitted["mcs_db_lock_wait_seconds"]
    assert any(file.endswith("db/txn.py") for file, _ in sites)
    assert all(isinstance(line, int) and line > 0 for _, line in sites)
